"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that ``pip install -e .`` also works in offline environments that lack the
``wheel`` package (legacy editable installs go through ``setup.py develop``
and do not need to build a wheel).
"""

from setuptools import setup

setup()
