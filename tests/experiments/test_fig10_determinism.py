"""ParallelExecutor determinism for the *simulator-backed* Figure 10 study.

The chip-level studies are covered by ``tests/experiments/test_session.py``;
this suite pins the same bit-for-bit guarantee for ``fig10-mitigations``,
whose payload comes from the event-driven cycle-level simulator rather than
from a behavioural chip: shipping the study into a spawn-based worker
process must reproduce the in-process result exactly, in both step modes.
"""

import pytest

from repro.analysis.mitigation_study import MitigationStudyConfig
from repro.experiments import ExperimentSession, ParallelExecutor, SerialExecutor

pytestmark = pytest.mark.slow

#: Tiny but representative sweep: a scalable probabilistic mechanism, the
#: tuned-point mechanisms, and the oracle, on one small mix.
TINY_CONFIG = dict(
    hcfirst_values=(2_000, 256),
    mechanisms=("PARA", "ProHIT", "Ideal"),
    num_mixes=1,
    rows_per_bank=512,
    dram_cycles=3_000,
    requests_per_core=600,
    seed=3,
)


def run_study(executor, step_mode):
    session = ExperimentSession(population=None, executor=executor, seed=3)
    outcome = session.run(
        "fig10-mitigations", MitigationStudyConfig(step_mode=step_mode, **TINY_CONFIG)
    )
    return outcome.single()


@pytest.mark.parametrize("step_mode", ["event", "cycle"])
def test_parallel_matches_serial_bit_for_bit(step_mode):
    serial = run_study(SerialExecutor(), step_mode)
    parallel = run_study(ParallelExecutor(max_workers=2), step_mode)
    serial_points = [point.to_dict() for point in serial.points]
    parallel_points = [point.to_dict() for point in parallel.points]
    assert serial_points == parallel_points
    assert serial_points, "the study must produce evaluation points"


def test_event_and_cycle_studies_identical_through_parallel_executor():
    """The golden guarantee survives process shipping: an event-mode study in
    a worker equals a cycle-mode study in a worker."""
    event = run_study(ParallelExecutor(max_workers=2), "event")
    cycle = run_study(ParallelExecutor(max_workers=2), "cycle")
    assert [p.to_dict() for p in event.points] == [p.to_dict() for p in cycle.points]
