"""Tests for ExperimentSession, executors and the result store.

Covers the acceptance criteria of the session API: parallel execution is
bit-identical to serial for migrated studies, and a cached study replays
with zero chip activations (verified through ChipStats).
"""

from __future__ import annotations

import pytest

from repro.core.first_flip import HCFirstStudyConfig
from repro.core.sweeps import SweepStudyConfig
from repro.dram.geometry import ChipGeometry
from repro.dram.population import flatten_population, make_chip, make_population
from repro.experiments import (
    ExperimentSession,
    ParallelExecutor,
    ResultStore,
    SerialExecutor,
    register_study,
    unregister_study,
)

GEOMETRY = ChipGeometry(banks=1, rows_per_bank=32, row_bytes=16)
CONFIGURATIONS = [("DDR4-new", "A"), ("LPDDR4-1y", "A")]
SWEEP = SweepStudyConfig(hammer_counts=(40_000, 150_000))


def fresh_population():
    return make_population(
        chips_per_config=2, seed=9, geometry=GEOMETRY, configurations=CONFIGURATIONS
    )


class TestPopulationHandling:
    def test_accepts_population_dict(self):
        session = ExperimentSession(fresh_population())
        assert len(session.chips) == 4

    def test_accepts_single_chip_and_list(self):
        chip = make_chip("DDR4-new", "A", seed=1, geometry=GEOMETRY)
        assert len(ExperimentSession(chip).chips) == 1
        assert len(ExperimentSession([chip, chip]).chips) == 1  # dedup by identity

    def test_from_table1_builds_population(self):
        session = ExperimentSession.from_table1(
            chips_per_config=1, seed=3, geometry=GEOMETRY, configurations=CONFIGURATIONS
        )
        assert len(session.chips) == 2
        assert session.configurations() == [("DDR4-new", "A"), ("LPDDR4-1y", "A")]

    def test_chips_for_filters(self):
        session = ExperimentSession(fresh_population())
        lp = session.chips_for("LPDDR4-1y", "A")
        assert len(lp) == 2
        assert all(chip.profile.type_node.value == "LPDDR4-1y" for chip in lp)

    def test_flatten_population_preserves_order(self):
        population = fresh_population()
        chips = flatten_population(population)
        assert [c.chip_id for c in chips[:2]] == [c.chip_id for c in population[next(iter(population))]]

    def test_empty_population_rejected_for_chip_study(self):
        with pytest.raises(ValueError):
            ExperimentSession().run("fig5-hc-sweep", SWEEP)


class TestSessionRun:
    def test_results_in_chip_order_with_identity(self):
        session = ExperimentSession(fresh_population(), seed=9)
        outcome = session.run("fig5-hc-sweep", SWEEP)
        assert [r.chip_id for r in outcome.results] == [c.chip_id for c in session.chips]
        assert all(r.study == "fig5-hc-sweep" for r in outcome.results)
        assert outcome.executed == len(session.chips)
        assert outcome.cache_hits == 0

    def test_by_configuration_groups_payloads(self):
        session = ExperimentSession(fresh_population(), seed=9)
        grouped = session.run("fig5-hc-sweep", SWEEP).by_configuration()
        assert set(grouped) == {("DDR4-new", "A"), ("LPDDR4-1y", "A")}
        assert all(len(payloads) == 2 for payloads in grouped.values())

    def test_stats_merged_back_into_chips(self):
        session = ExperimentSession(fresh_population(), seed=9)
        session.run("fig5-hc-sweep", SWEEP)
        assert all(chip.stats.activations > 0 for chip in session.chips)

    def test_hermetic_execution_leaves_chip_data_untouched(self):
        session = ExperimentSession(fresh_population(), seed=9)
        chip = session.chips[0]
        before = chip.read_row(0, GEOMETRY.rows_per_bank // 2).copy()
        session.run("fig5-hc-sweep", SWEEP)
        after = chip.read_row(0, GEOMETRY.rows_per_bank // 2)
        assert (before == after).all()

    def test_run_subset_of_chips(self):
        session = ExperimentSession(fresh_population(), seed=9)
        subset = session.chips_for("DDR4-new")
        outcome = session.run("fig5-hc-sweep", SWEEP, chips=subset)
        assert len(outcome.results) == 2

    def test_single_requires_one_result(self):
        session = ExperimentSession(fresh_population(), seed=9)
        with pytest.raises(ValueError):
            session.run("fig5-hc-sweep", SWEEP).single()

    def test_run_all_runs_studies_in_order(self):
        chip = make_chip("DDR4-new", "A", seed=1, geometry=GEOMETRY, hcfirst_target=20_000)
        session = ExperimentSession(chip, seed=1)
        outcomes = session.run_all(
            ["fig5-hc-sweep", "fig8-hcfirst"],
            configs={"fig5-hc-sweep": SWEEP, "fig8-hcfirst": HCFirstStudyConfig()},
        )
        assert set(outcomes) == {"fig5-hc-sweep", "fig8-hcfirst"}
        assert outcomes["fig8-hcfirst"].single().hcfirst is not None


class TestExecutorDeterminism:
    """Parallel execution must be bit-identical to serial for every study."""

    @pytest.mark.parametrize(
        "study,config",
        [
            ("fig5-hc-sweep", SWEEP),
            ("fig8-hcfirst", HCFirstStudyConfig(max_candidates=4)),
        ],
    )
    def test_parallel_matches_serial(self, study, config):
        serial = ExperimentSession(fresh_population(), executor=SerialExecutor(), seed=9)
        parallel = ExperimentSession(
            fresh_population(), executor=ParallelExecutor(max_workers=2), seed=9
        )
        serial_outcome = serial.run(study, config)
        parallel_outcome = parallel.run(study, config)
        # StudyResult equality covers study name, config digest, chip
        # identity, seed and the full domain payload.
        assert serial_outcome.results == parallel_outcome.results

    def test_parallel_merges_stats_like_serial(self):
        serial = ExperimentSession(fresh_population(), executor=SerialExecutor(), seed=9)
        parallel = ExperimentSession(
            fresh_population(), executor=ParallelExecutor(max_workers=2), seed=9
        )
        serial.run("fig5-hc-sweep", SWEEP)
        parallel.run("fig5-hc-sweep", SWEEP)
        assert [c.stats.activations for c in serial.chips] == [
            c.stats.activations for c in parallel.chips
        ]

    def test_parallel_executor_validates_arguments(self):
        with pytest.raises(ValueError):
            ParallelExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(chunksize=0)


class TestResultStore:
    def test_cached_rerun_zero_activations(self, tmp_path):
        """Acceptance criterion: a second run of a cached study performs
        zero chip activations, verified via ChipStats."""
        store = ResultStore(tmp_path / "store")
        first_session = ExperimentSession(fresh_population(), store=store, seed=9)
        first = first_session.run("fig5-hc-sweep", SWEEP)
        assert first.cache_hits == 0
        assert all(chip.stats.activations > 0 for chip in first_session.chips)

        # A brand-new session over an identically-constructed population and
        # a fresh store instance reading the same directory replays fully.
        second_session = ExperimentSession(
            fresh_population(), store=ResultStore(tmp_path / "store"), seed=9
        )
        second = second_session.run("fig5-hc-sweep", SWEEP)
        assert second.cache_hits == len(second_session.chips)
        assert second.executed == 0
        assert all(chip.stats.activations == 0 for chip in second_session.chips)
        assert all(result.from_cache for result in second.results)
        assert second.payloads() == first.payloads()

    def test_memory_only_store_caches_within_process(self):
        store = ResultStore()
        session = ExperimentSession(fresh_population(), store=store, seed=9)
        session.run("fig5-hc-sweep", SWEEP)
        again = session.run("fig5-hc-sweep", SWEEP)
        assert again.cache_hits == len(session.chips)
        assert store.stats.hits == len(session.chips)

    def test_config_change_misses_cache(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        session = ExperimentSession(fresh_population(), store=store, seed=9)
        session.run("fig5-hc-sweep", SWEEP)
        other = session.run(
            "fig5-hc-sweep", SweepStudyConfig(hammer_counts=(50_000, 150_000))
        )
        assert other.cache_hits == 0

    def test_different_chip_misses_cache(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        chip_a = make_chip("DDR4-new", "A", seed=1, geometry=GEOMETRY)
        chip_b = make_chip("DDR4-new", "A", seed=2, geometry=GEOMETRY)
        ExperimentSession(chip_a, store=store).run("fig5-hc-sweep", SWEEP)
        outcome = ExperimentSession(chip_b, store=store).run("fig5-hc-sweep", SWEEP)
        assert outcome.cache_hits == 0

    def test_mutated_chip_bypasses_cache(self, tmp_path):
        """A chip hammered outside the session is not served from (or
        written to) the pristine-keyed cache -- its state differs from an
        identically-constructed fresh chip."""
        store = ResultStore(tmp_path / "store")

        dirty = make_chip("DDR4-new", "A", seed=1, geometry=GEOMETRY)
        dirty.write_row(0, GEOMETRY.rows_per_bank // 2, 0xFF)  # direct mutation
        assert not dirty.is_pristine
        dirty_out = ExperimentSession(dirty, store=store).run("fig5-hc-sweep", SWEEP)
        assert store.stats.puts == 0  # nothing cached under the pristine key

        fresh = make_chip("DDR4-new", "A", seed=1, geometry=GEOMETRY)
        assert fresh.is_pristine
        fresh_out = ExperimentSession(fresh, store=store).run("fig5-hc-sweep", SWEEP)
        assert fresh_out.cache_hits == 0  # computed, not replayed from dirty
        assert store.stats.puts == 1

        # Session runs themselves are hermetic, so the fresh chip stays
        # pristine and a rerun replays from the cache.
        rerun = ExperimentSession(fresh, store=store).run("fig5-hc-sweep", SWEEP)
        assert rerun.cache_hits == 1
        assert rerun.payloads() == fresh_out.payloads()

    def test_clear_empties_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        session = ExperimentSession(fresh_population(), store=store, seed=9)
        session.run("fig5-hc-sweep", SWEEP)
        assert len(store) > 0
        store.clear()
        assert len(store) == 0
        rerun = session.run("fig5-hc-sweep", SWEEP)
        assert rerun.cache_hits == 0


class TestCustomStudy:
    def test_register_run_unregister_roundtrip(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class ProbeConfig:
            hammer_count: int = 60_000

        @register_study("test-session-probe", config=ProbeConfig)
        def run_probe(chip, config):
            from repro.core.hammer import DoubleSidedHammer

            hammer = DoubleSidedHammer(chip)
            victim = chip.geometry.rows_per_bank // 2
            return hammer.hammer_victim(0, victim, config.hammer_count).num_bit_flips

        try:
            chip = make_chip(
                "LPDDR4-1y", "A", seed=4, geometry=GEOMETRY, hcfirst_target=10_000
            )
            session = ExperimentSession(chip, seed=4)
            flips = session.run("test-session-probe").single()
            assert flips > 0
        finally:
            unregister_study("test-session-probe")
