"""ResultStore.put fault paths: temp-file hygiene and the no-fcntl fallback.

``put`` publishes each pickle atomically through a per-writer unique temp
file.  Two fault paths are pinned here: a failed dump must not leave
``.tmp`` litter behind (and cleanup must never mask the original error),
and on platforms without ``fcntl`` the advisory lock degrades to a no-op
while the write stays atomic-rename-based.
"""

from __future__ import annotations

import pickle

import pytest

import repro.experiments.store as store_module
from repro.experiments.store import CacheKey, ResultStore
from repro.experiments.study import StudyResult


def make_result(payload):
    return StudyResult(
        study="faults-demo",
        config_digest="cfg",
        chip_id=None,
        type_node=None,
        manufacturer=None,
        seed=0,
        payload=payload,
    )


def tmp_litter(root):
    return [path for path in root.rglob("*.tmp")]


class TestTempFileHygiene:
    def test_successful_put_leaves_no_tmp(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root)
        store.put(CacheKey("faults-demo", "cfg", "ok"), make_result(1))
        assert tmp_litter(root) == []
        assert ResultStore(root).get(CacheKey("faults-demo", "cfg", "ok")) is not None

    def test_failed_dump_cleans_up_and_raises_original_error(self, tmp_path, monkeypatch):
        root = tmp_path / "store"
        store = ResultStore(root)

        def broken_dump(obj, handle):
            raise pickle.PicklingError("cannot pickle this")

        monkeypatch.setattr(store_module.pickle, "dump", broken_dump)
        with pytest.raises(pickle.PicklingError):
            store.put(CacheKey("faults-demo", "cfg", "bad"), make_result(2))
        assert tmp_litter(root) == []

    def test_unremovable_tmp_does_not_mask_dump_error(self, tmp_path, monkeypatch):
        """Even if cleanup itself fails, the *dump* error is what surfaces."""
        root = tmp_path / "store"
        store = ResultStore(root)

        def broken_dump(obj, handle):
            raise pickle.PicklingError("cannot pickle this")

        def broken_unlink(self, missing_ok=False):
            raise OSError("unlink refused")

        monkeypatch.setattr(store_module.pickle, "dump", broken_dump)
        monkeypatch.setattr(type(root), "unlink", broken_unlink)
        with pytest.raises(pickle.PicklingError):
            store.put(CacheKey("faults-demo", "cfg", "bad"), make_result(3))


class TestNoFcntlFallback:
    def test_put_without_fcntl_is_still_atomic_and_readable(self, tmp_path, monkeypatch):
        monkeypatch.setattr(store_module, "fcntl", None)
        root = tmp_path / "store"
        store = ResultStore(root)
        key = CacheKey("faults-demo", "cfg", "nolock")
        store.put(key, make_result({"x": 7}))
        assert tmp_litter(root) == []
        # No advisory lock file is created when fcntl is unavailable.
        assert not (root / ResultStore.LOCK_FILENAME).exists()
        cached = ResultStore(root).get(key)
        assert cached is not None and cached.payload == {"x": 7}
        assert cached.from_cache

    def test_failed_dump_without_fcntl_cleans_up(self, tmp_path, monkeypatch):
        monkeypatch.setattr(store_module, "fcntl", None)
        root = tmp_path / "store"
        store = ResultStore(root)

        def broken_dump(obj, handle):
            raise pickle.PicklingError("cannot pickle this")

        monkeypatch.setattr(store_module.pickle, "dump", broken_dump)
        with pytest.raises(pickle.PicklingError):
            store.put(CacheKey("faults-demo", "cfg", "bad"), make_result(4))
        assert tmp_litter(root) == []
