"""Crash-resume behaviour of the unit-level result cache.

A decomposed study caches every work unit individually, so a killed run
resumes from its completed units: deleting k unit entries from a complete
cache (simulating a crash that lost part of the work) must re-execute
exactly k units and still merge to the bit-identical payload.
"""

from __future__ import annotations

import pytest

from repro.analysis.mitigation_study import MitigationStudyConfig
from repro.core.characterization import CharacterizationConfig
from repro.dram.geometry import ChipGeometry
from repro.dram.population import make_chip
from repro.experiments import ExperimentSession, ResultStore, SerialExecutor
from repro.experiments.executors import execute_task

TINY_FIG10 = MitigationStudyConfig(
    hcfirst_values=(2_000, 256),
    mechanisms=("PARA", "Ideal"),
    num_mixes=1,
    rows_per_bank=512,
    dram_cycles=2_000,
    requests_per_core=400,
    seed=3,
)

GEOMETRY = ChipGeometry(banks=1, rows_per_bank=32, row_bytes=16)


def fig10_session(tmp_path):
    """A fresh session reading/writing the same on-disk store directory.

    Each call builds a new ResultStore instance so nothing is served from
    process memory -- exactly the state a restarted process would see.
    """
    return ExperimentSession(store=ResultStore(tmp_path / "store"), seed=3)


def points_of(outcome):
    return [point.to_dict() for point in outcome.single().points]


class TestFig10Resume:
    def test_uninterrupted_replay_is_all_unit_hits(self, tmp_path):
        first = fig10_session(tmp_path).run("fig10-mitigations", TINY_FIG10)
        assert first.executed == first.units_total
        assert first.cache_hits == 0

        replay = fig10_session(tmp_path).run("fig10-mitigations", TINY_FIG10)
        assert replay.executed == 0
        assert replay.cache_hits == first.units_total
        assert all(result.from_cache for result in replay.results)
        assert points_of(replay) == points_of(first)

    @pytest.mark.parametrize("killed", [1, 3])
    def test_resume_reexecutes_exactly_the_missing_units(self, tmp_path, killed):
        """Acceptance criterion: deleting k unit cache entries re-executes
        exactly k units, and the merged payload is bit-identical to the
        uninterrupted run."""
        store = ResultStore(tmp_path / "store")
        first = ExperimentSession(store=store, seed=3).run(
            "fig10-mitigations", TINY_FIG10
        )
        unit_files = store.entry_paths("fig10-mitigations", units_only=True)
        assert len(unit_files) == first.units_total

        for path in unit_files[::2][:killed]:  # spread the damage
            path.unlink()

        resumed = fig10_session(tmp_path).run("fig10-mitigations", TINY_FIG10)
        assert resumed.executed == killed
        assert resumed.cache_hits == first.units_total - killed
        assert not resumed.results[0].from_cache  # partially recomputed
        assert points_of(resumed) == points_of(first)

        # The repaired cache replays fully afterwards.
        repaired = fig10_session(tmp_path).run("fig10-mitigations", TINY_FIG10)
        assert repaired.executed == 0
        assert points_of(repaired) == points_of(first)

    def test_editing_one_mechanism_invalidates_only_its_units(self, tmp_path):
        """Unit entries are keyed by unit digest (which embeds the
        unit-relevant config scope), not by the full config digest, so
        adding a mechanism to the sweep re-executes only its cells."""
        fig10_session(tmp_path).run("fig10-mitigations", TINY_FIG10)

        import dataclasses

        widened = dataclasses.replace(
            TINY_FIG10, mechanisms=("PARA", "ProHIT", "Ideal")
        )
        out = fig10_session(tmp_path).run("fig10-mitigations", widened)
        # ProHIT only applies at HC_first=2000, so exactly one new cell.
        assert out.executed == 1
        assert out.cache_hits == out.units_total - 1

    def test_crash_mid_run_checkpoints_completed_units(self, tmp_path):
        """The session consumes executor outcomes as a stream and writes
        each finished unit to the store immediately, so a process dying
        mid-sweep leaves every completed unit on disk and the rerun picks
        up exactly where the crash happened."""

        class CrashAfter(SerialExecutor):
            def __init__(self, completed_before_crash):
                self.completed_before_crash = completed_before_crash

            def iter_outcomes(self, tasks):
                for index, task in enumerate(tasks):
                    if index >= self.completed_before_crash:
                        raise RuntimeError("simulated crash")
                    yield execute_task(task)

        survivors = 4
        store = ResultStore(tmp_path / "store")
        with pytest.raises(RuntimeError, match="simulated crash"):
            ExperimentSession(store=store, executor=CrashAfter(survivors), seed=3).run(
                "fig10-mitigations", TINY_FIG10
            )
        on_disk = store.entry_paths("fig10-mitigations", units_only=True)
        assert len(on_disk) == survivors

        resumed = fig10_session(tmp_path).run("fig10-mitigations", TINY_FIG10)
        assert resumed.cache_hits == survivors
        assert resumed.executed == resumed.units_total - survivors

        # The recovered payload equals a never-crashed run's.
        clean = ExperimentSession(seed=3).run("fig10-mitigations", TINY_FIG10)
        assert points_of(resumed) == points_of(clean)

    def test_store_drop_evicts_single_units(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        session = ExperimentSession(store=store, seed=3)
        session.run("fig10-mitigations", TINY_FIG10)

        spec_units = session.run("fig10-mitigations", TINY_FIG10)
        assert spec_units.executed == 0  # fully cached (memory + disk)

        from repro.experiments import config_digest, get_study

        spec = get_study("fig10-mitigations")
        unit = spec.units_for(TINY_FIG10)[0]
        key = store.key_for(spec.name, config_digest(TINY_FIG10), None, unit)
        assert store.drop(key)
        assert not store.contains(key)
        again = session.run("fig10-mitigations", TINY_FIG10)
        assert again.executed == 1


class TestChipStudyResume:
    def test_alg1_partial_cache_resume(self, tmp_path):
        config = CharacterizationConfig(hammer_counts=(25_000, 50_000, 100_000))

        def session():
            chip = make_chip(
                "LPDDR4-1y", "A", seed=4, geometry=GEOMETRY, hcfirst_target=10_000
            )
            return ExperimentSession(
                chip, store=ResultStore(tmp_path / "store"), seed=4
            )

        first = session().run("alg1-characterization", config)
        assert first.executed == 3

        store = ResultStore(tmp_path / "store")
        unit_files = store.entry_paths("alg1-characterization", units_only=True)
        assert len(unit_files) == 3
        unit_files[1].unlink()

        resumed_session = session()
        resumed = resumed_session.run("alg1-characterization", config)
        assert resumed.executed == 1
        assert resumed.cache_hits == 2
        assert resumed.single().records == first.single().records

        # A fully cached decomposed rerun touches the chip zero times.
        replay_session = session()
        replay = replay_session.run("alg1-characterization", config)
        assert replay.executed == 0
        assert all(chip.stats.activations == 0 for chip in replay_session.chips)
