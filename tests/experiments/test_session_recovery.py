"""SessionRunResult surfaces executor recovery (retries / requeues).

Outcomes carry ``attempts``/``requeues`` (see
:class:`~repro.experiments.executors.TaskOutcome`); the session
accumulates them per study result and :class:`SessionRunResult` sums them,
so a caller can tell a clean sweep from one that survived worker deaths.
Local executors always report zero; a fake recovering executor stands in
for a service run here (the real service path is covered by
``tests/service/test_service_e2e.py``).
"""

from __future__ import annotations

from repro.experiments import ExperimentSession, SerialExecutor
from repro.experiments.executors import Executor, execute_task
from repro.service.selftest import ServiceSelfTestConfig

CONFIG = ServiceSelfTestConfig(units=4, rounds=50)


class RecoveringExecutor(Executor):
    """Executes locally but stamps every outcome as a second attempt."""

    name = "recovering"

    def __init__(self, attempts: int = 2, requeues: int = 1) -> None:
        self.attempts = attempts
        self.requeues = requeues

    def run_tasks(self, tasks):
        outcomes = []
        for task in tasks:
            outcome = execute_task(task)
            outcome.attempts = self.attempts
            outcome.requeues = self.requeues
            outcomes.append(outcome)
        return outcomes


class TestSessionRecoveryCounters:
    def test_local_run_reports_zero_recovery(self):
        result = ExperimentSession(executor=SerialExecutor(), seed=1).run(
            "service-selftest", CONFIG
        )
        assert result.retries == 0
        assert result.requeues == 0
        assert result.results[0].units_retries == 0
        assert result.results[0].units_requeued == 0

    def test_recovering_outcomes_accumulate_per_unit(self):
        result = ExperimentSession(executor=RecoveringExecutor(), seed=1).run(
            "service-selftest", CONFIG
        )
        # attempts=2 means one retry per unit; requeues pass through as-is.
        assert result.retries == CONFIG.units
        assert result.requeues == CONFIG.units
        assert result.results[0].units_retries == CONFIG.units
        assert result.results[0].units_requeued == CONFIG.units
        # Recovery is bookkeeping: payloads still match the clean run.
        clean = ExperimentSession(executor=SerialExecutor(), seed=1).run(
            "service-selftest", CONFIG
        )
        assert result.single() == clean.single()

    def test_first_attempt_success_counts_no_retry(self):
        result = ExperimentSession(
            executor=RecoveringExecutor(attempts=1, requeues=0), seed=1
        ).run("service-selftest", CONFIG)
        assert result.retries == 0
        assert result.requeues == 0
