"""Tests for the study registry (names, duplicates, configs, digests)."""

from dataclasses import dataclass

import pytest

from repro.experiments.study import (
    DuplicateStudyError,
    RegisteredStudy,
    Study,
    UnknownStudyError,
    config_digest,
    describe_studies,
    get_study,
    list_studies,
    register_study,
    unregister_study,
)

BUILTIN_STUDIES = (
    "alg1-characterization",
    "fig4-coverage",
    "fig5-hc-sweep",
    "fig6-spatial",
    "fig7-word-density",
    "fig8-hcfirst",
    "fig9-ecc-words",
    "fig10-mitigations",
    "fig10-mitigations-full",
    "table5-flip-probability",
)


class TestRegistry:
    def test_builtin_studies_registered(self):
        names = list_studies()
        for name in BUILTIN_STUDIES:
            assert name in names

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(UnknownStudyError) as excinfo:
            get_study("no-such-study")
        message = str(excinfo.value)
        assert "no-such-study" in message
        assert "fig5-hc-sweep" in message

    def test_unknown_study_error_is_key_error(self):
        with pytest.raises(KeyError):
            get_study("also-not-a-study")

    def test_duplicate_registration_rejected(self):
        @register_study("test-duplicate-probe")
        def first(chip, config):
            return 1

        try:
            with pytest.raises(DuplicateStudyError):

                @register_study("test-duplicate-probe")
                def second(chip, config):
                    return 2

            # The original registration survives the failed attempt.
            assert get_study("test-duplicate-probe").fn is first
        finally:
            unregister_study("test-duplicate-probe")

    def test_unregister_removes_study(self):
        @register_study("test-unregister-probe")
        def probe(chip, config):
            return None

        unregister_study("test-unregister-probe")
        assert "test-unregister-probe" not in list_studies()

    def test_registered_study_satisfies_protocol(self):
        spec = get_study("fig8-hcfirst")
        assert isinstance(spec, Study)
        assert isinstance(spec, RegisteredStudy)
        assert spec.requires_chip

    def test_description_defaults_to_docstring(self):
        assert "Figure 5" in describe_studies()["fig5-hc-sweep"]

    def test_population_study_flagged(self):
        assert not get_study("fig10-mitigations").requires_chip

    def test_full_fig10_preset_is_paper_scale(self):
        """The paper-scale preset defaults to the full 48-mix evaluation."""
        spec = get_study("fig10-mitigations-full")
        assert not spec.requires_chip
        config = spec.default_config()
        assert isinstance(config, spec.config_cls)
        assert config.num_mixes == 48
        assert config.rows_per_bank == 16384
        assert config.dram_cycles > 20_000
        # A distinct config type means a distinct cache identity, so the
        # full study never collides with the quick preset in a store.
        from repro.analysis.mitigation_study import MitigationStudyConfig
        from repro.experiments.study import config_digest

        assert config_digest(config) != config_digest(MitigationStudyConfig())

    def test_default_config_is_config_cls_instance(self):
        spec = get_study("fig5-hc-sweep")
        config = spec.default_config()
        assert isinstance(config, spec.config_cls)


class TestConfigDigest:
    def test_equal_configs_share_digest(self):
        from repro.core.sweeps import SweepStudyConfig

        a = SweepStudyConfig(hammer_counts=(10_000, 20_000))
        b = SweepStudyConfig(hammer_counts=(10_000, 20_000))
        assert config_digest(a) == config_digest(b)

    def test_different_configs_differ(self):
        from repro.core.sweeps import SweepStudyConfig

        a = SweepStudyConfig(hammer_counts=(10_000, 20_000))
        b = SweepStudyConfig(hammer_counts=(10_000, 30_000))
        assert config_digest(a) != config_digest(b)

    def test_nested_dataclasses_and_mappings_digest(self):
        @dataclass(frozen=True)
        class Inner:
            value: int

        @dataclass(frozen=True)
        class Outer:
            inner: Inner
            table: tuple

        a = Outer(inner=Inner(1), table=(("x", 1), ("y", 2)))
        b = Outer(inner=Inner(1), table=(("x", 1), ("y", 2)))
        assert config_digest(a) == config_digest(b)
        assert config_digest(a) != config_digest(Outer(inner=Inner(2), table=()))

    def test_none_config_digests(self):
        assert config_digest(None) == config_digest(None)
