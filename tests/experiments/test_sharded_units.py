"""Sharded-determinism suite for work-unit (decomposed) studies.

The unit layer's core guarantee: a decomposed study's merged payload is a
pure function of (study, config, chip) -- bit-identical no matter which
executor ran the units, how many workers it used, or in what order the
units completed.  This suite pins that guarantee for the simulator-backed
Figure 10 studies (including equality with the monolithic reference
implementation) and for the chip-grid studies, on a tiny tier-1 config;
a fuller sweep runs behind the ``slow`` marker.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.mitigation_study import (
    DEFAULT_HCFIRST_SWEEP,
    DEFAULT_MECHANISMS,
    FullMitigationStudyConfig,
    MitigationStudyConfig,
)
from repro.core.characterization import CharacterizationConfig
from repro.core.coverage import CoverageStudyConfig
from repro.dram.geometry import ChipGeometry
from repro.dram.population import make_chip
from repro.experiments import (
    Executor,
    ExperimentSession,
    ParallelExecutor,
    SerialExecutor,
    get_study,
)
from repro.experiments.executors import execute_task
from repro.mitigations.registry import is_evaluable

#: Tiny but representative sim-backed sweep: a probabilistic mechanism, a
#: tuned-point mechanism and the oracle, over one small mix.
TINY_FIG10 = dict(
    hcfirst_values=(2_000, 256),
    mechanisms=("PARA", "ProHIT", "Ideal"),
    num_mixes=1,
    rows_per_bank=512,
    dram_cycles=2_000,
    requests_per_core=400,
    seed=3,
)

GEOMETRY = ChipGeometry(banks=1, rows_per_bank=32, row_bytes=16)


class ShuffledCompletionExecutor(Executor):
    """Executes tasks in a seeded-shuffled order, returning outcomes in
    task order -- modelling a pool whose workers finish units out of order."""

    name = "shuffled"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def run_tasks(self, tasks):
        order = list(range(len(tasks)))
        random.Random(self.seed).shuffle(order)
        outcomes = {index: execute_task(tasks[index]) for index in order}
        return [outcomes[index] for index in range(len(tasks))]


def run_fig10(executor, step_mode, **overrides):
    config_kwargs = {**TINY_FIG10, **overrides}
    session = ExperimentSession(population=None, executor=executor, seed=3)
    outcome = session.run(
        "fig10-mitigations", MitigationStudyConfig(step_mode=step_mode, **config_kwargs)
    )
    return outcome


def points_of(study_payload):
    return [point.to_dict() for point in study_payload.points]


class TestFig10ShardedDeterminism:
    @pytest.mark.parametrize("step_mode", ["event", "cycle"])
    def test_parallel_matches_serial_bit_for_bit(self, step_mode):
        serial = run_fig10(SerialExecutor(), step_mode)
        parallel = run_fig10(ParallelExecutor(max_workers=2), step_mode)
        assert points_of(serial.single()) == points_of(parallel.single())
        assert serial.single().points, "the study must produce evaluation points"
        # Both executors executed every unit of the same decomposition.
        assert serial.executed == parallel.executed == serial.units_total

    @pytest.mark.parametrize("shuffle_seed", [1, 2])
    def test_shuffled_completion_order_identical(self, shuffle_seed):
        reference = run_fig10(SerialExecutor(), "event")
        shuffled = run_fig10(ShuffledCompletionExecutor(seed=shuffle_seed), "event")
        assert points_of(reference.single()) == points_of(shuffled.single())

    def test_sharded_matches_monolithic_oracle(self):
        """The merged payload reproduces the monolithic reference function
        bit for bit: same floats, same point order."""
        spec = get_study("fig10-mitigations")
        config = MitigationStudyConfig(step_mode="event", **TINY_FIG10)
        monolithic = spec.run(None, config)
        sharded = run_fig10(SerialExecutor(), "event").single()
        assert points_of(monolithic) == points_of(sharded)


class TestChipGridShardedDeterminism:
    """The chip-grid characterization studies shard bit-identically too."""

    def make_chip(self, seed=4):
        return make_chip(
            "LPDDR4-1y", "A", seed=seed, geometry=GEOMETRY, hcfirst_target=10_000
        )

    def test_alg1_parallel_matches_serial(self):
        config = CharacterizationConfig(hammer_counts=(25_000, 100_000))
        serial = (
            ExperimentSession(self.make_chip(), executor=SerialExecutor(), seed=4)
            .run("alg1-characterization", config)
            .single()
        )
        parallel = (
            ExperimentSession(
                self.make_chip(), executor=ParallelExecutor(max_workers=2), seed=4
            )
            .run("alg1-characterization", config)
            .single()
        )
        assert serial.records == parallel.records
        # Merge interleaves the per-count units back into Algorithm 1's
        # loop order: hammer count is the innermost axis.
        counts = [record.hammer_count for record in serial.records]
        assert counts[:4] == [25_000, 100_000, 25_000, 100_000]

    def test_fig4_parallel_matches_serial(self):
        config = CoverageStudyConfig(
            hammer_count=100_000, patterns=("RowStripe0", "RowStripe1", "Checkered0")
        )
        serial = (
            ExperimentSession(self.make_chip(), executor=SerialExecutor(), seed=4)
            .run("fig4-coverage", config)
            .single()
        )
        parallel = (
            ExperimentSession(
                self.make_chip(), executor=ParallelExecutor(max_workers=2), seed=4
            )
            .run("fig4-coverage", config)
            .single()
        )
        assert serial.to_dict() == parallel.to_dict()
        assert list(serial.coverage_by_pattern) == list(config.patterns)


class TestPaperScaleDecomposition:
    def test_fig10_full_decomposes_into_paper_grid(self):
        """Acceptance criterion: the paper-scale study decomposes into the
        full (mechanism, HC_first, mix) grid -- at least 47 x 48 cells --
        plus one baseline unit per mix."""
        spec = get_study("fig10-mitigations-full")
        config = FullMitigationStudyConfig()
        units = spec.units_for(config)
        cells = [unit for unit in units if unit.param_dict["kind"] == "cell"]
        baselines = [unit for unit in units if unit.param_dict["kind"] == "baseline"]
        evaluable_points = sum(
            1
            for mechanism in DEFAULT_MECHANISMS
            for hcfirst in DEFAULT_HCFIRST_SWEEP
            if is_evaluable(mechanism, hcfirst)
        )
        assert evaluable_points == 47
        assert len(baselines) == 48
        assert len(cells) == evaluable_points * 48
        assert len(cells) >= 47 * 48
        # Every unit has a distinct cache identity.
        digests = [unit.digest for unit in units]
        assert len(set(digests)) == len(digests)

    def test_undecomposed_study_is_single_unit(self):
        spec = get_study("fig5-hc-sweep")
        units = spec.units_for(None)
        assert len(units) == 1
        assert units[0].is_whole_study


@pytest.mark.slow
class TestFullSweepShardedDeterminism:
    """Wider sweep (every mechanism, several HC_first points, two mixes)."""

    SWEEP = dict(
        hcfirst_values=(100_000, 25_600, 2_000, 256, 64),
        mechanisms=DEFAULT_MECHANISMS,
        num_mixes=2,
        rows_per_bank=2_048,
        dram_cycles=8_000,
        requests_per_core=1_600,
        seed=7,
    )

    @pytest.mark.parametrize("step_mode", ["event", "cycle"])
    def test_parallel_matches_serial(self, step_mode):
        serial = run_fig10(SerialExecutor(), step_mode, **self.SWEEP)
        parallel = run_fig10(ParallelExecutor(max_workers=2), step_mode, **self.SWEEP)
        assert points_of(serial.single()) == points_of(parallel.single())

    def test_sharded_matches_monolithic_oracle(self):
        spec = get_study("fig10-mitigations")
        config = MitigationStudyConfig(step_mode="event", **self.SWEEP)
        monolithic = spec.run(None, config)
        sharded = run_fig10(SerialExecutor(), "event", **self.SWEEP).single()
        assert points_of(monolithic) == points_of(sharded)
