"""WorkUnit digest stability: property-based and cross-process tests.

The unit digest keys the unit-level result cache, so it must be a pure
function of the unit's content: invariant under parameter-dict key order,
stable across process restarts (no per-process hash salting), and
collision-free across the cells of a study grid.
"""

from __future__ import annotations

import hashlib
import os
import random
import string
import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.analysis.mitigation_study import (
    DEFAULT_MECHANISMS,
    FullMitigationStudyConfig,
    MitigationStudyConfig,
)
from repro.experiments import WorkUnit, get_study
from repro.experiments.study import _canonical

param_keys = st.text(alphabet=string.ascii_lowercase + "_", min_size=1, max_size=10)
param_values = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.text(alphabet=string.printable, max_size=16),
    st.booleans(),
    st.tuples(st.integers(min_value=0, max_value=999)),
)
param_dicts = st.dictionaries(param_keys, param_values, max_size=8)


class TestDigestProperties:
    @given(params=param_dicts, shuffle_seed=st.integers(0, 2**16))
    def test_digest_invariant_under_key_order(self, params, shuffle_seed):
        """A unit built from a shuffled item list equals (and digests
        identically to) one built from the dict."""
        items = list(params.items())
        random.Random(shuffle_seed).shuffle(items)
        from_dict = WorkUnit(study="probe", unit_id="u", params=params)
        from_items = WorkUnit(study="probe", unit_id="u", params=items)
        assert from_dict == from_items
        assert from_dict.digest == from_items.digest

    @given(params=param_dicts)
    def test_digest_is_documented_pure_function(self, params):
        """The digest is exactly the sha256 of (study, unit_id, canonical
        params) -- no process-dependent state -- which is what makes it
        stable across restarts."""
        unit = WorkUnit(study="probe", unit_id="u", params=params)
        text = "\x1f".join(("probe", "u", _canonical(unit.param_dict)))
        expected = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
        assert unit.digest == expected

    @given(params=param_dicts, index=st.integers(0, 1000))
    def test_digest_ignores_decomposition_index(self, params, index):
        a = WorkUnit(study="probe", unit_id="u", params=params, index=0)
        b = WorkUnit(study="probe", unit_id="u", params=params, index=index)
        assert a.digest == b.digest

    @given(
        mechanisms=st.lists(
            st.sampled_from(DEFAULT_MECHANISMS), unique=True, min_size=1
        ),
        hcfirsts=st.lists(
            st.integers(min_value=1, max_value=10**6), unique=True, min_size=1, max_size=6
        ),
        num_mixes=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50)
    def test_grid_cells_never_collide(self, mechanisms, hcfirsts, num_mixes):
        """Distinct (mechanism, HC_first, mix) cells of a random grid get
        distinct digests."""
        units = [
            WorkUnit(
                study="probe",
                unit_id=f"cell/{mechanism}/hc{hcfirst}/mix{mix:02d}",
                params={
                    "kind": "cell",
                    "mechanism": mechanism,
                    "hcfirst": hcfirst,
                    "mix": mix,
                },
            )
            for mechanism in mechanisms
            for hcfirst in hcfirsts
            for mix in range(num_mixes)
        ]
        digests = [unit.digest for unit in units]
        assert len(set(digests)) == len(digests)


class TestRegisteredGridDigests:
    def test_fig10_full_grid_digests_unique(self):
        """The paper-scale decomposition (>= 47x48 cells + 48 baselines)
        has no digest collisions."""
        units = get_study("fig10-mitigations-full").units_for(FullMitigationStudyConfig())
        digests = {unit.digest for unit in units}
        assert len(digests) == len(units) >= 47 * 48

    def test_quick_and_full_fig10_digests_disjoint(self):
        """The quick and paper-scale presets never share cache entries:
        their units differ in study name and simulation parameters."""
        quick = get_study("fig10-mitigations").units_for(MitigationStudyConfig())
        full = get_study("fig10-mitigations-full").units_for(FullMitigationStudyConfig())
        assert not {u.digest for u in quick} & {u.digest for u in full}


class TestProcessRestartStability:
    def test_digest_stable_across_process_restarts(self):
        """A fresh interpreter recomputes the same digests for the tiny
        fig10 decomposition (guards against relying on salted hashing)."""
        spec = get_study("fig10-mitigations")
        config = MitigationStudyConfig(
            hcfirst_values=(2_000,), mechanisms=("PARA",), num_mixes=1
        )
        expected = ",".join(unit.digest for unit in spec.units_for(config))

        script = (
            "from repro.experiments import get_study\n"
            "from repro.analysis.mitigation_study import MitigationStudyConfig\n"
            "config = MitigationStudyConfig(hcfirst_values=(2_000,), "
            "mechanisms=('PARA',), num_mixes=1)\n"
            "units = get_study('fig10-mitigations').units_for(config)\n"
            "print(','.join(unit.digest for unit in units))\n"
        )
        src_root = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src_root) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert output == expected
