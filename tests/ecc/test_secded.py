"""Tests for the SECDED extended Hamming code."""

import numpy as np
import pytest

from repro.ecc.secded import SecDedCode
from repro.utils.rng import make_rng


class TestSecDed:
    def test_codeword_size(self):
        assert SecDedCode(64).codeword_bits == 72

    def test_clean_round_trip(self):
        code = SecDedCode(64)
        data = make_rng(0).integers(0, 2, 64).astype(np.uint8)
        result = code.decode(code.encode(data))
        assert np.array_equal(result.data, data)
        assert not result.corrected
        assert not result.uncorrectable

    def test_single_error_corrected(self):
        code = SecDedCode(32)
        data = make_rng(1).integers(0, 2, 32).astype(np.uint8)
        codeword = code.encode(data)
        for position in (0, 5, code.codeword_bits - 2):
            corrupted = codeword.copy()
            corrupted[position] ^= 1
            result = code.decode(corrupted)
            assert np.array_equal(result.data, data)
            assert result.corrected
            assert not result.uncorrectable

    def test_overall_parity_bit_error_corrected(self):
        code = SecDedCode(32)
        data = make_rng(2).integers(0, 2, 32).astype(np.uint8)
        corrupted = code.encode(data)
        corrupted[-1] ^= 1
        result = code.decode(corrupted)
        assert np.array_equal(result.data, data)
        assert result.corrected

    def test_double_error_detected_not_corrected(self):
        code = SecDedCode(32)
        data = make_rng(3).integers(0, 2, 32).astype(np.uint8)
        codeword = code.encode(data)
        corrupted = codeword.copy()
        corrupted[2] ^= 1
        corrupted[9] ^= 1
        result = code.decode(corrupted)
        assert result.uncorrectable
        assert not result.corrected

    def test_wrong_length_rejected(self):
        code = SecDedCode(32)
        with pytest.raises(ValueError):
            code.decode(np.zeros(10, dtype=np.uint8))
