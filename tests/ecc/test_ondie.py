"""Tests for the LPDDR4 on-die ECC model."""

import numpy as np
import pytest

from repro.ecc.ondie import OnDieEcc
from repro.utils.rng import make_rng


class TestRowGeometry:
    def test_words_per_row(self):
        ecc = OnDieEcc(word_data_bits=128)
        assert ecc.words_per_row(1024) == 8
        assert ecc.check_bits_per_row(1024) == 8 * ecc.check_bits_per_word

    def test_rejects_misaligned_rows(self):
        ecc = OnDieEcc(word_data_bits=128)
        with pytest.raises(ValueError):
            ecc.words_per_row(100)


class TestDecodeBehaviour:
    def _row(self, bits=256, seed=0):
        rng = make_rng(seed)
        return rng.integers(0, 2, bits).astype(np.uint8)

    def test_clean_row_passes_through(self):
        ecc = OnDieEcc()
        data = self._row()
        check = ecc.encode_row(data)
        decoded, corrected = ecc.decode_row(data, check)
        assert np.array_equal(decoded, data)
        assert not corrected.any()

    def test_single_error_per_word_corrected(self):
        ecc = OnDieEcc()
        data = self._row()
        check = ecc.encode_row(data)
        corrupted = data.copy()
        corrupted[5] ^= 1     # word 0
        corrupted[200] ^= 1   # word 1
        decoded, corrected = ecc.decode_row(corrupted, check)
        assert np.array_equal(decoded, data)
        assert corrected.sum() == 2

    def test_double_error_in_one_word_not_hidden(self):
        ecc = OnDieEcc()
        data = self._row(seed=1)
        check = ecc.encode_row(data)
        corrupted = data.copy()
        corrupted[3] ^= 1
        corrupted[77] ^= 1  # same 128-bit word as bit 3
        decoded, _corrected = ecc.decode_row(corrupted, check)
        visible_errors = int((decoded != data).sum())
        # Undefined decoder behaviour: it may leave 2 errors, reduce to 1, or
        # miscorrect to 3 -- but it cannot return clean data.
        assert visible_errors >= 1

    def test_check_bit_corruption_does_not_corrupt_data(self):
        ecc = OnDieEcc()
        data = self._row(seed=2)
        check = ecc.encode_row(data)
        corrupted_check = check.copy()
        corrupted_check[0] ^= 1
        decoded, _corrected = ecc.decode_row(data, corrupted_check)
        assert np.array_equal(decoded, data)
