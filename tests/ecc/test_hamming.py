"""Tests for the Hamming SEC codec."""

import numpy as np
import pytest

from repro.ecc.hamming import HammingCode
from repro.utils.rng import make_rng


class TestConstruction:
    def test_code_sizes(self):
        assert HammingCode(64).parity_bits == 7
        assert HammingCode(64).codeword_bits == 71
        assert HammingCode(128).parity_bits == 8
        assert HammingCode(128).codeword_bits == 136

    def test_rejects_nonpositive_data_bits(self):
        with pytest.raises(ValueError):
            HammingCode(0)

    def test_position_partition(self):
        code = HammingCode(32)
        all_positions = set(code.data_positions) | set(code.parity_positions)
        assert all_positions == set(range(1, code.codeword_bits + 1))


class TestEncodeDecode:
    def test_clean_round_trip(self):
        code = HammingCode(64)
        rng = make_rng(1)
        data = rng.integers(0, 2, 64).astype(np.uint8)
        result = code.decode(code.encode(data))
        assert np.array_equal(result.data, data)
        assert not result.detected

    def test_every_single_bit_error_corrected(self):
        code = HammingCode(16)
        data = make_rng(2).integers(0, 2, 16).astype(np.uint8)
        codeword = code.encode(data)
        for position in range(code.codeword_bits):
            corrupted = codeword.copy()
            corrupted[position] ^= 1
            result = code.decode(corrupted)
            assert np.array_equal(result.data, data), f"failed at position {position}"
            assert result.detected

    def test_double_bit_error_not_reliably_corrected(self):
        # With two errors the syndrome is undefined behaviour: the decoder
        # may miscorrect; the result must simply differ from silent success.
        code = HammingCode(16)
        data = np.zeros(16, dtype=np.uint8)
        codeword = code.encode(data)
        miscorrections = 0
        trials = 0
        for i in range(0, code.codeword_bits, 3):
            for j in range(i + 1, code.codeword_bits, 5):
                corrupted = codeword.copy()
                corrupted[i] ^= 1
                corrupted[j] ^= 1
                result = code.decode(corrupted)
                trials += 1
                if not np.array_equal(result.data, data):
                    miscorrections += 1
        assert trials > 0
        # A SEC code cannot correct double errors, so most trials must leave
        # the data corrupted (possibly with an extra miscorrected bit).
        assert miscorrections > trials * 0.5

    def test_extract_data_without_decode(self):
        code = HammingCode(8)
        data = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        assert np.array_equal(code.extract_data(code.encode(data)), data)


class TestBatchInterface:
    def test_encode_many_matches_single(self):
        code = HammingCode(32)
        rng = make_rng(3)
        words = rng.integers(0, 2, (5, 32)).astype(np.uint8)
        batch = code.encode_many(words)
        for index in range(5):
            assert np.array_equal(batch[index], code.encode(words[index]))

    def test_decode_many_corrects_per_word(self):
        code = HammingCode(32)
        rng = make_rng(4)
        words = rng.integers(0, 2, (4, 32)).astype(np.uint8)
        codewords = code.encode_many(words)
        codewords[2, 10] ^= 1  # single error in word 2 only
        decoded, detected, positions = code.decode_many(codewords)
        assert np.array_equal(decoded, words)
        assert detected.tolist() == [False, False, True, False]
        assert positions[2] == 11  # 1-based position

    def test_shape_validation(self):
        code = HammingCode(32)
        with pytest.raises(ValueError):
            code.encode_many(np.zeros((2, 31), dtype=np.uint8))
        with pytest.raises(ValueError):
            code.decode_many(np.zeros((2, 10), dtype=np.uint8))
