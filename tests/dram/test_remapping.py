"""Tests for logical-to-physical row remapping schemes."""

import pytest

from repro.dram.remapping import (
    IdentityRemapper,
    PairedWordlineRemapper,
    XorRemapper,
    remapper_for,
)


class TestIdentityRemapper:
    def test_maps_to_itself(self):
        remapper = IdentityRemapper()
        assert remapper.logical_to_physical(42) == 42
        assert remapper.physical_to_logical(42) == [42]

    def test_aggressors_are_adjacent_rows(self):
        remapper = IdentityRemapper()
        assert sorted(remapper.aggressors_for(10)) == [9, 11]

    def test_num_wordlines(self):
        assert IdentityRemapper().num_wordlines(64) == 64


class TestXorRemapper:
    def test_involution(self):
        remapper = XorRemapper(xor_bit=1)
        for row in range(16):
            assert remapper.logical_to_physical(remapper.logical_to_physical(row)) == row

    def test_swaps_pairs(self):
        remapper = XorRemapper(xor_bit=1)
        assert remapper.logical_to_physical(2) == 3
        assert remapper.logical_to_physical(3) == 2

    def test_rejects_zero_mask(self):
        with pytest.raises(ValueError):
            XorRemapper(xor_bit=0)


class TestPairedWordlineRemapper:
    def test_pairs_share_wordline(self):
        remapper = PairedWordlineRemapper()
        assert remapper.logical_to_physical(6) == remapper.logical_to_physical(7) == 3

    def test_physical_to_logical(self):
        remapper = PairedWordlineRemapper()
        assert remapper.physical_to_logical(3) == [6, 7]

    def test_aggressors_skip_shared_wordline(self):
        # The paper hammers rows N-2 and N+2 for a victim N in manufacturer
        # B's LPDDR4-1x chips; the paired remapper must produce aggressors
        # from the adjacent wordlines, not the victim's own wordline.
        remapper = PairedWordlineRemapper()
        aggressors = remapper.aggressors_for(6)
        assert 6 not in aggressors and 7 not in aggressors
        assert set(aggressors) == {4, 5, 8, 9}

    def test_num_wordlines_halved(self):
        assert PairedWordlineRemapper().num_wordlines(64) == 32
        assert PairedWordlineRemapper().num_wordlines(65) == 33


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(remapper_for("identity"), IdentityRemapper)
        assert isinstance(remapper_for("paired"), PairedWordlineRemapper)
        assert isinstance(remapper_for("xor"), XorRemapper)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            remapper_for("nonsense")
