"""Tests for DRAM type specifications."""

import pytest

from repro.dram.spec import SPECS, DramType, spec_for


class TestSpecs:
    def test_all_three_types_present(self):
        assert set(SPECS) == {DramType.DDR3, DramType.DDR4, DramType.LPDDR4}

    def test_trc_matches_paper(self):
        # Section 4.3 quotes DDR3 52.5 ns, DDR4 50 ns, LPDDR4 60 ns.
        assert spec_for(DramType.DDR3).trc_ns == pytest.approx(52.5)
        assert spec_for(DramType.DDR4).trc_ns == pytest.approx(50.0)
        assert spec_for(DramType.LPDDR4).trc_ns == pytest.approx(60.0)

    def test_only_lpddr4_has_on_die_ecc(self):
        assert spec_for(DramType.LPDDR4).on_die_ecc
        assert not spec_for(DramType.DDR3).on_die_ecc
        assert not spec_for(DramType.DDR4).on_die_ecc

    def test_row_bits(self):
        spec = spec_for(DramType.DDR4)
        assert spec.row_bits == spec.row_bytes * 8


class TestRefreshWindowBudget:
    def test_150k_hammers_fit_in_32ms_window(self):
        # The paper's 150k-hammer test ceiling is chosen so the core loop
        # stays under the 32 ms minimum refresh window for every DRAM type.
        for spec in SPECS.values():
            assert spec.max_hammers_in_refresh_window(32.0) >= 150_000

    def test_max_hammers_scales_with_window(self):
        spec = spec_for(DramType.DDR4)
        assert spec.max_hammers_in_refresh_window(64.0) == 2 * spec.max_hammers_in_refresh_window(32.0)

    def test_rows_per_refresh_window(self):
        spec = spec_for(DramType.DDR4)
        assert spec.rows_per_refresh_window == pytest.approx(8205, abs=10)
