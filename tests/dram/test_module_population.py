"""Tests for DRAM modules and population generation."""

import pytest

from repro.dram.geometry import ChipGeometry
from repro.dram.module import DramModule
from repro.dram.population import (
    TABLE1_POPULATION,
    TABLE7_DDR4_MODULES,
    TABLE8_DDR3_MODULES,
    make_chip,
    make_module,
    make_population,
    population_summary,
)
from repro.dram.vulnerability import TypeNode

SMALL = ChipGeometry(banks=1, rows_per_bank=32, row_bytes=32)


class TestTableData:
    def test_table1_totals_match_paper(self):
        # 1580 chips from 300 modules.
        assert sum(e.chips for e in TABLE1_POPULATION) == 1580
        assert sum(e.modules for e in TABLE1_POPULATION) == 300

    def test_table1_per_type_chip_counts(self):
        by_type = {}
        for entry in TABLE1_POPULATION:
            key = entry.type_node.dram_type.value
            by_type[key] = by_type.get(key, 0) + entry.chips
        assert by_type == {"DDR3": 408, "DDR4": 652, "LPDDR4": 520}

    def test_table7_table8_minima_include_table4_values(self):
        ddr4_minima = [r.min_hcfirst_k for r in TABLE7_DDR4_MODULES if r.min_hcfirst_k]
        assert min(ddr4_minima) == pytest.approx(10.0)
        ddr3_minima = [r.min_hcfirst_k for r in TABLE8_DDR3_MODULES if r.min_hcfirst_k]
        assert min(ddr3_minima) == pytest.approx(22.4)

    def test_population_summary_shape(self):
        summary = population_summary()
        assert summary["DDR4-new"]["A"] == (264, 43)
        assert "C" not in summary["LPDDR4-1x"]


class TestFactories:
    def test_make_chip_configuration(self):
        chip = make_chip("DDR4-old", "B", seed=4, geometry=SMALL)
        assert chip.profile.type_node is TypeNode.DDR4_OLD
        assert chip.profile.manufacturer == "B"

    def test_make_module_creates_distinct_chips(self):
        module = make_module("DDR4-new", "A", num_chips=4, seed=1, geometry=SMALL)
        assert module.num_chips == 4
        assert len({chip.hcfirst_target for chip in module.chips}) > 1
        assert module.min_hcfirst_target() == min(c.hcfirst_target for c in module.chips)

    def test_module_iteration_and_len(self):
        module = make_module("DDR4-new", "A", num_chips=3, seed=2, geometry=SMALL)
        assert len(module) == 3
        assert len(list(module)) == 3

    def test_empty_module_min_is_none(self):
        module = DramModule(module_id="x", profile=make_chip("DDR4-new", "A", geometry=SMALL).profile)
        assert module.min_hcfirst_target() is None

    def test_make_population_scaled(self):
        population = make_population(chips_per_config=2, seed=0, geometry=SMALL)
        assert len(population) == 16
        assert all(len(chips) == 2 for chips in population.values())

    def test_make_population_restricted_configurations(self):
        population = make_population(
            chips_per_config=1,
            geometry=SMALL,
            configurations=[("DDR4-new", "A"), ("LPDDR4-1y", "C")],
        )
        assert set(population) == {
            (TypeNode.DDR4_NEW, "A"),
            (TypeNode.LPDDR4_1Y, "C"),
        }

    def test_population_chips_are_deterministic(self):
        one = make_population(chips_per_config=1, seed=5, geometry=SMALL)
        two = make_population(chips_per_config=1, seed=5, geometry=SMALL)
        for key in one:
            assert one[key][0].hcfirst_target == two[key][0].hcfirst_target
