"""Differential tests: columnar chip backends versus the reference oracle.

The columnar :class:`~repro.dram.chip.DramChip` (and the chip-major
:class:`~repro.dram.population.ChipPopulation` built on the same samplers)
promise *bit identity* with the retained object-at-a-time
:class:`~repro.dram.reference.ReferenceDramChip`.  This suite checks the
promise two ways:

* hypothesis drives random operation soups -- interleaved writes, batch
  writes, hammers, activates, refreshes and reads -- through both backends
  in lockstep, comparing every return value and the final raw state,
  stats, and :func:`~repro.dram.chip.state_digest`; and
* deterministic *flip-inducing* sequences (worst-case stripe fill plus a
  far-above-threshold double-sided hammer against a low planted
  ``HC_first``) confirm the equivalence holds where it matters most: on
  chips that actually flip bits, across ECC/remapper/coupling variants.

Random soups alone rarely accumulate enough exposure to flip anything, so
the hypothesis strategy biases hammer counts high and refreshes low, and
the deterministic cases guarantee non-zero flip coverage.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.chip import DramChip, state_digest
from repro.dram.geometry import ChipGeometry
from repro.dram.population import ChipPopulation
from repro.dram.reference import ReferenceDramChip
from repro.dram.vulnerability import available_configurations, profile_for

#: Tiny geometry keeps each example cheap; 24 rows still leaves room for
#: double-sided neighbourhoods under every remapper.
GEOMETRY = ChipGeometry(banks=1, rows_per_bank=24, row_bytes=16)

#: Low planted threshold so generated hammer counts can induce flips.
HCFIRST_TARGET = 1_500

#: A spread of Table 1 configurations covering ECC on/off and remappers.
_ALL_CONFIGS = list(available_configurations())
CONFIG_CASES = [
    pytest.param(tn, mfr, id=f"{tn.value}-{mfr}")
    for tn, mfr in (
        _ALL_CONFIGS[0],
        _ALL_CONFIGS[len(_ALL_CONFIGS) // 3],
        _ALL_CONFIGS[(2 * len(_ALL_CONFIGS)) // 3],
        _ALL_CONFIGS[-1],
    )
]


def build_pair(type_node, manufacturer, seed):
    """One columnar chip and one reference chip with identical calibration."""
    kwargs = dict(geometry=GEOMETRY, seed=seed, hcfirst_target=HCFIRST_TARGET)
    profile = profile_for(type_node, manufacturer)
    return DramChip(profile, **kwargs), ReferenceDramChip(profile, **kwargs)


def assert_same_state(columnar, reference):
    """Raw bits, decoded reads, stats and digests all agree."""
    for bank in range(GEOMETRY.banks):
        raw_c = columnar.read_rows_raw(bank, list(range(GEOMETRY.rows_per_bank)))
        raw_r = reference.read_rows_raw(bank, list(range(GEOMETRY.rows_per_bank)))
        assert np.array_equal(raw_c, raw_r)
    assert state_digest(columnar) == state_digest(reference)
    for field in ("activations", "refreshes", "row_writes", "bit_flips_induced"):
        assert getattr(columnar.stats, field) == getattr(reference.stats, field), field


# ----------------------------------------------------------------------
# Operation-soup strategy
# ----------------------------------------------------------------------
ROWS = st.integers(min_value=0, max_value=GEOMETRY.rows_per_bank - 1)
FILLS = st.integers(min_value=0, max_value=255)

OPS = st.one_of(
    st.tuples(st.just("write_row"), ROWS, FILLS),
    st.tuples(
        st.just("write_rows"),
        st.lists(ROWS, min_size=1, max_size=6, unique=True),
        FILLS,
    ),
    st.tuples(st.just("activate"), ROWS, st.integers(min_value=1, max_value=30_000)),
    st.tuples(st.just("hammer_pair"), ROWS, ROWS, st.integers(min_value=1, max_value=40_000)),
    # Refreshes are rare (weight via one_of order is uniform; keep counts
    # low through the op-list size instead) so exposure can accumulate.
    st.tuples(st.just("refresh_row"), ROWS),
    st.tuples(st.just("refresh_all")),
    st.tuples(st.just("read_row"), ROWS),
)


def apply_op(chip, op):
    """Apply one soup op; returns a comparable outcome value."""
    kind = op[0]
    if kind == "write_row":
        chip.write_row(0, op[1], op[2])
        return None
    if kind == "write_rows":
        chip.write_rows(0, op[1], op[2])
        return None
    if kind == "activate":
        return chip.activate(0, op[1], op[2])
    if kind == "hammer_pair":
        return chip.hammer_pair(0, op[1], op[2], op[3])
    if kind == "refresh_row":
        chip.refresh_row(0, op[1])
        return None
    if kind == "refresh_all":
        chip.refresh_all()
        return None
    assert kind == "read_row"
    return chip.read_row(0, op[1]).tobytes()


class TestOperationSoups:
    @pytest.mark.parametrize("type_node,manufacturer", CONFIG_CASES)
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16), ops=st.lists(OPS, min_size=1, max_size=30))
    def test_soup_is_bit_identical(self, type_node, manufacturer, seed, ops):
        columnar, reference = build_pair(type_node, manufacturer, seed)
        for op in ops:
            assert apply_op(columnar, op) == apply_op(reference, op), op
        assert_same_state(columnar, reference)
        assert columnar.is_pristine == reference.is_pristine

    @pytest.mark.parametrize("type_node,manufacturer", CONFIG_CASES)
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16), ops=st.lists(OPS, min_size=0, max_size=10))
    def test_soup_after_worst_case_hammer(self, type_node, manufacturer, seed, ops):
        """Soups layered over a guaranteed-flip prefix stay identical."""
        columnar, reference = build_pair(type_node, manufacturer, seed)
        flips = []
        for chip in (columnar, reference):
            bank, victim, aggressors, _fill = _prepare_worst_case(chip)
            chip.refresh_row(bank, victim)
            flips.append(chip.hammer_pair(bank, aggressors[0], aggressors[-1], 40_000))
        assert flips[0] == flips[1]
        assert flips[0] > 0, "prefix must induce flips for the test to bite"
        for op in ops:
            assert apply_op(columnar, op) == apply_op(reference, op), op
        assert_same_state(columnar, reference)


def _prepare_worst_case(chip):
    """Worst-case stripe fill around the planted weakest cell."""
    bank, victim, _column = chip.weakest_cell
    dominant = chip.profile.coupling_classes[0]
    victim_fill = 0x00 if dominant.victim_bit == 0 else 0xFF
    aggressor_fill = 0x00 if dominant.aggressor_bit == 0 else 0xFF
    victim_wordline = chip.remapper.logical_to_physical(victim)
    rows, data = [], []
    for row in range(chip.geometry.rows_per_bank):
        wordline = chip.remapper.logical_to_physical(row)
        rows.append(row)
        data.append(victim_fill if (wordline - victim_wordline) % 2 == 0 else aggressor_fill)
    chip.write_rows(bank, rows, data)
    aggressors = []
    for neighbour in (victim_wordline - 1, victim_wordline + 1):
        for logical in chip.remapper.physical_to_logical(neighbour):
            if 0 <= logical < chip.geometry.rows_per_bank:
                aggressors.append(logical)
                break
    assert len(aggressors) == 2
    return bank, victim, aggressors, victim_fill


# ----------------------------------------------------------------------
# Population differential: ChipPopulation vs per-chip execution
# ----------------------------------------------------------------------
class TestPopulationDifferential:
    @pytest.mark.parametrize("type_node,manufacturer", CONFIG_CASES)
    def test_population_matches_individual_chips(self, type_node, manufacturer):
        profile = profile_for(type_node, manufacturer)
        seeds = [101, 202, 303]
        chips = [
            DramChip(profile, geometry=GEOMETRY, seed=s, hcfirst_target=HCFIRST_TARGET)
            for s in seeds
        ]
        population = ChipPopulation(chips)
        singles = [
            ReferenceDramChip(profile, geometry=GEOMETRY, seed=s, hcfirst_target=HCFIRST_TARGET)
            for s in seeds
        ]

        # One shared sequence for every chip (the population contract):
        # chip 0's worst-case stripe layout, broadcast to all.
        bank, victim, aggressors, _fill = _prepare_worst_case(singles[0])
        rows = list(range(GEOMETRY.rows_per_bank))
        data = [int(np.packbits(singles[0].read_row_raw(bank, row))[0]) for row in rows]
        for single in singles[1:]:
            single.write_rows(bank, rows, data)
        population.write_rows(bank, rows, data)

        population.refresh_row(bank, victim)
        pop_flips = population.hammer_pair(bank, aggressors[0], aggressors[-1], 40_000)
        single_flips = []
        for single in singles:
            single.refresh_row(bank, victim)
            single_flips.append(single.hammer_pair(bank, aggressors[0], aggressors[-1], 40_000))

        assert list(pop_flips) == single_flips
        assert sum(single_flips) > 0, "sequence must induce flips somewhere"
        assert np.array_equal(population.flips_per_chip, np.array(single_flips))
        for index, single in enumerate(singles):
            for row in rows:
                assert np.array_equal(
                    population.read_row_raw(bank, row)[index],
                    single.read_row_raw(bank, row),
                )
                assert np.array_equal(
                    population.read_row(bank, row)[index], single.read_row(bank, row)
                )
            stats = population.chip_stats(index)
            assert stats.bit_flips_induced == single.stats.bit_flips_induced
            assert stats.activations == single.stats.activations
            assert stats.row_writes == single.stats.row_writes

    def test_population_rejects_mixed_or_dirty_chips(self):
        profile_a = profile_for(*_ALL_CONFIGS[0])
        profile_b = profile_for(*_ALL_CONFIGS[-1])
        chip_a = DramChip(profile_a, geometry=GEOMETRY, seed=1)
        chip_b = DramChip(profile_b, geometry=GEOMETRY, seed=2)
        with pytest.raises(ValueError):
            ChipPopulation([])
        with pytest.raises(ValueError):
            ChipPopulation([chip_a, chip_b])
        dirty = DramChip(profile_a, geometry=GEOMETRY, seed=3)
        dirty.write_row(0, 0, 0xAB)
        with pytest.raises(ValueError):
            ChipPopulation([chip_a, dirty])
