"""Tests for the behavioural DRAM chip model."""

import numpy as np
import pytest

from repro.dram.chip import DramChip
from repro.dram.geometry import ChipGeometry
from repro.dram.population import make_chip
from repro.dram.vulnerability import profile_for


class TestDataPath:
    def test_read_back_written_fill_byte(self, ddr4_chip):
        ddr4_chip.write_row(0, 5, 0xA5)
        assert np.all(ddr4_chip.read_row(0, 5) == 0xA5)

    def test_read_back_written_buffer(self, ddr4_chip):
        data = np.arange(ddr4_chip.geometry.row_bytes, dtype=np.uint8)
        ddr4_chip.write_row(0, 6, data)
        assert np.array_equal(ddr4_chip.read_row(0, 6), data)

    def test_unwritten_row_reads_zero(self, ddr4_chip):
        assert np.all(ddr4_chip.read_row(0, 40) == 0)

    def test_write_accepts_bit_array(self, ddr4_chip):
        bits = np.ones(ddr4_chip.geometry.row_bits, dtype=np.uint8)
        ddr4_chip.write_row(0, 7, bits)
        assert np.all(ddr4_chip.read_row(0, 7) == 0xFF)

    def test_write_rejects_bad_sizes_and_values(self, ddr4_chip):
        with pytest.raises(ValueError):
            ddr4_chip.write_row(0, 0, np.zeros(3, dtype=np.uint8))
        with pytest.raises(ValueError):
            ddr4_chip.write_row(0, 0, 300)

    def test_out_of_range_addresses_rejected(self, ddr4_chip):
        with pytest.raises(IndexError):
            ddr4_chip.write_row(5, 0, 0)
        with pytest.raises(IndexError):
            ddr4_chip.read_row(0, 10_000)

    def test_stats_count_operations(self, ddr4_chip):
        ddr4_chip.write_row(0, 1, 0)
        ddr4_chip.read_row(0, 1)
        ddr4_chip.refresh_row(0, 1)
        assert ddr4_chip.stats.row_writes == 1
        assert ddr4_chip.stats.row_reads == 1
        assert ddr4_chip.stats.refreshes == 1


class TestHammering:
    def _prepare_neighbourhood(self, chip, victim, victim_byte, aggressor_byte):
        for row in range(victim - 3, victim + 4):
            byte = victim_byte if (row - victim) % 2 == 0 else aggressor_byte
            chip.write_row(0, row, byte)

    def test_robust_chip_never_flips_within_limit(self, robust_chip):
        victim = 20
        self._prepare_neighbourhood(robust_chip, victim, 0x00, 0xFF)
        flips = robust_chip.hammer_pair(0, victim - 1, victim + 1, 150_000)
        assert flips == 0
        assert np.all(robust_chip.read_row(0, victim) == 0x00)

    def test_vulnerable_chip_flips_above_target(self, ddr4_chip):
        _bank, victim, _bit = ddr4_chip.weakest_cell
        hammer_count = int(ddr4_chip.hcfirst_target * 1.2)
        self._prepare_neighbourhood(ddr4_chip, victim, 0x00, 0xFF)
        flips = ddr4_chip.hammer_pair(0, victim - 1, victim + 1, hammer_count)
        assert flips > 0

    def test_no_flips_well_below_target(self, ddr4_chip):
        _bank, victim, _bit = ddr4_chip.weakest_cell
        hammer_count = max(1, int(ddr4_chip.hcfirst_target * 0.5))
        self._prepare_neighbourhood(ddr4_chip, victim, 0x00, 0xFF)
        flips = ddr4_chip.hammer_pair(0, victim - 1, victim + 1, hammer_count)
        assert flips == 0

    def test_refresh_resets_accumulated_disturbance(self, ddr4_chip):
        _bank, victim, _bit = ddr4_chip.weakest_cell
        half = int(ddr4_chip.hcfirst_target * 0.7)
        self._prepare_neighbourhood(ddr4_chip, victim, 0x00, 0xFF)
        assert ddr4_chip.hammer_pair(0, victim - 1, victim + 1, half) == 0
        ddr4_chip.refresh_row(0, victim)
        # After the refresh the exposure restarts from zero, so another
        # partial hammer still cannot flip the victim.
        assert ddr4_chip.hammer_pair(0, victim - 1, victim + 1, half) == 0

    def test_exposure_accumulates_without_refresh(self, ddr4_chip):
        _bank, victim, _bit = ddr4_chip.weakest_cell
        part = int(ddr4_chip.hcfirst_target * 0.7)
        self._prepare_neighbourhood(ddr4_chip, victim, 0x00, 0xFF)
        total = 0
        total += ddr4_chip.hammer_pair(0, victim - 1, victim + 1, part)
        total += ddr4_chip.hammer_pair(0, victim - 1, victim + 1, part)
        assert total > 0

    def test_single_sided_needs_roughly_twice_the_hammers(self, ddr4_chip):
        _bank, victim, _bit = ddr4_chip.weakest_cell
        target = int(ddr4_chip.hcfirst_target)
        self._prepare_neighbourhood(ddr4_chip, victim, 0x00, 0xFF)
        # Slightly above the double-sided threshold: single-sided should not flip.
        assert ddr4_chip.activate(0, victim - 1, int(target * 1.2)) == 0
        ddr4_chip.write_row(0, victim, 0x00)
        # At more than twice the threshold the single-sided hammer flips.
        assert ddr4_chip.activate(0, victim - 1, int(target * 2.6)) > 0

    def test_rewriting_row_clears_flips(self, ddr4_chip):
        _bank, victim, _bit = ddr4_chip.weakest_cell
        hammer_count = int(ddr4_chip.hcfirst_target * 1.5)
        self._prepare_neighbourhood(ddr4_chip, victim, 0x00, 0xFF)
        ddr4_chip.hammer_pair(0, victim - 1, victim + 1, hammer_count)
        ddr4_chip.write_row(0, victim, 0x00)
        assert np.all(ddr4_chip.read_row(0, victim) == 0x00)

    def test_zero_or_negative_count_is_noop(self, ddr4_chip):
        assert ddr4_chip.hammer_pair(0, 10, 12, 0) == 0
        assert ddr4_chip.activate(0, 10, 0) == 0

    def test_activation_counts_tracked(self, ddr4_chip):
        ddr4_chip.hammer_pair(0, 10, 12, 100)
        ddr4_chip.activate(0, 10, 5)
        assert ddr4_chip.stats.activations == 205


class TestCalibration:
    def test_hcfirst_target_override(self, small_geometry):
        chip = make_chip("DDR4-new", "A", seed=1, geometry=small_geometry, hcfirst_target=33_000)
        assert chip.hcfirst_target == pytest.approx(33_000)

    def test_sampled_target_at_least_profile_minimum(self, small_geometry):
        profile = profile_for("DDR4-new", "A")
        for seed in range(5):
            chip = make_chip("DDR4-new", "A", seed=seed, geometry=small_geometry)
            assert chip.hcfirst_target >= profile.hcfirst_min

    def test_non_rowhammerable_config_exceeds_test_limit(self, small_geometry):
        chip = make_chip("DDR3-old", "C", seed=2, geometry=small_geometry)
        assert not chip.is_rowhammerable()
        assert chip.hcfirst_target > DramChip.TEST_LIMIT_HC

    def test_deterministic_for_same_seed(self, small_geometry):
        first = make_chip("DDR4-new", "A", seed=9, geometry=small_geometry)
        second = make_chip("DDR4-new", "A", seed=9, geometry=small_geometry)
        assert first.hcfirst_target == second.hcfirst_target

    def test_different_seeds_differ(self, small_geometry):
        targets = {
            make_chip("DDR4-new", "A", seed=seed, geometry=small_geometry).hcfirst_target
            for seed in range(6)
        }
        assert len(targets) > 1


class TestOnDieEcc:
    def test_lpddr4_chip_reports_on_die_ecc(self, lpddr4_chip, ddr4_chip):
        assert lpddr4_chip.has_on_die_ecc
        assert not ddr4_chip.has_on_die_ecc

    def test_single_injected_error_hidden_by_ecc(self, lpddr4_chip):
        lpddr4_chip.write_row(0, 3, 0x00)
        # Corrupt one stored bit directly (bypassing the hammer model).
        state = lpddr4_chip._rows[(0, 3)]
        state.bits[17] ^= 1
        visible = lpddr4_chip.read_row(0, 3)
        assert np.all(visible == 0x00)
        raw = lpddr4_chip.read_row_raw(0, 3)
        assert raw[17] == 1

    def test_geometry_must_fit_ecc_words(self):
        profile = profile_for("LPDDR4-1y", "A")
        with pytest.raises(ValueError):
            DramChip(profile, geometry=ChipGeometry(banks=1, rows_per_bank=8, row_bytes=8))


class TestPairedRemapping(object):
    def test_hammering_row_sharing_victim_wordline_does_not_disturb_it(self, paired_chip):
        # Section 4.3: in manufacturer B's LPDDR4-1x chips, consecutive rows
        # 2k and 2k+1 share a wordline, so hammering row 2k+1 never flips
        # rows 2k or 2k+1 (activating the shared wordline refreshes them).
        victim = 20  # shares its wordline with row 21
        hammered = 21
        for row in range(victim - 6, victim + 7):
            paired_chip.write_row(0, row, 0xAA if row == hammered else 0x55)
        paired_chip.activate(0, hammered, 150_000)
        for row in (victim,):
            observed = int(
                np.unpackbits(paired_chip.read_row(0, row) ^ np.uint8(0x55)).sum()
            )
            assert observed == 0

    def test_aggressors_for_victim_are_two_rows_away(self, paired_chip):
        aggressors = paired_chip.remapper.aggressors_for(20)
        assert 19 not in aggressors or 21 not in aggressors
        assert any(abs(row - 20) >= 2 for row in aggressors)
