"""Randomized invariant tests for the behavioural DRAM chip model.

Three physical invariants must hold for every vulnerability profile and any
seed (the paper's disturbance semantics, Section 3):

* refreshing a row resets its accumulated disturbance exposure but can never
  restore a bit that has already flipped;
* flipped bits persist until the row is rewritten; and
* the on-die ECC read path round-trips stored data exactly (for the LPDDR4
  profiles whose ECC cannot be disabled).

The suite sweeps every (type-node, manufacturer) configuration of Table 1
with several seeds -- well over 20 randomized chip profiles -- and runs
every invariant against both chip backends: the columnar
:class:`~repro.dram.chip.DramChip` and the retained object-at-a-time
:class:`~repro.dram.reference.ReferenceDramChip` oracle.
"""

import numpy as np
import pytest

from repro.dram.chip import DramChip
from repro.dram.geometry import ChipGeometry
from repro.dram.reference import ReferenceDramChip
from repro.dram.vulnerability import available_configurations, profile_for

#: Small geometry keeps each chip cheap while leaving room for double-sided
#: hammering around the planted weakest cell.
GEOMETRY = ChipGeometry(banks=1, rows_per_bank=48, row_bytes=32)

#: Every Table 1 configuration, twice with different seeds: >= 20 profiles.
PROFILE_CASES = [
    pytest.param(type_node, manufacturer, seed, id=f"{type_node.value}-{manufacturer}-s{seed}")
    for type_node, manufacturer in available_configurations()
    for seed in (11, 29)
]

#: Both chip backends must satisfy every physical invariant identically.
BACKENDS = [
    pytest.param(DramChip, id="columnar"),
    pytest.param(ReferenceDramChip, id="reference"),
]

#: Target HC_first for the planted weakest cell: small enough that hammer
#: counts stay tiny, large enough to leave margin below the threshold.
HCFIRST_TARGET = 1_500


def build_chip(type_node, manufacturer, seed, chip_class=DramChip):
    return chip_class(
        profile_for(type_node, manufacturer),
        geometry=GEOMETRY,
        seed=seed,
        hcfirst_target=HCFIRST_TARGET,
    )


def prepare_worst_case(chip):
    """Lay out the dominant coupling class's worst-case stripe pattern.

    Rows sharing the victim's physical-wordline parity store the class's
    required victim bit; the other rows store the required aggressor bit.
    Returns ``(bank, victim_row, aggressor_rows, victim_fill)``.
    """
    bank, victim, _column = chip.weakest_cell
    dominant = chip.profile.coupling_classes[0]
    victim_fill = 0x00 if dominant.victim_bit == 0 else 0xFF
    aggressor_fill = 0x00 if dominant.aggressor_bit == 0 else 0xFF
    victim_wordline = chip.remapper.logical_to_physical(victim)
    for row in range(chip.geometry.rows_per_bank):
        wordline = chip.remapper.logical_to_physical(row)
        fill = victim_fill if (wordline - victim_wordline) % 2 == 0 else aggressor_fill
        chip.write_row(bank, row, fill)
    aggressors = []
    for neighbour in (victim_wordline - 1, victim_wordline + 1):
        for logical in chip.remapper.physical_to_logical(neighbour):
            if 0 <= logical < chip.geometry.rows_per_bank:
                aggressors.append(logical)
                break
    assert len(aggressors) == 2, "victim must sit away from the bank edges"
    return bank, victim, aggressors, victim_fill


@pytest.mark.parametrize("chip_class", BACKENDS)
@pytest.mark.parametrize("type_node,manufacturer,seed", PROFILE_CASES)
class TestDisturbanceInvariants:
    def test_refresh_resets_exposure_but_never_unflips(
        self, type_node, manufacturer, seed, chip_class
    ):
        chip = build_chip(type_node, manufacturer, seed, chip_class)
        bank, victim, (left, right), victim_fill = prepare_worst_case(chip)
        partial = int(HCFIRST_TARGET * 0.55)

        # Below-threshold hammering does not flip the planted weakest cell.
        assert chip.hammer_pair(bank, left, right, partial) == 0

        # Refresh resets the victim's exposure: the same partial dose again
        # (cumulative 1.1x the threshold without the refresh) leaves the
        # refreshed victim row untouched.
        chip.refresh_row(bank, victim)
        clean_raw = chip.read_row_raw(bank, victim).copy()
        chip.hammer_pair(bank, left, right, partial)
        assert np.array_equal(chip.read_row_raw(bank, victim), clean_raw)

        # Without an intervening refresh the exposure accumulates past the
        # threshold and the weakest cell flips.
        flips = chip.hammer_pair(bank, left, right, int(HCFIRST_TARGET * 1.2))
        assert flips > 0
        flipped_raw = chip.read_row_raw(bank, victim).copy()
        expected_bit = 1 if victim_fill == 0x00 else 0
        assert (flipped_raw == expected_bit).any() or not np.all(
            np.packbits(flipped_raw) == victim_fill
        )

        # Refresh resets exposure again -- but the flipped data stays flipped,
        # and another below-threshold dose cannot disturb the victim further
        # (other, unrefreshed rows may legitimately keep accumulating flips).
        chip.refresh_row(bank, victim)
        assert np.array_equal(chip.read_row_raw(bank, victim), flipped_raw)
        chip.hammer_pair(bank, left, right, partial)
        assert np.array_equal(chip.read_row_raw(bank, victim), flipped_raw)

    def test_flips_persist_until_rewrite(self, type_node, manufacturer, seed, chip_class):
        chip = build_chip(type_node, manufacturer, seed, chip_class)
        bank, victim, (left, right), victim_fill = prepare_worst_case(chip)
        assert chip.hammer_pair(bank, left, right, int(HCFIRST_TARGET * 1.2)) > 0
        flipped_raw = chip.read_row_raw(bank, victim).copy()
        assert not np.all(np.packbits(flipped_raw) == victim_fill)

        # Repeated reads and refreshes observe the same corrupted raw data.
        for _ in range(3):
            assert np.array_equal(chip.read_row_raw(bank, victim), flipped_raw)
            chip.refresh_row(bank, victim)
        chip.refresh_all()
        assert np.array_equal(chip.read_row_raw(bank, victim), flipped_raw)

        # Rewriting the row restores it completely.
        chip.write_row(bank, victim, victim_fill)
        assert np.all(np.packbits(chip.read_row_raw(bank, victim)) == victim_fill)
        assert np.all(chip.read_row(bank, victim) == victim_fill)


@pytest.mark.parametrize("chip_class", BACKENDS)
@pytest.mark.parametrize("type_node,manufacturer,seed", PROFILE_CASES)
def test_ondie_ecc_read_path_round_trips(type_node, manufacturer, seed, chip_class):
    """Reads return exactly what was written, through on-die ECC when present."""
    chip = build_chip(type_node, manufacturer, seed, chip_class)
    rng = np.random.default_rng(seed)
    for row in (1, 9, 20):
        data = rng.integers(0, 256, size=chip.geometry.row_bytes, dtype=np.uint8)
        chip.write_row(0, row, data)
        assert np.array_equal(chip.read_row(0, row), data)
        # The raw array matches too (no disturbance has occurred yet).
        assert np.array_equal(np.packbits(chip.read_row_raw(0, row)), data)
    if chip.has_on_die_ecc:
        # A single raw bit error in a word is corrected by the SEC code.
        data = rng.integers(0, 256, size=chip.geometry.row_bytes, dtype=np.uint8)
        chip.write_row(0, 30, data)
        state = chip._rows[(0, 30)]
        state.bits[5] ^= 1  # inject one raw error
        corrected = chip.read_row(0, 30)
        assert np.array_equal(corrected, data)
