"""Tests for chip geometry and addressing."""

import pytest

from repro.dram.geometry import ChipGeometry, RowAddress


class TestChipGeometry:
    def test_derived_quantities(self):
        geometry = ChipGeometry(banks=2, rows_per_bank=128, row_bytes=64)
        assert geometry.row_bits == 512
        assert geometry.total_rows == 256
        assert geometry.total_cells == 256 * 512

    def test_rejects_invalid_dimensions(self):
        with pytest.raises(ValueError):
            ChipGeometry(banks=0, rows_per_bank=1, row_bytes=8)
        with pytest.raises(ValueError):
            ChipGeometry(banks=1, rows_per_bank=0, row_bytes=8)
        with pytest.raises(ValueError):
            ChipGeometry(banks=1, rows_per_bank=1, row_bytes=12)

    def test_validate_address(self):
        geometry = ChipGeometry(banks=2, rows_per_bank=16, row_bytes=8)
        geometry.validate_address(1, 15)
        with pytest.raises(IndexError):
            geometry.validate_address(2, 0)
        with pytest.raises(IndexError):
            geometry.validate_address(0, 16)
        with pytest.raises(IndexError):
            geometry.validate_address(-1, 0)


class TestRowAddress:
    def test_offset(self):
        address = RowAddress(bank=1, row=10)
        assert address.offset(2) == RowAddress(1, 12)
        assert address.offset(-3) == RowAddress(1, 7)

    def test_ordering(self):
        assert RowAddress(0, 5) < RowAddress(1, 0)
        assert RowAddress(0, 5) < RowAddress(0, 6)
