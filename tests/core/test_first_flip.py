"""Tests for the HC_first search."""

import pytest

from repro.core.first_flip import find_hcfirst, minimum_hcfirst, population_hcfirst
from repro.dram.geometry import ChipGeometry
from repro.dram.population import make_chip

GEOMETRY = ChipGeometry(banks=1, rows_per_bank=48, row_bytes=32)


class TestFindHCFirst:
    def test_measured_close_to_target_without_ondie_ecc(self):
        chip = make_chip("DDR4-new", "A", seed=21, geometry=GEOMETRY, hcfirst_target=40_000)
        result = find_hcfirst(chip)
        assert result.rowhammerable
        assert result.hcfirst == pytest.approx(40_000, rel=0.10)

    def test_not_rowhammerable_chip_returns_none(self, robust_chip):
        result = find_hcfirst(robust_chip)
        assert not result.rowhammerable
        assert result.hcfirst is None
        assert result.victim_row is None

    def test_victim_row_matches_planted_weakest_cell(self):
        chip = make_chip("DDR4-new", "A", seed=33, geometry=GEOMETRY, hcfirst_target=30_000)
        result = find_hcfirst(chip)
        assert result.victim_row == chip.weakest_cell[1]

    def test_respects_hammer_limit(self):
        chip = make_chip("DDR4-new", "A", seed=5, geometry=GEOMETRY, hcfirst_target=90_000)
        result = find_hcfirst(chip, hammer_limit=50_000)
        assert result.hcfirst is None
        assert result.hammer_limit == 50_000

    def test_result_serializes(self):
        chip = make_chip("DDR4-new", "A", seed=2, geometry=GEOMETRY, hcfirst_target=30_000)
        payload = find_hcfirst(chip).to_dict()
        assert payload["chip_id"] == chip.chip_id
        assert payload["rowhammerable"] is True


class TestPopulationHelpers:
    def test_population_and_minimum(self):
        chips = [
            make_chip("DDR4-new", "A", seed=seed, geometry=GEOMETRY, hcfirst_target=target)
            for seed, target in [(1, 50_000), (2, 25_000), (3, 70_000)]
        ]
        results = population_hcfirst(chips)
        assert len(results) == 3
        minimum = minimum_hcfirst(results)
        assert minimum == pytest.approx(25_000, rel=0.10)

    def test_minimum_of_empty_or_unflippable_is_none(self, robust_chip):
        assert minimum_hcfirst([]) is None
        assert minimum_hcfirst(population_hcfirst([robust_chip])) is None
