"""Tests for the hammer-count search helpers."""

import pytest

from repro.core.search import descend_and_search, minimal_hammer_count


class TestMinimalHammerCount:
    def test_finds_threshold(self):
        threshold = 12_345
        found = minimal_hammer_count(lambda hc: hc >= threshold, hc_max=150_000)
        assert found is not None
        assert threshold <= found <= threshold * 1.03

    def test_none_when_condition_never_holds(self):
        assert minimal_hammer_count(lambda hc: False, hc_max=1000) is None

    def test_returns_minimum_when_always_true(self):
        assert minimal_hammer_count(lambda hc: True, hc_max=1000, hc_min=3) == 3

    def test_evaluation_count_is_logarithmic(self):
        calls = []

        def condition(hc):
            calls.append(hc)
            return hc >= 70_000

        minimal_hammer_count(condition, hc_max=150_000)
        assert len(calls) < 30

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            minimal_hammer_count(lambda hc: True, hc_max=10, hc_min=20)
        with pytest.raises(ValueError):
            minimal_hammer_count(lambda hc: True, hc_max=10, relative_precision=2.0)


class TestDescendAndSearch:
    def test_finds_weakest_victim(self):
        thresholds = {1: 90_000, 2: 40_000, 3: 12_000, 4: 60_000}

        def evaluate(victim, hc):
            return hc >= thresholds[victim]

        best_hc, best_victim, _ = descend_and_search(
            list(thresholds), evaluate, hammer_limit=150_000
        )
        assert best_victim == 3
        assert 12_000 <= best_hc <= 12_600

    def test_none_when_nothing_satisfies(self):
        best_hc, best_victim, examined = descend_and_search(
            [1, 2, 3], lambda victim, hc: False, hammer_limit=1000
        )
        assert best_hc is None and best_victim is None and examined == 0

    def test_handles_threshold_of_one(self):
        best_hc, best_victim, _ = descend_and_search(
            [7], lambda victim, hc: hc >= 1, hammer_limit=1000
        )
        assert best_victim == 7
        assert best_hc == 1

    def test_rejects_bad_descent_factor(self):
        with pytest.raises(ValueError):
            descend_and_search([1], lambda v, hc: True, hammer_limit=100, descent_factor=1.0)

    def test_respects_max_candidates(self):
        def evaluate(victim, hc):
            return hc >= 500

        _hc, _victim, examined = descend_and_search(
            list(range(50)), evaluate, hammer_limit=1000, max_candidates=5
        )
        assert examined <= 5
