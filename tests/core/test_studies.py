"""Tests for the focused characterization studies (coverage, sweeps, spatial,
word density, ECC analysis, probability, scaling)."""

import pytest

from repro.core.calibration import hammer_count_for_flip_rate, measure_flip_rate
from repro.core.coverage import pattern_coverage, worst_case_patterns_by_configuration
from repro.core.data_patterns import STANDARD_PATTERNS, worst_case_pattern
from repro.core.ecc_analysis import ecc_word_analysis
from repro.core.probability import flip_probability_study
from repro.core.scaling import (
    MITIGATION_EVALUATION_HCFIRST,
    fit_scaling_trend,
    project_future_hcfirst,
)
from repro.core.spatial import flips_in_aggressor_rows, spatial_distribution
from repro.core.sweeps import hammer_count_sweep, loglog_slope
from repro.core.word_density import single_flip_fraction, word_density
from repro.dram.geometry import ChipGeometry
from repro.dram.population import make_chip

GEOMETRY = ChipGeometry(banks=1, rows_per_bank=48, row_bytes=32)


@pytest.fixture(scope="module")
def vulnerable_chip():
    """A very vulnerable DDR4 chip so every study observes plenty of flips."""
    return make_chip("DDR4-new", "A", seed=50, geometry=GEOMETRY, hcfirst_target=12_000)


@pytest.fixture(scope="module")
def vulnerable_lpddr4():
    return make_chip("LPDDR4-1y", "A", seed=51, geometry=GEOMETRY, hcfirst_target=12_000)


class TestCoverage:
    def test_worst_case_pattern_has_highest_coverage(self, vulnerable_chip):
        result = pattern_coverage(vulnerable_chip, hammer_count=150_000)
        assert result.unique_flips_total > 0
        expected = worst_case_pattern(vulnerable_chip.profile).name
        assert result.worst_case_pattern == expected

    def test_no_pattern_reaches_full_coverage(self, vulnerable_chip):
        result = pattern_coverage(vulnerable_chip, hammer_count=150_000)
        assert all(value <= 1.0 for value in result.coverage_by_pattern.values())
        assert result.coverage_by_pattern[result.worst_case_pattern] < 1.0

    def test_coverages_cover_all_patterns(self, vulnerable_chip):
        result = pattern_coverage(vulnerable_chip, hammer_count=150_000)
        assert set(result.coverage_by_pattern) == {p.name for p in STANDARD_PATTERNS}

    def test_table3_aggregation(self, vulnerable_chip):
        result = pattern_coverage(vulnerable_chip, hammer_count=150_000)
        table = worst_case_patterns_by_configuration([result])
        assert table[("DDR4-new", "A")] == result.worst_case_pattern


class TestSweeps:
    def test_accepts_non_standard_pattern(self, vulnerable_chip):
        # The wrapper must keep accepting arbitrary DataPattern objects
        # (e.g. inverses), not only the eight named standard patterns.
        from repro.core.data_patterns import ROWSTRIPE0

        sweep = hammer_count_sweep(
            vulnerable_chip, hammer_counts=(150_000,), data_pattern=ROWSTRIPE0.inverse()
        )
        assert sweep.data_pattern == "RowStripe0-inverse"

    def test_flip_rate_monotonic_in_hc(self, vulnerable_chip):
        sweep = hammer_count_sweep(vulnerable_chip, hammer_counts=(20_000, 60_000, 150_000))
        rates = sweep.flip_rates()
        assert rates == sorted(rates)
        assert rates[-1] > 0

    def test_loglog_slope_close_to_profile(self, vulnerable_chip):
        sweep = hammer_count_sweep(
            vulnerable_chip, hammer_counts=(30_000, 60_000, 100_000, 150_000)
        )
        slope = loglog_slope(sweep)
        assert slope is not None
        assert slope == pytest.approx(vulnerable_chip.profile.flip_slope, rel=0.35)

    def test_sweep_serializes(self, vulnerable_chip):
        sweep = hammer_count_sweep(vulnerable_chip, hammer_counts=(50_000,))
        payload = sweep.to_dict()
        assert payload["points"][0]["hammer_count"] == 50_000


class TestSpatial:
    def test_no_flips_in_aggressor_rows(self, vulnerable_chip):
        result = spatial_distribution(vulnerable_chip)
        assert flips_in_aggressor_rows(result) == 0

    def test_flips_only_at_even_offsets(self, vulnerable_chip):
        result = spatial_distribution(vulnerable_chip)
        for offset, count in result.flips_by_offset.items():
            if count > 0:
                assert offset % 2 == 0

    def test_victim_row_dominates(self, vulnerable_chip):
        result = spatial_distribution(vulnerable_chip)
        fractions = result.fraction_by_offset()
        assert fractions.get(0, 0.0) > 0.5

    def test_ddr4_blast_radius_at_most_two(self, vulnerable_chip):
        result = spatial_distribution(vulnerable_chip)
        assert result.max_observed_offset() <= 2

    def test_lpddr4_blast_radius_larger(self, vulnerable_lpddr4):
        result = spatial_distribution(vulnerable_lpddr4)
        assert result.max_observed_offset() >= 2


class TestWordDensity:
    def test_ddr4_dominated_by_single_flip_words_at_low_rate(self, vulnerable_chip):
        # The paper normalizes chips to a low flip rate (1e-6); at a low rate
        # most flip-containing 64-bit words hold exactly one flip.
        hammer_count = hammer_count_for_flip_rate(vulnerable_chip, target_rate=5e-3)
        assert hammer_count is not None
        result = word_density(vulnerable_chip, hammer_count=hammer_count)
        assert result.total_words_with_flips > 0
        assert single_flip_fraction(result) > 0.5

    def test_lpddr4_single_flip_fraction_lower(self, vulnerable_chip, vulnerable_lpddr4):
        ddr4_hc = hammer_count_for_flip_rate(vulnerable_chip, target_rate=5e-3)
        lpddr4_hc = hammer_count_for_flip_rate(vulnerable_lpddr4, target_rate=5e-3)
        ddr4 = word_density(vulnerable_chip, hammer_count=ddr4_hc)
        lpddr4 = word_density(vulnerable_lpddr4, hammer_count=lpddr4_hc)
        assert single_flip_fraction(lpddr4) < single_flip_fraction(ddr4)

    def test_fractions_sum_to_one(self, vulnerable_chip):
        result = word_density(vulnerable_chip, hammer_count=100_000)
        assert sum(result.fraction_by_flip_count().values()) == pytest.approx(1.0)


class TestCalibration:
    def test_reaches_requested_rate(self, vulnerable_chip):
        target = 5e-3
        hammer_count = hammer_count_for_flip_rate(vulnerable_chip, target_rate=target)
        assert hammer_count is not None
        achieved = measure_flip_rate(vulnerable_chip, hammer_count)
        assert target / 4 <= achieved <= target * 4

    def test_unreachable_rate_returns_none(self, vulnerable_chip):
        assert hammer_count_for_flip_rate(vulnerable_chip, target_rate=10.0) is None

    def test_invalid_target_rejected(self, vulnerable_chip):
        with pytest.raises(ValueError):
            hammer_count_for_flip_rate(vulnerable_chip, target_rate=0.0)


class TestEccAnalysis:
    def test_hc_increases_with_required_flips_per_word(self, vulnerable_chip):
        analysis = ecc_word_analysis(vulnerable_chip, hammer_limit=250_000)
        hc1 = analysis.hc_first_word_with[1]
        hc2 = analysis.hc_first_word_with[2]
        assert hc1 is not None and hc2 is not None
        assert hc2 > hc1
        assert analysis.multiplier(1, 2) > 1.0

    def test_serialization_includes_multipliers(self, vulnerable_chip):
        analysis = ecc_word_analysis(vulnerable_chip, hammer_limit=250_000)
        payload = analysis.to_dict()
        assert "multiplier_1_to_2" in payload


class TestProbability:
    def test_ddr4_mostly_monotonic(self, vulnerable_chip):
        result = flip_probability_study(
            vulnerable_chip,
            hammer_counts=(40_000, 80_000, 120_000),
            iterations=4,
        )
        assert result.cells_observed > 0
        assert result.monotonic_fraction > 0.9

    def test_lpddr4_less_monotonic_than_ddr4(self, vulnerable_chip, vulnerable_lpddr4):
        ddr4 = flip_probability_study(
            vulnerable_chip, hammer_counts=(40_000, 80_000, 120_000), iterations=4
        )
        lpddr4 = flip_probability_study(
            vulnerable_lpddr4, hammer_counts=(40_000, 80_000, 120_000), iterations=4
        )
        assert lpddr4.monotonic_fraction <= ddr4.monotonic_fraction


class TestScaling:
    def test_trend_is_decreasing(self):
        projection = fit_scaling_trend()
        assert projection.slope_log10_per_generation < 0

    def test_future_projection_below_current_minimum(self):
        projected = project_future_hcfirst(("1z", "1a"))
        assert projected["1z"] < 16_800
        assert projected["1a"] < projected["1z"]

    def test_generations_until_target(self):
        projection = fit_scaling_trend()
        generations = projection.generations_until(128)
        assert generations is not None and generations > 0

    def test_mitigation_sweep_covers_paper_range(self):
        assert max(MITIGATION_EVALUATION_HCFIRST) == 200_000
        assert min(MITIGATION_EVALUATION_HCFIRST) == 64
        assert 2_000 in MITIGATION_EVALUATION_HCFIRST

    def test_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_scaling_trend([("only", 1000.0)])
