"""Tests for the Algorithm 1 characterization runner."""

import pytest

from repro.core.characterization import (
    CharacterizationConfig,
    RowHammerCharacterizer,
)
from repro.core.data_patterns import ROWSTRIPE0, ROWSTRIPE1


class TestConfig:
    def test_rejects_empty_or_invalid_hammer_counts(self):
        with pytest.raises(ValueError):
            CharacterizationConfig(hammer_counts=())
        with pytest.raises(ValueError):
            CharacterizationConfig(hammer_counts=(0,))
        with pytest.raises(ValueError):
            CharacterizationConfig(hammer_counts=(200_000,))

    def test_defaults_within_test_limit(self):
        config = CharacterizationConfig()
        assert max(config.hammer_counts) <= config.max_test_hammers


class TestCharacterizer:
    def test_run_produces_record_per_combination(self, ddr4_chip):
        characterizer = RowHammerCharacterizer(ddr4_chip)
        victims = tuple(characterizer.default_victims()[:3])
        config = CharacterizationConfig(
            hammer_counts=(10_000, 50_000),
            data_patterns=(ROWSTRIPE0, ROWSTRIPE1),
            victim_rows=victims,
        )
        result = characterizer.run(config)
        assert len(result.records) == 2 * 2 * len(victims)
        assert result.chip_id == ddr4_chip.chip_id
        assert result.cells_tested_per_victim == ddr4_chip.geometry.row_bits

    def test_records_filterable(self, ddr4_chip):
        characterizer = RowHammerCharacterizer(ddr4_chip)
        victims = tuple(characterizer.default_victims()[:2])
        config = CharacterizationConfig(
            hammer_counts=(10_000, 150_000),
            data_patterns=(ROWSTRIPE0,),
            victim_rows=victims,
        )
        result = characterizer.run(config)
        subset = result.records_for(data_pattern="RowStripe0", hammer_count=150_000)
        assert len(subset) == len(victims)
        assert all(r.hammer_count == 150_000 for r in subset)

    def test_more_hammers_more_unique_flips(self, ddr4_chip):
        characterizer = RowHammerCharacterizer(ddr4_chip)
        config = CharacterizationConfig(hammer_counts=(10_000, 150_000))
        result = characterizer.run(config)
        low = result.unique_flipped_cells(hammer_count=10_000)
        high = result.unique_flipped_cells(hammer_count=150_000)
        assert len(high) >= len(low)
        assert result.total_flips() >= len(high)

    def test_hammer_all_victims_uses_worst_case_pattern(self, ddr4_chip):
        characterizer = RowHammerCharacterizer(ddr4_chip)
        outcomes = characterizer.hammer_all_victims(5_000, victims=[10, 11])
        assert len(outcomes) == 2
        assert outcomes[0].data_pattern.name in {
            "RowStripe0",
            "RowStripe1",
            "Checkered0",
            "Checkered1",
        }

    def test_cells_tested(self, ddr4_chip):
        characterizer = RowHammerCharacterizer(ddr4_chip)
        assert characterizer.cells_tested([1, 2, 3]) == 3 * ddr4_chip.geometry.row_bits
