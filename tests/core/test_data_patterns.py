"""Tests for the standard data patterns."""

import pytest

from repro.core.data_patterns import (
    CHECKERED0,
    COLSTRIPE0,
    ROWSTRIPE0,
    ROWSTRIPE1,
    SOLID0,
    STANDARD_PATTERNS,
    DataPattern,
    pattern_by_name,
    worst_case_pattern,
)
from repro.dram.vulnerability import profile_for


class TestPatternDefinitions:
    def test_eight_standard_patterns(self):
        assert len(STANDARD_PATTERNS) == 8
        assert len({p.name for p in STANDARD_PATTERNS}) == 8

    def test_rowstripe_bytes(self):
        assert (ROWSTRIPE0.victim_byte, ROWSTRIPE0.aggressor_byte) == (0x00, 0xFF)
        assert (ROWSTRIPE1.victim_byte, ROWSTRIPE1.aggressor_byte) == (0xFF, 0x00)

    def test_checkered_bytes(self):
        assert (CHECKERED0.victim_byte, CHECKERED0.aggressor_byte) == (0x55, 0xAA)

    def test_uniform_patterns(self):
        assert SOLID0.is_uniform
        assert COLSTRIPE0.is_uniform
        assert not ROWSTRIPE0.is_uniform

    def test_inverse(self):
        inverse = ROWSTRIPE0.inverse()
        assert inverse.victim_byte == 0xFF
        assert inverse.aggressor_byte == 0x00

    def test_invalid_byte_rejected(self):
        with pytest.raises(ValueError):
            DataPattern("bad", "B", 0x100, 0x00)


class TestLookup:
    def test_by_full_name_and_abbreviation(self):
        assert pattern_by_name("RowStripe1") is ROWSTRIPE1
        assert pattern_by_name("RS1") is ROWSTRIPE1
        assert pattern_by_name("CH0") is CHECKERED0

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            pattern_by_name("ZigZag7")


class TestWorstCasePattern:
    @pytest.mark.parametrize(
        "type_node, manufacturer, expected",
        [
            ("DDR4-old", "A", "RowStripe1"),
            ("DDR4-old", "C", "RowStripe0"),
            ("DDR4-new", "C", "Checkered1"),
            ("DDR3-new", "C", "Checkered0"),
            ("LPDDR4-1y", "A", "RowStripe1"),
            ("LPDDR4-1x", "A", "Checkered1"),
        ],
    )
    def test_matches_table3(self, type_node, manufacturer, expected):
        profile = profile_for(type_node, manufacturer)
        assert worst_case_pattern(profile).name == expected
