"""Tests for the double-sided hammer driver."""

import numpy as np
import pytest

from repro.core.data_patterns import ROWSTRIPE0, worst_case_pattern
from repro.core.hammer import BitFlip, DoubleSidedHammer, HammerResult


class TestNeighbourhood:
    def test_aggressors_are_adjacent(self, ddr4_chip):
        hammer = DoubleSidedHammer(ddr4_chip)
        assert sorted(hammer.aggressor_rows(10)) == [9, 11]

    def test_neighbourhood_contains_victim_and_radius(self, ddr4_chip):
        hammer = DoubleSidedHammer(ddr4_chip)
        neighbourhood = hammer.neighbourhood(10)
        assert 10 in neighbourhood
        radius = ddr4_chip.profile.blast_radius + 1
        assert min(neighbourhood) == 10 - radius
        assert max(neighbourhood) == 10 + radius

    def test_testable_victims_exclude_edges(self, ddr4_chip):
        hammer = DoubleSidedHammer(ddr4_chip)
        victims = hammer.testable_victims()
        assert 0 not in victims
        assert ddr4_chip.geometry.rows_per_bank - 1 not in victims
        assert len(victims) > 0


class TestWritePattern:
    def test_alternating_bytes_by_parity(self, ddr4_chip):
        hammer = DoubleSidedHammer(ddr4_chip)
        written = hammer.write_pattern(0, 10, ROWSTRIPE0)
        assert written[10] == 0x00
        assert written[9] == 0xFF
        assert written[11] == 0xFF
        assert written[12] == 0x00
        for row, byte in written.items():
            assert np.all(ddr4_chip.read_row(0, row) == byte)


class TestHammerVictim:
    def test_no_flips_for_robust_chip(self, robust_chip):
        hammer = DoubleSidedHammer(robust_chip)
        result = hammer.hammer_victim(0, 20, 150_000)
        assert result.num_bit_flips == 0
        assert result.aggressor_rows == (19, 21)

    def test_flips_for_vulnerable_chip_at_weakest_row(self, ddr4_chip):
        hammer = DoubleSidedHammer(ddr4_chip)
        _bank, victim, bit = ddr4_chip.weakest_cell
        result = hammer.hammer_victim(0, victim, int(ddr4_chip.hcfirst_target * 1.2))
        assert result.num_bit_flips > 0
        assert any(flip.offset_from_victim == 0 for flip in result.flips)

    def test_no_flips_in_aggressor_rows(self, ddr4_chip):
        hammer = DoubleSidedHammer(ddr4_chip)
        for victim in hammer.testable_victims()[::5]:
            result = hammer.hammer_victim(0, victim, 150_000)
            assert not result.flips_at_offset(-1)
            assert not result.flips_at_offset(1)

    def test_restore_clears_flips_for_next_run(self, ddr4_chip):
        hammer = DoubleSidedHammer(ddr4_chip)
        _bank, victim, _bit = ddr4_chip.weakest_cell
        hc = int(ddr4_chip.hcfirst_target * 1.2)
        first = hammer.hammer_victim(0, victim, hc, restore=True)
        second = hammer.hammer_victim(0, victim, hc, restore=True)
        # With restoration the two runs observe the same flips rather than
        # accumulating stale corrupted data.
        assert {f.cell for f in first.flips} == {f.cell for f in second.flips}

    def test_flip_metadata_consistent(self, ddr4_chip):
        hammer = DoubleSidedHammer(ddr4_chip)
        _bank, victim, _bit = ddr4_chip.weakest_cell
        result = hammer.hammer_victim(0, victim, int(ddr4_chip.hcfirst_target * 1.5))
        for flip in result.flips:
            assert flip.row == victim + flip.offset_from_victim
            assert flip.observed_bit != flip.expected_bit
            assert 0 <= flip.bit_index < ddr4_chip.geometry.row_bits
            assert flip.word64_index == flip.bit_index // 64

    def test_single_sided_weaker_than_double_sided(self, ddr4_chip):
        hammer = DoubleSidedHammer(ddr4_chip)
        _bank, victim, _bit = ddr4_chip.weakest_cell
        hc = int(ddr4_chip.hcfirst_target * 1.2)
        double = hammer.hammer_victim(0, victim, hc)
        single = hammer.hammer_single_sided(0, victim, hc)
        assert len(single.victim_flips) <= len(double.victim_flips)

    def test_default_pattern_is_worst_case(self, ddr4_chip):
        hammer = DoubleSidedHammer(ddr4_chip)
        result = hammer.hammer_victim(0, 20, 1_000)
        assert result.data_pattern.name == worst_case_pattern(ddr4_chip.profile).name


class TestHammerResult:
    def test_flips_per_word64(self):
        flips = [
            BitFlip(0, 5, 3, 0, 0, 1),
            BitFlip(0, 5, 60, 0, 0, 1),
            BitFlip(0, 5, 70, 0, 0, 1),
        ]
        result = HammerResult(0, 5, (4, 6), 1000, ROWSTRIPE0, flips)
        counts = result.flips_per_word64()
        assert counts[(0, 5, 0)] == 2
        assert counts[(0, 5, 1)] == 1
        assert result.num_bit_flips == 3
