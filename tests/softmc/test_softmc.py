"""Tests for the SoftMC-like test infrastructure."""

import numpy as np
import pytest

from repro.core.data_patterns import CHECKERED0, ROWSTRIPE0
from repro.dram.geometry import ChipGeometry
from repro.dram.population import make_chip
from repro.softmc.commands import CommandKind, CommandTrace, DramCommand
from repro.softmc.host import RefreshEnabledError, SoftMCHost
from repro.softmc.reverse_engineer import infer_row_mapping
from repro.softmc.routine import RoutineConfig, run_characterization_routine
from repro.softmc.temperature import TemperatureController

GEOMETRY = ChipGeometry(banks=1, rows_per_bank=48, row_bytes=32)


class TestCommands:
    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError):
            DramCommand(CommandKind.ACT, bank=0, row=0, repeat=0)

    def test_trace_counts_expand_repeats(self):
        trace = CommandTrace()
        trace.append(DramCommand(CommandKind.ACT, bank=0, row=1, repeat=100))
        trace.append(DramCommand(CommandKind.ACT, bank=0, row=2, repeat=50))
        trace.append(DramCommand(CommandKind.PRE, bank=0, row=2))
        assert trace.count(CommandKind.ACT) == 150
        assert trace.count(CommandKind.PRE) == 1
        assert trace.activations_per_row() == {(0, 1): 100, (0, 2): 50}
        assert len(trace) == 3


class TestTemperature:
    def test_stabilizes_at_set_point(self):
        controller = TemperatureController()
        controller.set_target(50.0)
        final = controller.stabilize()
        assert final == pytest.approx(50.0, abs=controller.tolerance_celsius)
        assert controller.is_stable

    def test_rejects_out_of_range_set_point(self):
        with pytest.raises(ValueError):
            TemperatureController().set_target(500.0)


class TestHost:
    def _host(self, seed=1, target=40_000):
        chip = make_chip("DDR4-new", "A", seed=seed, geometry=GEOMETRY, hcfirst_target=target)
        return SoftMCHost(chip)

    def test_write_read_round_trip(self):
        host = self._host()
        host.write_row(0, 5, 0x3C)
        assert np.all(host.read_row(0, 5) == 0x3C)
        kinds = [command.kind for command in host.trace]
        assert kinds.count(CommandKind.WR) == 1
        assert kinds.count(CommandKind.RD) == 1

    def test_hammer_requires_refresh_disabled(self):
        host = self._host()
        with pytest.raises(RefreshEnabledError):
            host.hammer_pair(0, 10, 12, 1000)
        host.disable_refresh()
        host.hammer_pair(0, 10, 12, 1000)  # no exception

    def test_enable_refresh_restores_charge(self):
        host = self._host()
        victim = host.chip.weakest_cell[1]
        host.write_row(0, victim, 0x00)
        host.disable_refresh()
        host.activate(0, victim - 1, int(host.chip.hcfirst_target))
        host.enable_refresh()
        # Re-enabling refresh clears accumulated exposure: further partial
        # hammering cannot complete the attack.
        host.disable_refresh()
        flips = host.chip.hammer_pair(0, victim - 1, victim + 1, int(host.chip.hcfirst_target * 0.4))
        assert flips == 0

    def test_hammer_duration_and_window_check(self):
        host = self._host()
        assert host.hammer_duration_ms(150_000) < 32.0
        assert host.fits_in_refresh_window(150_000)
        assert not host.fits_in_refresh_window(500_000)

    def test_set_temperature_records_command(self):
        host = self._host()
        host.set_temperature(50.0)
        assert any(c.kind is CommandKind.SET_TEMPERATURE for c in host.trace)


class TestRoutine:
    def test_routine_observes_flips_on_vulnerable_chip(self):
        chip = make_chip("DDR4-new", "A", seed=3, geometry=GEOMETRY, hcfirst_target=20_000)
        host = SoftMCHost(chip)
        victim = chip.weakest_cell[1]
        config = RoutineConfig(
            data_patterns=(ROWSTRIPE0,),
            hammer_counts=(150_000,),
            victim_rows=(victim,),
        )
        result = run_characterization_routine(host, config)
        assert result.total_flips() > 0

    def test_routine_core_loop_has_refresh_disabled(self):
        chip = make_chip("DDR4-new", "A", seed=4, geometry=GEOMETRY, hcfirst_target=60_000)
        host = SoftMCHost(chip)
        config = RoutineConfig(
            data_patterns=(CHECKERED0,), hammer_counts=(10_000,), victim_rows=(20, 21)
        )
        run_characterization_routine(host, config)
        kinds = [command.kind for command in host.trace]
        assert CommandKind.REFRESH_DISABLE in kinds
        assert CommandKind.REFRESH_ENABLE in kinds
        assert kinds.count(CommandKind.REFRESH_DISABLE) == kinds.count(CommandKind.REFRESH_ENABLE)


class TestReverseEngineering:
    def test_identity_mapping_inferred(self):
        chip = make_chip("DDR4-new", "A", seed=6, geometry=GEOMETRY, hcfirst_target=15_000)
        inference = infer_row_mapping(chip, hammer_count=140_000)
        assert inference.inferred_mapping == "identity"

    def test_paired_mapping_inferred(self):
        chip = make_chip("LPDDR4-1x", "B", seed=7, geometry=GEOMETRY, hcfirst_target=15_000)
        inference = infer_row_mapping(chip, hammer_count=140_000)
        assert inference.inferred_mapping == "paired"

    def test_robust_chip_yields_unknown(self):
        chip = make_chip("DDR4-new", "A", seed=8, geometry=GEOMETRY, hcfirst_target=800_000)
        inference = infer_row_mapping(chip, hammer_count=50_000)
        assert inference.inferred_mapping == "unknown"
        assert inference.adjacent_offsets == []
