"""Tests for deterministic RNG derivation."""

import numpy as np

from repro.utils.rng import derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "x", 2) == derive_seed(1, "x", 2)

    def test_different_components_differ(self):
        assert derive_seed(1, "x", 2) != derive_seed(1, "x", 3)

    def test_component_order_matters(self):
        assert derive_seed("a", "b") != derive_seed("b", "a")

    def test_nearby_integers_decorrelated(self):
        seeds = {derive_seed("row", i) for i in range(100)}
        assert len(seeds) == 100

    def test_result_fits_in_64_bits(self):
        assert 0 <= derive_seed("anything") < 2**64


class TestMakeRng:
    def test_same_components_same_stream(self):
        a = make_rng(5, "stream").random(8)
        b = make_rng(5, "stream").random(8)
        assert np.array_equal(a, b)

    def test_different_components_different_stream(self):
        a = make_rng(5, "stream").random(8)
        b = make_rng(6, "stream").random(8)
        assert not np.array_equal(a, b)

    def test_returns_numpy_generator(self):
        assert isinstance(make_rng(0), np.random.Generator)
