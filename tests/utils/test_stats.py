"""Tests for statistics helpers."""

import math

import pytest

from repro.utils.stats import box_stats, geometric_mean, mean, stddev


class TestBoxStats:
    def test_simple_distribution(self):
        stats = box_stats([1, 2, 3, 4, 5])
        assert stats.minimum == 1
        assert stats.maximum == 5
        assert stats.median == 3
        assert stats.first_quartile == 2
        assert stats.third_quartile == 4
        assert stats.count == 5

    def test_outliers_detected(self):
        values = [10, 11, 12, 13, 14, 100]
        stats = box_stats(values)
        assert 100 in stats.outliers
        assert stats.upper_whisker < 100

    def test_single_value(self):
        stats = box_stats([7.0])
        assert stats.minimum == stats.maximum == stats.median == 7.0
        assert stats.iqr == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            box_stats([])

    def test_whiskers_within_data_range(self):
        stats = box_stats([3, 1, 4, 1, 5, 9, 2, 6])
        assert stats.lower_whisker >= stats.minimum
        assert stats.upper_whisker <= stats.maximum


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestMeanStddev:
    def test_mean(self):
        assert mean([1, 2, 3]) == pytest.approx(2.0)

    def test_stddev(self):
        assert stddev([2, 2, 2]) == pytest.approx(0.0)
        assert stddev([0, 2]) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            stddev([])
