"""Tests for bit-level helpers."""

import numpy as np
import pytest

from repro.utils.bitops import (
    bits_to_bytes,
    bytes_to_bits,
    count_set_bits,
    flip_bits,
    words_of,
    xor_reduce,
)


class TestBytesBitsRoundTrip:
    def test_msb_first(self):
        bits = bytes_to_bits(np.array([0b10000001], dtype=np.uint8))
        assert bits.tolist() == [1, 0, 0, 0, 0, 0, 0, 1]

    def test_round_trip(self):
        data = np.arange(64, dtype=np.uint8)
        assert np.array_equal(bits_to_bytes(bytes_to_bits(data)), data)

    def test_bits_to_bytes_rejects_partial_byte(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.ones(7, dtype=np.uint8))


class TestCountSetBits:
    def test_zero(self):
        assert count_set_bits(np.zeros(16, dtype=np.uint8)) == 0

    def test_all_ones(self):
        assert count_set_bits(np.full(4, 0xFF, dtype=np.uint8)) == 32

    def test_mixed(self):
        assert count_set_bits(np.array([0x0F, 0xF0], dtype=np.uint8)) == 8


class TestFlipBits:
    def test_flips_selected_bits(self):
        data = np.zeros(2, dtype=np.uint8)
        flipped = flip_bits(data, [0, 15])
        assert flipped.tolist() == [0b10000000, 0b00000001]

    def test_double_flip_restores(self):
        data = np.array([0xAB], dtype=np.uint8)
        assert np.array_equal(flip_bits(flip_bits(data, [3]), [3]), data)

    def test_original_not_modified(self):
        data = np.zeros(1, dtype=np.uint8)
        flip_bits(data, [0])
        assert data[0] == 0


class TestWordsOf:
    def test_splits_into_words(self):
        bits = np.arange(16) % 2
        words = list(words_of(bits, 4))
        assert len(words) == 4
        assert all(word.size == 4 for word in words)

    def test_drops_trailing_partial_word(self):
        words = list(words_of(np.zeros(10, dtype=np.uint8), 4))
        assert len(words) == 2


class TestXorReduce:
    def test_empty(self):
        assert xor_reduce([]) == 0

    def test_values(self):
        assert xor_reduce([0b1100, 0b1010]) == 0b0110
