"""Tests for the RowHammer mitigation mechanisms."""

import pytest

from repro.mitigations.base import MitigationConfig
from repro.mitigations.ideal import IdealRefresh
from repro.mitigations.mrloc import MRLoc
from repro.mitigations.para import PARA, probability_for
from repro.mitigations.prohit import ProHIT
from repro.mitigations.refresh_rate import IncreasedRefreshRate
from repro.mitigations.registry import available_mechanisms, build_mechanism, is_evaluable
from repro.mitigations.twice import TWiCe
from repro.sim.timing import DDR4_2400


def config(hcfirst, **kwargs):
    return MitigationConfig(hcfirst=hcfirst, banks=4, rows_per_bank=1024, **kwargs)


class TestMitigationConfig:
    def test_adjacent_rows_within_bounds(self):
        cfg = config(1000)
        assert cfg.adjacent_rows(0) == [1]
        assert cfg.adjacent_rows(1023) == [1022]
        assert sorted(cfg.adjacent_rows(10)) == [9, 11]

    def test_blast_radius_two(self):
        cfg = config(1000, blast_radius=2)
        assert sorted(cfg.adjacent_rows(10)) == [8, 9, 11, 12]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            config(0)
        with pytest.raises(ValueError):
            config(100, time_scale=0.0)
        with pytest.raises(ValueError):
            config(100, blast_radius=0)

    def test_scaled_hcfirst(self):
        assert config(1000, time_scale=0.01).scaled_hcfirst == pytest.approx(10.0)
        assert config(10, time_scale=0.001).scaled_hcfirst == 1.0


class TestIncreasedRefreshRate:
    def test_multiplier_shrinks_with_hcfirst(self):
        weak = IncreasedRefreshRate(config(10_000))
        strong = IncreasedRefreshRate(config(100_000))
        assert weak.refresh_interval_multiplier() < strong.refresh_interval_multiplier()
        assert weak.refresh_rate_multiplier > strong.refresh_rate_multiplier

    def test_no_scaling_when_window_already_safe(self):
        # HC_first so large that the nominal 64 ms window is already safe.
        mechanism = IncreasedRefreshRate(config(10_000_000))
        assert mechanism.refresh_interval_multiplier() == pytest.approx(1.0)

    def test_viability_threshold(self):
        assert IncreasedRefreshRate(config(50_000)).is_viable()
        assert not IncreasedRefreshRate(config(4_800)).is_viable()

    def test_never_requests_victim_refreshes(self):
        mechanism = IncreasedRefreshRate(config(10_000))
        assert mechanism.on_activate(0, 10, cycle=0) == []


class TestPARA:
    def test_probability_increases_for_lower_hcfirst(self):
        trc = DDR4_2400.trc_ns
        assert probability_for(128, trc) > probability_for(4_800, trc) > probability_for(100_000, trc)

    def test_probability_bounded(self):
        assert probability_for(1, DDR4_2400.trc_ns) <= 1.0
        with pytest.raises(ValueError):
            probability_for(0, DDR4_2400.trc_ns)

    def test_refreshes_adjacent_row_when_forced(self):
        mechanism = PARA(config(128))
        mechanism.probability = 1.0
        victims = mechanism.on_activate(2, 100, cycle=0)
        assert len(victims) == 1
        bank, row = victims[0]
        assert bank == 2 and row in (99, 101)

    def test_refresh_rate_tracks_probability(self):
        mechanism = PARA(config(128, seed=1))
        activations = 20_000
        refreshes = sum(len(mechanism.on_activate(0, 500, cycle=i)) for i in range(activations))
        assert refreshes / activations == pytest.approx(mechanism.probability, rel=0.15)


class TestProHIT:
    def test_tracked_victim_refreshed_on_refresh_command(self):
        mechanism = ProHIT(config(2_000, seed=2), insert_probability=1.0)
        for cycle in range(50):
            mechanism.on_activate(0, 500, cycle)
        victims = mechanism.on_refresh(cycle=100)
        assert victims and victims[0][1] in (499, 501)

    def test_no_refresh_when_tables_empty(self):
        mechanism = ProHIT(config(2_000))
        assert mechanism.on_refresh(cycle=0) == []

    def test_table_sizes_bounded(self):
        mechanism = ProHIT(config(2_000, seed=3), hot_entries=4, cold_entries=4, insert_probability=1.0)
        for row in range(200):
            mechanism.on_activate(0, row * 2 + 1, cycle=row)
        assert len(mechanism._hot) <= 4
        assert len(mechanism._cold) <= 4

    def test_invalid_table_sizes(self):
        with pytest.raises(ValueError):
            ProHIT(config(2_000), hot_entries=0)


class TestMRLoc:
    def test_repeatedly_hammered_victim_eventually_refreshed(self):
        mechanism = MRLoc(config(2_000, seed=4), max_probability=0.2)
        refreshed = []
        for cycle in range(2_000):
            refreshed.extend(mechanism.on_activate(0, 300, cycle))
        assert refreshed
        assert all(row in (299, 301) for _bank, row in refreshed)

    def test_queue_bounded(self):
        mechanism = MRLoc(config(2_000, seed=5), queue_entries=16)
        for row in range(500):
            mechanism.on_activate(0, row * 3 + 1, cycle=row)
        assert len(mechanism._queue) <= 16

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            MRLoc(config(2_000), base_probability=0.5, max_probability=0.1)


class TestTWiCe:
    def test_victim_refreshed_at_threshold(self):
        mechanism = TWiCe(config(400))
        threshold = mechanism.row_hammer_threshold
        victims = []
        for cycle in range(threshold + 1):
            victims.extend(mechanism.on_activate(0, 50, cycle))
        assert (0, 49) in victims and (0, 51) in victims

    def test_counter_resets_after_victim_refresh(self):
        mechanism = TWiCe(config(400))
        threshold = mechanism.row_hammer_threshold
        for cycle in range(threshold):
            mechanism.on_activate(0, 50, cycle)
        mechanism.on_victim_refreshed(0, 49, cycle=threshold)
        assert (0, 49) not in mechanism._table

    def test_pruning_removes_cold_entries(self):
        mechanism = TWiCe(config(200_000))
        mechanism.on_activate(0, 10, cycle=0)  # single activation, cold entry
        assert mechanism.table_size > 0
        for _ in range(3):
            mechanism.on_refresh(cycle=0)
        assert mechanism.table_size == 0

    def test_viability_and_ideal_variant(self):
        assert not TWiCe(config(4_800)).is_viable()
        ideal = TWiCe(config(4_800), ideal=True)
        assert ideal.is_viable()
        assert ideal.name == "TWiCe-ideal"

    def test_time_scale_shrinks_threshold(self):
        nominal = TWiCe(config(100_000))
        scaled = TWiCe(config(100_000, time_scale=0.01))
        assert scaled.row_hammer_threshold < nominal.row_hammer_threshold


class TestIdealRefresh:
    def test_refresh_exactly_at_threshold(self):
        mechanism = IdealRefresh(config(64))
        victims = []
        for cycle in range(200):
            victims.extend(mechanism.on_activate(0, 10, cycle))
        # Two victims (rows 9 and 11), each refreshed once every 63 activations.
        per_victim = [row for _bank, row in victims]
        assert per_victim.count(9) == 200 // 63
        assert per_victim.count(11) == 200 // 63

    def test_no_refresh_below_threshold(self):
        mechanism = IdealRefresh(config(1_000))
        victims = []
        for cycle in range(500):
            victims.extend(mechanism.on_activate(0, 10, cycle))
        assert victims == []

    def test_window_sweep_clears_counters(self):
        mechanism = IdealRefresh(config(64))
        for cycle in range(30):
            mechanism.on_activate(0, 10, cycle)
        assert mechanism.tracked_rows > 0
        mechanism.on_activate(0, 10, cycle=mechanism.config.refresh_window_cycles + 1)
        assert mechanism.tracked_rows <= 2


class TestRegistry:
    def test_all_expected_mechanisms_registered(self):
        assert set(available_mechanisms()) == {
            "IncreasedRefresh",
            "PARA",
            "ProHIT",
            "MRLoc",
            "TWiCe",
            "TWiCe-ideal",
            "Ideal",
        }

    def test_build_by_name(self):
        mechanism = build_mechanism("TWiCe-ideal", config(128))
        assert mechanism.name == "TWiCe-ideal"
        with pytest.raises(ValueError):
            build_mechanism("Nonexistent", config(128))

    def test_evaluation_constraints_match_paper(self):
        assert is_evaluable("PARA", 64)
        assert is_evaluable("Ideal", 64)
        assert is_evaluable("ProHIT", 2_000)
        assert not is_evaluable("ProHIT", 4_800)
        assert not is_evaluable("MRLoc", 64)
        assert not is_evaluable("IncreasedRefresh", 4_800)
        assert not is_evaluable("TWiCe", 4_800)
        assert is_evaluable("TWiCe-ideal", 64)
