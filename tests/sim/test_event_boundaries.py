"""Boundary-condition tests for the event-horizon machinery.

The event-driven loop's correctness rests on one contract: the horizon a
quiescent controller reports is *sound* -- nothing can happen strictly
before it -- and *useful* -- it is strictly in the future, even when a
timer expires exactly at the current cycle (``horizon == cycle`` is the
off-by-one this suite pins).  The edges exercised here:

* rank tFAW admission at exactly ``oldest_activate + tFAW`` (legal) vs
  one cycle earlier (illegal), and the matching ``next_activate_cycle``
  bound;
* bank timers at exact expiry (``can_activate`` / ``can_precharge`` /
  ``can_column_access`` flip on the boundary cycle, not one later);
* the refresh window: horizons during an all-bank refresh, a quiet cache
  that expires exactly at its own horizon, and runs that end on a tREFI
  boundary;
* a hypothesis run-forward property: at every quiescent cycle of a random
  run the pure ``next_event_cycle`` oracle must point strictly past the
  present, and replaying the reference scheduler up to the horizon must
  find no observable event before it (deep copies are unusable here --
  completion callbacks close over live cores -- so soundness is checked
  by running forward, not by forking the state).
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.bank import BankState, RankState
from repro.sim.config import SystemConfig
from repro.sim.controller import MemoryController
from repro.sim.requests import MemoryRequest, RequestType
from repro.sim.timing import DramTimings

#: Refresh boundaries every 400 cycles so short runs cross several.
FAST_REFRESH = dataclasses.replace(DramTimings(), trefi=400, trfc=60)

SMALL = SystemConfig(
    cores=2,
    banks=4,
    rows_per_bank=64,
    read_queue_depth=8,
    write_queue_depth=8,
    timings=FAST_REFRESH,
)


def _request(kind, bank, row):
    return MemoryRequest(request_type=kind, bank=bank, row=row)


def _observable(controller):
    """Everything an 'event' can change, minus the free-running cycle count."""
    stats = dataclasses.asdict(controller.stats)
    stats.pop("cycles")
    return (
        stats,
        controller.read_len,
        controller.write_len,
        len(controller.victim_queue),
        len(controller._pending_completions),
        [dataclasses.asdict(bank) for bank in controller.banks],
        controller.rank.next_activate,
        controller.rank.data_bus_free,
        list(controller.rank.recent_activates),
    )


class TestRankTfawEdges:
    def test_admission_at_exact_tfaw_boundary(self):
        timings = DramTimings()
        rank = RankState(timings=timings)
        # Four activates spaced exactly tRRD_L apart fill the rolling window.
        cycles = [index * timings.trrd_l for index in range(4)]
        for cycle in cycles:
            assert rank.can_activate(cycle)
            rank.record_activate(cycle)
        bound = cycles[0] + timings.tfaw
        trrd_bound = cycles[-1] + timings.trrd_l
        assert rank.next_activate_cycle() == max(bound, trrd_bound)
        # tFAW expiry is ``oldest <= cycle - tFAW``: the boundary cycle
        # itself readmits, one cycle earlier does not.
        assert not rank.can_activate(bound - 1)
        assert rank.can_activate(bound)

    def test_trrd_binds_when_window_not_full(self):
        timings = DramTimings()
        rank = RankState(timings=timings)
        rank.record_activate(10)
        assert rank.next_activate_cycle() == 10 + timings.trrd_l
        assert not rank.can_activate(10 + timings.trrd_l - 1)
        assert rank.can_activate(10 + timings.trrd_l)


class TestBankTimerEdges:
    def test_timers_flip_on_their_expiry_cycle(self):
        timings = DramTimings()
        bank = BankState(timings=timings)
        bank.activate(0, row=5)
        assert bank.open_row == 5
        # Column access legal exactly at tRCD, precharge exactly at tRAS.
        assert not bank.can_column_access(timings.trcd - 1, is_write=False)
        assert bank.can_column_access(timings.trcd, is_write=False)
        assert not bank.can_precharge(timings.tras - 1)
        assert bank.can_precharge(timings.tras)
        # While open, the horizon is the earliest of the open-row commands.
        assert bank.next_event_cycle() == min(
            bank.next_precharge, bank.next_read, bank.next_write
        )
        bank.precharge(timings.tras)
        # Activate legal exactly at the tRC/tRP-derived expiry.
        assert not bank.can_activate(bank.next_activate - 1)
        assert bank.can_activate(bank.next_activate)
        assert bank.next_event_cycle() == bank.next_activate


class TestHorizonAtCurrentCycle:
    def test_pure_oracle_never_returns_the_present(self):
        """Even with every timer expired at ``cycle``, the pure horizon is
        strictly in the future (the ``horizon <= floor`` clamp)."""
        controller = MemoryController(SMALL)
        trefi = SMALL.timings.trefi
        # Sit exactly on the refresh boundary: _next_refresh == cycle.
        assert controller.next_event_cycle(trefi) == trefi + 1
        # And one cycle before: the horizon is the boundary itself.
        assert controller.next_event_cycle(trefi - 1) == trefi

    def test_quiet_cache_expires_on_its_own_horizon(self):
        """A quiescent tick's horizon is where the next tick must process:
        ``tick(horizon)`` may not echo the cached bound back."""
        controller = MemoryController(SMALL)
        controller.enqueue(_request(RequestType.READ, bank=1, row=3), 0)
        horizon = None
        cycle = 0
        for _ in range(2_000):
            result = controller.tick(cycle)
            if result is not None:
                horizon = result
                break
            cycle += 1
        assert horizon is not None and horizon > cycle
        assert controller._quiet_until == horizon
        follow_up = controller.tick(horizon)
        assert follow_up is None or follow_up > horizon

    def test_refresh_window_horizon(self):
        """Inside an all-bank refresh the horizon is the window end, and
        scheduling resumes exactly at ``_refresh_until``."""
        controller = MemoryController(SMALL)
        trefi = SMALL.timings.trefi
        controller.enqueue(_request(RequestType.READ, bank=0, row=1), 0)
        for cycle in range(trefi):
            controller.tick_reference(cycle)
        assert controller.tick(trefi) is None  # the refresh command itself
        until = controller._refresh_until
        assert until > trefi + 1
        inside = controller.tick(trefi + 1)
        assert inside is not None and inside >= until
        controller.enqueue(_request(RequestType.READ, bank=2, row=7), trefi + 1)
        # The enqueue fold may not promise anything beyond the window end.
        assert controller._quiet_until <= until
        # At the window end the queued read's activate becomes issuable.
        reads_before = controller.stats.reads_serviced
        activates_before = controller.stats.demand_activates
        assert controller.tick(until) is None
        assert controller.stats.demand_activates == activates_before + 1
        del reads_before


_SOUP = st.lists(
    st.tuples(
        st.integers(0, 60),  # idle gap before the enqueue
        st.booleans(),  # write?
        st.integers(0, SMALL.banks - 1),
        st.integers(0, SMALL.rows_per_bank - 1),
    ),
    min_size=4,
    max_size=24,
)


class TestRunForwardSoundness:
    @settings(max_examples=40, deadline=None)
    @given(_SOUP)
    def test_oracle_horizon_is_sound_and_future(self, soup):
        """At every quiescent point: ``cycle < horizon``, and replaying the
        reference scheduler strictly before the horizon changes nothing
        observable."""
        controller = MemoryController(SMALL)
        cycle = 0
        checked = 0
        for gap, is_write, bank, row in soup:
            target = cycle + gap
            while cycle < target:
                horizon = controller.next_event_cycle(cycle)
                assert horizon > cycle
                before = _observable(controller)
                # Tick reference strictly up to the horizon (bounded to the
                # enqueue target): every cycle must be a no-op.
                quiet_until = min(horizon, target)
                while cycle + 1 < quiet_until:
                    cycle += 1
                    controller.tick_reference(cycle)
                    assert _observable(controller) == before
                    checked += 1
                cycle += 1
                controller.tick_reference(cycle)
            kind = RequestType.WRITE if is_write else RequestType.READ
            controller.enqueue(_request(kind, bank, row), cycle)
        # Drain with the same invariant until idle (bounded).
        for _ in range(4):
            horizon = controller.next_event_cycle(cycle)
            assert horizon > cycle
            before = _observable(controller)
            while cycle + 1 < horizon:
                cycle += 1
                controller.tick_reference(cycle)
                assert _observable(controller) == before
                checked += 1
            cycle += 1
            controller.tick_reference(cycle)
        assert checked > 0  # the property actually exercised quiet spans
