"""Golden-trace regression suite: event-driven mode vs the cycle reference.

Both fast paths -- the event-driven mode (``step_mode="event"``) and the
sim-major batch kernel (:class:`repro.sim.batch.SimulationBatch` with
``backend="kernel"``) -- must be *bit-identical* to the cycle-by-cycle
reference (``step_mode="cycle"``): every
:class:`~repro.sim.system.SimulationResult` field, every counter.  The
reference scheduler makes its decisions by scanning the request queues and
``BankState`` objects directly, independently of the incremental bookkeeping
(per-bank pending/hit counters, flat bank mirrors, quiet-until cache,
batch-kernel array mirrors) the fast paths rely on, so these tests validate
that machinery end to end.  Every golden is parameterized over both fast
paths; under ``REPRO_SIM_KERNEL=off`` (the CI fallback leg) the kernel
variant degrades to the event path, keeping the fallback itself covered.

The tier-1 tests here run each mitigation mechanism on a tiny fixed-seed
workload; the ``slow`` marker covers the full Table 6 system over several
Figure 10 mixes.
"""

import dataclasses

import pytest

from repro.mitigations.base import MitigationConfig
from repro.mitigations.registry import available_mechanisms, build_mechanism
from repro.sim.batch import SimulationBatch
from repro.sim.config import SystemConfig
from repro.sim.system import Simulation
from repro.sim.trace import AggressorTraceGenerator, SyntheticTraceGenerator
from repro.sim.workloads import make_workload_mixes

#: Small system used by the tier-1 golden runs: enough banks and queue depth
#: to exercise conflicts, drains and refreshes in a few thousand cycles.
GOLDEN_SYSTEM = SystemConfig(
    cores=4,
    banks=8,
    rows_per_bank=512,
    read_queue_depth=24,
    write_queue_depth=24,
)

GOLDEN_SEED = 7
#: Both fast paths every golden is pinned against the cycle oracle.
FAST_MODES = ("event", "kernel")
#: Long enough to cross at least one tREFI boundary (periodic refresh).
GOLDEN_CYCLES = 10_000


def build_traces(config, cores=None, requests_per_core=800, seed=GOLDEN_SEED):
    mix = make_workload_mixes(num_mixes=1, cores=cores or config.cores, seed=seed)[0]
    return mix.build_traces(
        banks=config.banks,
        rows_per_bank=config.rows_per_bank,
        columns_per_row=config.columns_per_row,
        requests_per_core=requests_per_core,
        seed=seed,
    )


def run_both(
    config,
    traces,
    mitigation_name=None,
    hcfirst=2_000,
    dram_cycles=GOLDEN_CYCLES,
    fast_mode="event",
):
    """Run the same workload through the cycle oracle and one fast path."""

    def build_mitigation():
        if mitigation_name is None:
            return None
        return build_mechanism(
            mitigation_name,
            MitigationConfig(
                hcfirst=hcfirst,
                banks=config.banks,
                rows_per_bank=config.rows_per_bank,
                timings=config.timings,
                seed=GOLDEN_SEED,
            ),
        )

    reference = Simulation(
        config, traces, mitigation=build_mitigation(), step_mode="cycle"
    ).run(dram_cycles)
    if fast_mode == "kernel":
        batch = SimulationBatch(
            config, [traces], mitigations=[build_mitigation()], backend="kernel"
        )
        fast = batch.run(dram_cycles)[0]
    else:
        fast = Simulation(
            config, traces, mitigation=build_mitigation(), step_mode="event"
        ).run(dram_cycles)
    return reference, fast


def assert_bit_identical(reference, fast):
    """Every SimulationResult field must match exactly (no tolerance)."""
    assert reference.dram_cycles == fast.dram_cycles
    assert reference.mitigation_name == fast.mitigation_name
    assert reference.core_ipcs == fast.core_ipcs
    assert reference.mitigation_busy_cycles == fast.mitigation_busy_cycles
    assert reference.demand_busy_cycles == fast.demand_busy_cycles
    assert dataclasses.asdict(reference.controller_stats) == dataclasses.asdict(
        fast.controller_stats
    )
    assert len(reference.core_stats) == len(fast.core_stats)
    for ref_core, fast_core in zip(reference.core_stats, fast.core_stats):
        assert dataclasses.asdict(ref_core) == dataclasses.asdict(fast_core)


@pytest.mark.parametrize("fast_mode", FAST_MODES)
class TestGoldenTraces:
    def test_baseline_golden(self, fast_mode):
        traces = build_traces(GOLDEN_SYSTEM)
        reference, fast = run_both(GOLDEN_SYSTEM, traces, fast_mode=fast_mode)
        assert_bit_identical(reference, fast)
        # The run must have exercised the memory system, not idled through it.
        assert reference.controller_stats.reads_serviced > 0
        assert reference.controller_stats.row_conflicts > 0
        assert reference.controller_stats.refresh_commands > 0

    @pytest.mark.parametrize("mechanism", available_mechanisms())
    def test_mechanism_golden(self, mechanism, fast_mode):
        """Each mitigation mechanism is bit-identical across step modes."""
        traces = build_traces(GOLDEN_SYSTEM)
        reference, fast = run_both(
            GOLDEN_SYSTEM, traces, mitigation_name=mechanism, fast_mode=fast_mode
        )
        assert_bit_identical(reference, fast)
        assert reference.mitigation_name == fast.mitigation_name != "none"

    @pytest.mark.parametrize("mechanism", ["PARA", "Ideal", "TWiCe-ideal"])
    def test_mechanism_golden_vulnerable_chip(self, mechanism, fast_mode):
        """Low HC_first means constant victim-refresh traffic; still identical."""
        traces = build_traces(GOLDEN_SYSTEM)
        reference, fast = run_both(
            GOLDEN_SYSTEM,
            traces,
            mitigation_name=mechanism,
            hcfirst=8,
            fast_mode=fast_mode,
        )
        assert_bit_identical(reference, fast)
        assert reference.controller_stats.mitigation_refreshes > 0

    def test_single_core_golden(self, fast_mode):
        """Single-core (alone-IPC) runs take different fast paths; identical."""
        traces = build_traces(GOLDEN_SYSTEM)
        for trace in traces:
            reference, fast = run_both(GOLDEN_SYSTEM, [trace], fast_mode=fast_mode)
            assert_bit_identical(reference, fast)

    def test_slow_cpu_golden(self, fast_mode):
        """A CPU clocked below the DRAM bus (ratio < 1) stays bit-identical.

        Some processed DRAM cycles then carry zero CPU ticks, so the tick
        phase is skipped entirely: a core settled on such a cycle must still
        be covered by a wake entry, or the jump logic could batch it across
        a span it has to be ticked exactly in (regression test for exactly
        that hole)."""
        config = SystemConfig(
            cores=4,
            cpu_freq_ghz=0.5,
            banks=8,
            rows_per_bank=512,
            read_queue_depth=24,
            write_queue_depth=24,
        )
        assert config.cpu_cycles_per_dram_cycle < 1
        traces = build_traces(config)
        reference, fast = run_both(config, traces, fast_mode=fast_mode)
        assert_bit_identical(reference, fast)
        reference, fast = run_both(
            config, traces, mitigation_name="PARA", hcfirst=512, fast_mode=fast_mode
        )
        assert_bit_identical(reference, fast)

    def test_attacker_trace_golden(self, fast_mode):
        """A RowHammer attacker plus a background core, with PARA active."""
        attacker = AggressorTraceGenerator(
            target_bank=1,
            victim_row=100,
            banks=GOLDEN_SYSTEM.banks,
            rows_per_bank=GOLDEN_SYSTEM.rows_per_bank,
            seed=3,
        ).generate(1_200)
        background = SyntheticTraceGenerator(
            mpki=30,
            banks=GOLDEN_SYSTEM.banks,
            rows_per_bank=GOLDEN_SYSTEM.rows_per_bank,
            seed=4,
        ).generate(800)
        reference, fast = run_both(
            GOLDEN_SYSTEM,
            [attacker, background],
            mitigation_name="PARA",
            hcfirst=512,
            fast_mode=fast_mode,
        )
        assert_bit_identical(reference, fast)

    def test_refresh_rate_scaling_golden(self, fast_mode):
        """IncreasedRefresh rescales tREFI; the horizon must track it."""
        traces = build_traces(GOLDEN_SYSTEM)
        reference, fast = run_both(
            GOLDEN_SYSTEM,
            traces,
            mitigation_name="IncreasedRefresh",
            hcfirst=40_000,
            fast_mode=fast_mode,
        )
        assert_bit_identical(reference, fast)
        assert reference.controller_stats.refresh_commands > 0

    def test_internal_bookkeeping_consistent_after_event_run(self, fast_mode):
        """The fast path's indexed structures must equal scan-derived truth."""
        traces = build_traces(GOLDEN_SYSTEM)
        if fast_mode == "kernel":
            batch = SimulationBatch(GOLDEN_SYSTEM, [traces], backend="kernel")
            batch.run(GOLDEN_CYCLES)
            controller = batch.controllers[0]
        else:
            simulation = Simulation(GOLDEN_SYSTEM, traces, step_mode="event")
            simulation.run(GOLDEN_CYCLES)
            controller = simulation.controller
        live_reads = controller.queued_reads()
        live_writes = controller.queued_writes()
        assert controller.read_len == len(live_reads)
        assert controller.write_len == len(live_writes)
        from repro.sim.events import NEVER

        stride = controller._row_stride
        for bank_index, bank in enumerate(controller.banks):
            assert controller._bank_open_row[bank_index] == bank.open_row
            assert controller._bank_next_activate[bank_index] == bank.next_activate
            assert controller._bank_next_precharge[bank_index] == bank.next_precharge
            assert controller._bank_next_read[bank_index] == bank.next_read
            assert controller._bank_next_write[bank_index] == bank.next_write
            reads = [r for r in live_reads if r.bank == bank_index]
            writes = [w for w in live_writes if w.bank == bank_index]
            assert controller._read_pending[bank_index] == len(reads)
            assert controller._write_pending[bank_index] == len(writes)
            read_hits = [r for r in reads if r.row == bank.open_row]
            write_hits = [w for w in writes if w.row == bank.open_row]
            assert controller._read_hits[bank_index] == len(read_hits)
            assert controller._write_hits[bank_index] == len(write_hits)
            # Per-bank FIFOs hold each bank's live requests in arrival order.
            fifo_reads = [r for r in controller._read_fifo[bank_index] if not r.popped]
            fifo_writes = [w for w in controller._write_fifo[bank_index] if not w.popped]
            assert fifo_reads == reads
            assert fifo_writes == writes
            # Head-of-index sequence mirrors name the oldest live request and
            # the oldest live hit of each bank.
            assert controller._read_head_seq[bank_index] == (
                reads[0].seq if reads else NEVER
            )
            assert controller._write_head_seq[bank_index] == (
                writes[0].seq if writes else NEVER
            )
            assert controller._read_hit_seq[bank_index] == (
                read_hits[0].seq if read_hits else NEVER
            )
            assert controller._write_hit_seq[bank_index] == (
                write_hits[0].seq if write_hits else NEVER
            )
        # Row buckets and their live counts agree with a full queue scan.
        for queue, rows, counts in (
            (live_reads, controller._read_rows, controller._read_row_count),
            (live_writes, controller._write_rows, controller._write_row_count),
        ):
            by_key = {}
            for request in queue:
                by_key.setdefault(request.bank * stride + request.row, []).append(request)
            for key, bucket in rows.items():
                live = [r for r in bucket if not r.popped]
                assert live == by_key.get(key, [])
                assert counts.get(key, 0) == len(live)


@pytest.mark.slow
class TestGoldenTracesFullSystem:
    """Table 6 system over Figure 10 mixes -- the acceptance-criterion sweep."""

    @pytest.mark.parametrize("fast_mode", FAST_MODES)
    @pytest.mark.parametrize("mechanism", [None] + available_mechanisms())
    def test_full_system_golden(self, mechanism, fast_mode):
        config = SystemConfig(rows_per_bank=2048)
        mixes = make_workload_mixes(num_mixes=2, cores=config.cores, seed=1)
        hcfirst = 2_000 if mechanism in (None, "ProHIT", "MRLoc") else 50_000
        for mix in mixes:
            traces = mix.build_traces(
                banks=config.banks,
                rows_per_bank=config.rows_per_bank,
                columns_per_row=config.columns_per_row,
                requests_per_core=2_000,
                seed=1,
            )
            reference, fast = run_both(
                config,
                traces,
                mitigation_name=mechanism,
                hcfirst=hcfirst,
                dram_cycles=12_000,
                fast_mode=fast_mode,
            )
            assert_bit_identical(reference, fast)
