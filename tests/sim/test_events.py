"""Property and unit tests for the event-queue core of ``repro.sim``.

Three layers:

* :class:`EventQueue` against a naive model: ordering, deterministic FIFO
  tie-breaking, reschedule/cancel correctness (hypothesis stateful-ish
  operation sequences).
* The controller's indexed bank buckets against full scans of the live
  queues, and the fast scheduler's decisions against the independent
  scan-based reference scheduler, on randomized request soups.
* The mitigation timer event-registration API
  (:meth:`~repro.mitigations.base.MitigationMechanism.register_events` /
  ``on_timer``), including bit-identity across step modes and the legacy
  ``next_event_cycle`` compat shim.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mitigations.base import MitigationConfig, MitigationMechanism
from repro.sim.batch import SimulationBatch
from repro.sim.config import SystemConfig
from repro.sim.controller import MemoryController
from repro.sim.events import NEVER, EventQueue
from repro.sim.requests import MemoryRequest, RequestType
from repro.sim.system import Simulation
from repro.sim.workloads import make_workload_mixes


# ----------------------------------------------------------------------
# EventQueue vs naive model
# ----------------------------------------------------------------------
class NaiveQueue:
    """Reference model: a plain dict of key -> (cycle, fifo_rank)."""

    def __init__(self):
        self.entries = {}
        self.rank = 0

    def schedule(self, key, cycle):
        if cycle >= NEVER:
            self.entries.pop(key, None)
            return
        current = self.entries.get(key)
        if current is not None and current[0] == cycle:
            return  # EventQueue keeps the FIFO position of an unmoved entry
        self.rank += 1
        self.entries[key] = (cycle, self.rank)

    def cancel(self, key):
        return self.entries.pop(key, None) is not None

    def pop(self):
        if not self.entries:
            return None
        key = min(self.entries, key=lambda k: self.entries[k])
        cycle, _ = self.entries.pop(key)
        return (cycle, key)

    def peek_cycle(self):
        if not self.entries:
            return NEVER
        return min(self.entries.values())[0]


#: One operation of a randomized schedule/cancel/pop interleaving.
_OPS = st.one_of(
    st.tuples(
        st.just("schedule"),
        st.integers(min_value=0, max_value=7),
        st.one_of(st.integers(min_value=0, max_value=50), st.just(NEVER)),
    ),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=7)),
    st.tuples(st.just("pop")),
    st.tuples(st.just("peek")),
)


class TestEventQueueProperties:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_OPS, max_size=60))
    def test_matches_naive_model(self, ops):
        """Pops, peeks and membership match the reference model exactly."""
        queue = EventQueue()
        model = NaiveQueue()
        for op in ops:
            if op[0] == "schedule":
                queue.schedule(op[1], op[2])
                model.schedule(op[1], op[2])
            elif op[0] == "cancel":
                assert queue.cancel(op[1]) == model.cancel(op[1])
            elif op[0] == "pop":
                assert queue.pop() == model.pop()
            else:
                assert queue.peek_cycle() == model.peek_cycle()
            assert len(queue) == len(model.entries)
            for key in range(8):
                assert (key in queue) == (key in model.entries)
                expected = model.entries.get(key, (NEVER,))[0]
                assert queue.cycle_of(key) == expected
        drained = []
        while True:
            item = queue.pop()
            if item is None:
                break
            drained.append(item)
        assert drained == sorted(drained, key=lambda item: item[0])
        assert model.pop() is None or drained  # model drains identically above

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 10)), min_size=1, max_size=32
        )
    )
    def test_same_cycle_pops_in_schedule_order(self, pairs):
        """Entries scheduled for the same cycle drain in schedule order."""
        queue = EventQueue()
        latest = {}
        for order, (key, cycle) in enumerate(pairs):
            queue.schedule(key, cycle)
            if latest.get(key, (None, None))[0] != cycle:
                latest[key] = (cycle, order)
        drained = []
        while queue:
            drained.append(queue.pop())
        expected = sorted(latest.items(), key=lambda item: item[1])
        assert drained == [(cycle, key) for key, (cycle, order) in expected]

    def test_stats_accounting(self):
        queue = EventQueue()
        queue.schedule("a", 5)
        queue.schedule("b", 5)
        queue.schedule("a", 9)  # reschedule
        queue.schedule("a", 9)  # no-op: already there
        assert queue.stats.scheduled == 2
        assert queue.stats.rescheduled == 1
        assert queue.stats.max_depth == 2
        assert queue.cancel("b")
        assert not queue.cancel("b")
        assert queue.stats.cancelled == 1
        assert queue.pop() == (9, "a")
        assert queue.stats.popped == 1
        assert queue.pop() is None
        assert queue.peek_cycle() == NEVER

    def test_never_schedules_drop_the_entry(self):
        queue = EventQueue()
        queue.schedule(3, 10)
        queue.schedule(3, NEVER)
        assert 3 not in queue
        assert queue.pop() is None


# ----------------------------------------------------------------------
# Indexed bank buckets vs full scans and the reference scheduler
# ----------------------------------------------------------------------
SMALL = SystemConfig(
    cores=2, banks=4, rows_per_bank=64, read_queue_depth=8, write_queue_depth=8
)


def _request(kind, bank, row):
    return MemoryRequest(request_type=kind, bank=bank, row=row)


def _assert_index_consistent(controller):
    """Cross-check every incremental structure against naive scans."""
    live_reads = controller.queued_reads()
    live_writes = controller.queued_writes()
    assert controller.read_len == len(live_reads)
    assert controller.write_len == len(live_writes)
    for bank_index, bank in enumerate(controller.banks):
        reads = [r for r in live_reads if r.bank == bank_index]
        writes = [w for w in live_writes if w.bank == bank_index]
        assert controller._read_pending[bank_index] == len(reads)
        assert controller._write_pending[bank_index] == len(writes)
        read_hits = [r for r in reads if r.row == bank.open_row]
        write_hits = [w for w in writes if w.row == bank.open_row]
        assert controller._read_hits[bank_index] == len(read_hits)
        assert controller._write_hits[bank_index] == len(write_hits)
        assert [r for r in controller._read_fifo[bank_index] if not r.popped] == reads
        assert [w for w in controller._write_fifo[bank_index] if not w.popped] == writes
        assert controller._read_head_seq[bank_index] == (
            reads[0].seq if reads else NEVER
        )
        assert controller._write_head_seq[bank_index] == (
            writes[0].seq if writes else NEVER
        )
        assert controller._read_hit_seq[bank_index] == (
            read_hits[0].seq if read_hits else NEVER
        )
        assert controller._write_hit_seq[bank_index] == (
            write_hits[0].seq if write_hits else NEVER
        )
    for queue, rows, counts in (
        (live_reads, controller._read_rows, controller._read_row_count),
        (live_writes, controller._write_rows, controller._write_row_count),
    ):
        grouped = {}
        for request in queue:
            key = request.bank * controller._row_stride + request.row
            grouped.setdefault(key, []).append(request)
        for key, bucket in rows.items():
            live = [r for r in bucket if not r.popped]
            assert live == grouped.get(key, [])
            assert counts.get(key, 0) == len(live)


_SOUP = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=12),  # tick gap before the enqueue
        st.booleans(),  # write?
        st.integers(min_value=0, max_value=3),  # bank
        st.integers(min_value=0, max_value=7),  # row (small: force hits/conflicts)
    ),
    min_size=1,
    max_size=40,
)


class TestBucketInvariants:
    @settings(max_examples=60, deadline=None)
    @given(_SOUP)
    def test_fast_scheduler_matches_reference_on_random_soup(self, soup):
        """Two controllers fed the same request stream -- one ticked through
        the indexed fast path, one through the scan-based reference -- must
        produce identical stats and bank states, and the fast controller's
        index must stay consistent throughout."""
        fast = MemoryController(SMALL)
        reference = MemoryController(SMALL)
        cycle = 0
        for gap, is_write, bank, row in soup:
            for _ in range(gap):
                fast.tick(cycle)
                reference.tick_reference(cycle)
                cycle += 1
            kind = RequestType.WRITE if is_write else RequestType.READ
            accepted_fast = fast.enqueue(_request(kind, bank, row), cycle)
            accepted_ref = reference.enqueue(_request(kind, bank, row), cycle)
            assert accepted_fast == accepted_ref
        # Drain: run both controllers until idle (bounded).
        for _ in range(3_000):
            if not (fast.outstanding_requests or reference.outstanding_requests):
                break
            fast.tick(cycle)
            reference.tick_reference(cycle)
            cycle += 1
        _assert_index_consistent(fast)
        assert dataclasses.asdict(fast.stats) == dataclasses.asdict(reference.stats)
        for fast_bank, ref_bank in zip(fast.banks, reference.banks):
            assert dataclasses.asdict(fast_bank) == dataclasses.asdict(ref_bank)

    @settings(max_examples=60, deadline=None)
    @given(_SOUP)
    def test_index_consistent_at_every_step(self, soup):
        """The index invariants hold after every single tick and enqueue."""
        controller = MemoryController(SMALL)
        cycle = 0
        for gap, is_write, bank, row in soup:
            for _ in range(gap):
                controller.tick(cycle)
                cycle += 1
            kind = RequestType.WRITE if is_write else RequestType.READ
            controller.enqueue(_request(kind, bank, row), cycle)
            _assert_index_consistent(controller)
        for _ in range(200):
            controller.tick(cycle)
            cycle += 1
        _assert_index_consistent(controller)


# ----------------------------------------------------------------------
# Mitigation timer event-registration API
# ----------------------------------------------------------------------
class ScrubberMechanism(MitigationMechanism):
    """Test mechanism: an autonomous periodic scrubber using the port API.

    Every ``period`` cycles it asks for one victim refresh of a row it
    cycles through -- activity that exists *only* through ``on_timer``
    dispatch, so both step modes must dispatch it identically for the
    golden comparison to hold.
    """

    name = "test-scrubber"

    def __init__(self, config, period=700):
        super().__init__(config)
        self.period = period
        self.fired_at = []
        self._port = None
        self._next_row = 0

    def register_events(self, port):
        self._port = port
        port.schedule_timer(self.period)

    def on_timer(self, cycle):
        self.fired_at.append(cycle)
        self._port.schedule_timer(cycle + self.period)
        row = self._next_row
        self._next_row = (self._next_row + 3) % self.config.rows_per_bank
        return self._request([(0, row)])

    def on_activate(self, bank, row, cycle):
        return []


class TestMitigationTimerRegistration:
    def _mechanism(self, config, period=700):
        return ScrubberMechanism(
            MitigationConfig(
                hcfirst=2_000,
                banks=config.banks,
                rows_per_bank=config.rows_per_bank,
                timings=config.timings,
            ),
            period=period,
        )

    def test_timer_fires_at_registered_cycles_in_both_modes(self):
        config = SystemConfig(
            cores=2, banks=4, rows_per_bank=256, read_queue_depth=8, write_queue_depth=8
        )
        mix = make_workload_mixes(num_mixes=1, cores=2, seed=11)[0]
        traces = mix.build_traces(
            banks=config.banks,
            rows_per_bank=config.rows_per_bank,
            columns_per_row=config.columns_per_row,
            requests_per_core=400,
            seed=11,
        )
        results = {}
        fired = {}
        for mode in ("cycle", "event"):
            mechanism = self._mechanism(config)
            simulation = Simulation(config, traces, mitigation=mechanism, step_mode=mode)
            results[mode] = simulation.run(5_000)
            fired[mode] = list(mechanism.fired_at)
        # The batch kernel must dispatch the registered timers identically
        # (its mitigation-timer array mirrors this port-scheduled state).
        mechanism = self._mechanism(config)
        batch = SimulationBatch(config, [traces], mitigations=[mechanism], backend="kernel")
        results["kernel"] = batch.run(5_000)[0]
        fired["kernel"] = list(mechanism.fired_at)
        assert fired["cycle"] == fired["event"] == fired["kernel"]
        assert fired["event"] == [700 * n for n in range(1, 8)]
        assert results["cycle"].controller_stats.mitigation_refreshes > 0
        for mode in ("event", "kernel"):
            assert dataclasses.asdict(
                results["cycle"].controller_stats
            ) == dataclasses.asdict(results[mode].controller_stats)
            assert results["cycle"].core_ipcs == results[mode].core_ipcs

    def test_registered_timer_bounds_horizon(self):
        config = SystemConfig(
            cores=1, banks=4, rows_per_bank=64, read_queue_depth=8, write_queue_depth=8
        )
        mechanism = self._mechanism(config, period=123)
        controller = MemoryController(config, mitigation=mechanism)
        # No queued work: the horizon is the timer, not the distant refresh.
        assert controller.next_event_cycle(0) == 123
        horizon = controller.tick(0)
        assert horizon == 123

    def test_cancelled_timer_releases_horizon(self):
        config = SystemConfig(
            cores=1, banks=4, rows_per_bank=64, read_queue_depth=8, write_queue_depth=8
        )
        mechanism = self._mechanism(config, period=123)
        controller = MemoryController(config, mitigation=mechanism)
        mechanism._port.cancel_timer()
        assert mechanism._port.timer_cycle == NEVER
        assert controller.next_event_cycle(0) == config.timings.trefi

    def test_port_exempts_mechanism_from_legacy_polling(self):
        config = SystemConfig(
            cores=1, banks=4, rows_per_bank=64, read_queue_depth=8, write_queue_depth=8
        )
        mechanism = self._mechanism(config)
        assert not mechanism.has_autonomous_timer_poll()
        controller = MemoryController(config, mitigation=mechanism)
        assert not controller._poll_mitigation

    def test_legacy_next_event_cycle_override_still_polled(self):
        class LegacyTimer(MitigationMechanism):
            name = "legacy-timer"

            def on_activate(self, bank, row, cycle):
                return []

            def next_event_cycle(self, cycle):
                return cycle + 17

        config = SystemConfig(
            cores=1, banks=4, rows_per_bank=64, read_queue_depth=8, write_queue_depth=8
        )
        mechanism = LegacyTimer(
            MitigationConfig(
                hcfirst=2_000,
                banks=config.banks,
                rows_per_bank=config.rows_per_bank,
                timings=config.timings,
            )
        )
        assert mechanism.has_autonomous_timer_poll()
        controller = MemoryController(config, mitigation=mechanism)
        assert controller._poll_mitigation
        assert controller.next_event_cycle(0) == 17
