"""Unit tests for synthetic trace generation: determinism, address-space
bounds, and the statistical knobs (MPKI, locality, write fraction) that the
workload mixes rely on."""

import pytest

from repro.sim.core import flatten_trace
from repro.sim.trace import AggressorTraceGenerator, SyntheticTraceGenerator


def make_generator(**overrides):
    params = dict(
        mpki=30.0,
        row_locality=0.6,
        write_fraction=0.3,
        banks=8,
        rows_per_bank=256,
        columns_per_row=32,
        seed=5,
    )
    params.update(overrides)
    return SyntheticTraceGenerator(**params)


class TestSyntheticTraceGenerator:
    def test_deterministic_for_same_seed(self):
        assert make_generator().generate(500) == make_generator().generate(500)

    def test_different_seeds_differ(self):
        assert make_generator(seed=5).generate(200) != make_generator(seed=6).generate(200)

    def test_prefix_stability(self):
        """A longer run begins with exactly the shorter run's records."""
        assert make_generator().generate(300)[:100] == make_generator().generate(100)

    def test_records_within_address_space(self):
        generator = make_generator()
        for record in generator.generate(1_000):
            assert 0 <= record.bank < generator.banks
            assert 0 <= record.row < generator.rows_per_bank
            assert 0 <= record.column < generator.columns_per_row
            assert record.bubble_instructions >= 0

    def test_mpki_controls_bubble_density(self):
        dense = make_generator(mpki=200.0).generate(2_000)
        sparse = make_generator(mpki=5.0).generate(2_000)
        mean = lambda records: sum(r.bubble_instructions for r in records) / len(records)
        # Geometric bubbles with mean ~1000/mpki: 5 MPKI must sit far above
        # 200 MPKI, and both near their nominal means (loose 2x bounds).
        assert mean(sparse) > 10 * mean(dense)
        assert 2.5 < mean(dense) < 10.0  # nominal 5
        assert 100.0 < mean(sparse) < 400.0  # nominal 200

    def test_write_fraction_controls_write_share(self):
        records = make_generator(write_fraction=0.5).generate(2_000)
        share = sum(r.is_write for r in records) / len(records)
        assert 0.4 < share < 0.6
        assert not any(
            r.is_write for r in make_generator(write_fraction=0.0).generate(500)
        )

    def test_row_locality_repeats_rows_per_bank(self):
        def repeat_rate(records):
            last = {}
            repeats = hits = 0
            for record in records:
                if record.bank in last:
                    hits += 1
                    repeats += last[record.bank] == record.row
                last[record.bank] = record.row
            return repeats / hits

        local = make_generator(row_locality=0.9).generate(2_000)
        scattered = make_generator(row_locality=0.0).generate(2_000)
        assert repeat_rate(local) > 0.8
        assert repeat_rate(scattered) < 0.3

    def test_working_set_confines_rows(self):
        generator = make_generator(working_set_rows=16, row_locality=0.0)
        rows = {record.row for record in generator.generate(2_000)}
        assert len(rows) <= 16
        assert max(rows) - min(rows) < 16

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            make_generator(mpki=0.0)
        with pytest.raises(ValueError):
            make_generator(row_locality=1.5)
        with pytest.raises(ValueError):
            make_generator(write_fraction=-0.1)


class TestAggressorTraceGenerator:
    def make(self, **overrides):
        params = dict(
            target_bank=2,
            victim_row=100,
            banks=8,
            rows_per_bank=256,
            columns_per_row=32,
            seed=9,
        )
        params.update(overrides)
        return AggressorTraceGenerator(**params)

    def test_alternates_the_two_aggressor_rows(self):
        records = self.make().generate(100)
        assert [r.row for r in records[:4]] == [99, 101, 99, 101]
        assert {r.row for r in records} == {99, 101}

    def test_stays_in_target_bank_and_reads_only(self):
        records = self.make().generate(200)
        assert all(r.bank == 2 for r in records)
        assert not any(r.is_write for r in records)

    def test_deterministic(self):
        assert self.make().generate(150) == self.make().generate(150)


class TestFlattenRoundTrip:
    def test_flatten_preserves_every_field(self):
        records = make_generator().generate(300)
        bubbles, is_write, banks, rows, columns = flatten_trace(records)
        assert len(bubbles) == len(records)
        for index, record in enumerate(records):
            assert bubbles[index] == record.bubble_instructions
            assert is_write[index] == record.is_write
            assert banks[index] == record.bank
            assert rows[index] == record.row
            assert columns[index] == record.column
