"""Tests for the memory controller, cores, traces, workloads and system harness."""

import pytest

from repro.mitigations.base import MitigationConfig
from repro.mitigations.para import PARA
from repro.sim.config import SystemConfig
from repro.sim.controller import MemoryController
from repro.sim.core import SimpleCore
from repro.sim.metrics import (
    bandwidth_overhead_percent,
    normalized_performance,
    weighted_speedup,
)
from repro.sim.requests import MemoryRequest, RequestType
from repro.sim.system import Simulation, run_alone_ipcs, run_workload
from repro.sim.trace import AggressorTraceGenerator, SyntheticTraceGenerator, TraceRecord
from repro.sim.workloads import SPEC_LIKE_BENCHMARKS, make_workload_mixes, mix_mpki_range


class TestTraceGeneration:
    def test_trace_length_and_ranges(self):
        generator = SyntheticTraceGenerator(mpki=20, banks=4, rows_per_bank=128, seed=1)
        trace = generator.generate(500)
        assert len(trace) == 500
        assert all(0 <= r.bank < 4 and 0 <= r.row < 128 for r in trace)

    def test_mean_bubbles_tracks_mpki(self):
        sparse = SyntheticTraceGenerator(mpki=5, seed=1).generate(2000)
        dense = SyntheticTraceGenerator(mpki=100, seed=1).generate(2000)
        mean_sparse = sum(r.bubble_instructions for r in sparse) / len(sparse)
        mean_dense = sum(r.bubble_instructions for r in dense) / len(dense)
        assert mean_sparse > mean_dense
        assert mean_sparse == pytest.approx(200, rel=0.3)

    def test_row_locality_effect(self):
        local = SyntheticTraceGenerator(mpki=50, row_locality=0.95, banks=2, seed=2).generate(1000)
        random = SyntheticTraceGenerator(mpki=50, row_locality=0.0, banks=2, seed=2).generate(1000)

        def repeats(trace):
            last = {}
            count = 0
            for record in trace:
                if last.get(record.bank) == record.row:
                    count += 1
                last[record.bank] = record.row
            return count

        assert repeats(local) > repeats(random)

    def test_deterministic_for_seed(self):
        a = SyntheticTraceGenerator(mpki=30, seed=9).generate(100)
        b = SyntheticTraceGenerator(mpki=30, seed=9).generate(100)
        assert a == b

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(mpki=0)
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(mpki=1, row_locality=2.0)

    def test_attacker_trace_alternates_aggressors(self):
        generator = AggressorTraceGenerator(target_bank=1, victim_row=100, seed=3)
        trace = generator.generate(10)
        rows = {record.row for record in trace}
        assert rows == {99, 101}
        assert all(record.bank == 1 for record in trace)


class TestWorkloads:
    def test_mix_generation(self):
        mixes = make_workload_mixes(num_mixes=6, cores=8, seed=1)
        assert len(mixes) == 6
        assert all(len(mix.benchmarks) == 8 for mix in mixes)

    def test_aggregate_mpki_within_paper_range(self):
        mixes = make_workload_mixes(num_mixes=48, cores=8, seed=0)
        low, high = mix_mpki_range(mixes)
        assert low >= 10
        assert high <= 740

    def test_benchmark_profiles_cover_wide_intensity_range(self):
        mpkis = [benchmark.mpki for benchmark in SPEC_LIKE_BENCHMARKS]
        assert min(mpkis) < 5
        assert max(mpkis) >= 80


class TestMetrics:
    def test_weighted_speedup(self):
        assert weighted_speedup([1.0, 2.0], [2.0, 2.0]) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [0.0])

    def test_normalized_performance(self):
        assert normalized_performance(0.5, 1.0) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            normalized_performance(1.0, 0.0)

    def test_bandwidth_overhead(self):
        assert bandwidth_overhead_percent(50, 100) == pytest.approx(50.0)
        assert bandwidth_overhead_percent(50, 0) == 0.0


class TestControllerBasics:
    def _read(self, bank, row, done):
        return MemoryRequest(
            request_type=RequestType.READ,
            bank=bank,
            row=row,
            completion_callback=lambda cycle: done.append(cycle),
        )

    def test_read_completes_with_act_rcd_cl_latency(self, small_system):
        controller = MemoryController(small_system)
        done = []
        controller.enqueue(self._read(0, 5, done), cycle=0)
        for cycle in range(200):
            controller.tick(cycle)
        assert len(done) == 1
        timings = small_system.timings
        expected = timings.trcd + timings.tcl + timings.burst_cycles
        assert done[0] >= expected
        assert controller.stats.demand_activates == 1
        assert controller.stats.reads_serviced == 1

    def test_row_hit_scheduled_before_older_conflict(self, small_system):
        controller = MemoryController(small_system)
        done_a, done_b = [], []
        controller.enqueue(self._read(0, 5, done_a), cycle=0)
        for cycle in range(60):
            controller.tick(cycle)
        # Row 5 is now open; enqueue an older conflicting request and a newer hit.
        controller.enqueue(self._read(0, 9, done_a), cycle=60)
        controller.enqueue(self._read(0, 5, done_b), cycle=61)
        for cycle in range(60, 400):
            controller.tick(cycle)
        assert done_b and done_a
        assert done_b[0] < done_a[-1]
        assert controller.stats.row_hits >= 2

    def test_write_completes_immediately_on_enqueue(self, small_system):
        controller = MemoryController(small_system)
        request = MemoryRequest(request_type=RequestType.WRITE, bank=0, row=1)
        assert controller.enqueue(request, cycle=0)
        assert request.completed_cycle == 0

    def test_queue_capacity_enforced(self, small_system):
        controller = MemoryController(small_system)
        accepted = 0
        for index in range(small_system.read_queue_depth + 5):
            request = MemoryRequest(request_type=RequestType.READ, bank=0, row=index)
            if controller.enqueue(request, cycle=0):
                accepted += 1
        assert accepted == small_system.read_queue_depth

    def test_periodic_refresh_issued(self, small_system):
        controller = MemoryController(small_system)
        cycles = small_system.timings.trefi * 3 + 100
        for cycle in range(cycles):
            controller.tick(cycle)
        assert controller.stats.refresh_commands == 3

    def test_mitigation_victim_refresh_counted(self, small_system):
        mitigation = PARA(
            MitigationConfig(
                hcfirst=64,
                banks=small_system.banks,
                rows_per_bank=small_system.rows_per_bank,
                timings=small_system.timings,
            )
        )
        mitigation.probability = 1.0  # force a victim refresh on every activation
        controller = MemoryController(small_system, mitigation=mitigation)
        done = []
        controller.enqueue(self._read(0, 5, done), cycle=0)
        for cycle in range(300):
            controller.tick(cycle)
        assert controller.stats.mitigation_refreshes >= 1
        assert controller.mitigation_busy_cycles() > 0


class TestSystem:
    def test_simulation_produces_positive_ipc(self, small_system):
        trace = SyntheticTraceGenerator(
            mpki=20, banks=small_system.banks, rows_per_bank=small_system.rows_per_bank, seed=1
        ).generate(500)
        simulation = Simulation(small_system, [trace, trace])
        result = simulation.run(3_000)
        assert len(result.core_ipcs) == 2
        assert all(ipc > 0 for ipc in result.core_ipcs)
        assert result.controller_stats.reads_serviced > 0

    def test_memory_intensive_core_has_lower_ipc(self, small_system):
        light = SyntheticTraceGenerator(
            mpki=2, banks=small_system.banks, rows_per_bank=small_system.rows_per_bank, seed=2
        ).generate(500)
        heavy = SyntheticTraceGenerator(
            mpki=100, banks=small_system.banks, rows_per_bank=small_system.rows_per_bank,
            row_locality=0.1, seed=3,
        ).generate(500)
        result = Simulation(small_system, [light, heavy]).run(4_000)
        assert result.core_ipcs[0] > result.core_ipcs[1]

    def test_run_workload_and_alone_ipcs(self, small_system):
        mix = make_workload_mixes(num_mixes=1, cores=2, seed=4)[0]
        shared = run_workload(small_system, mix, dram_cycles=2_000, requests_per_core=500)
        alone = run_alone_ipcs(small_system, mix, dram_cycles=2_000, requests_per_core=500)
        assert len(alone) == 2
        # Running alone can never be slower than sharing the memory system.
        for shared_ipc, alone_ipc in zip(shared.core_ipcs, alone):
            assert alone_ipc >= shared_ipc * 0.95

    def test_invalid_runs_rejected(self, small_system):
        with pytest.raises(ValueError):
            Simulation(small_system, [])
        trace = [TraceRecord(1, 0, 0, 0, False)]
        with pytest.raises(ValueError):
            Simulation(small_system, [trace]).run(0)
        with pytest.raises(ValueError):
            SimpleCore(0, [], small_system, MemoryController(small_system))
