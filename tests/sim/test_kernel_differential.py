"""Kernel-vs-oracle differential suite (hypothesis).

Random trace soups over random system geometries and mechanism draws run
through all three execution paths -- the sim-major batch kernel
(:class:`repro.sim.batch.SimulationBatch` with ``backend="kernel"``), the
event-driven fast path, and the ``step_mode="cycle"`` oracle -- asserting
bit-identical statistics across the three.  A separate adversarial class
drives refresh-boundary and tFAW-pressure schedules: request bursts timed
at ``n * tREFI`` edges (with a fast-refresh timing variant so runs cross
many boundaries), runs that end exactly on / one before / one after a
boundary, and zero-bubble round-robin activate storms.

The kernel variant degrades to the event path under
``REPRO_SIM_KERNEL=off`` (the CI fallback leg), so this suite then pins
the fallback instead of vacuously passing.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mitigations.base import MitigationConfig
from repro.mitigations.registry import available_mechanisms, build_mechanism
from repro.sim.batch import SimulationBatch
from repro.sim.config import SystemConfig
from repro.sim.system import Simulation
from repro.sim.timing import DramTimings
from repro.sim.trace import TraceRecord

#: Fast-refresh timings: boundaries every 500 cycles instead of 9360, so a
#: short differential run crosses many refresh windows.
FAST_REFRESH = dataclasses.replace(DramTimings(), trefi=500, trfc=60)

MECHANISMS = available_mechanisms()


def fingerprint(result):
    return (
        result.dram_cycles,
        tuple(result.core_ipcs),
        dataclasses.astuple(result.controller_stats),
        tuple(dataclasses.astuple(stats) for stats in result.core_stats),
        result.mitigation_busy_cycles,
        result.demand_busy_cycles,
        result.mitigation_name,
    )


def build_mitigation(config, mechanism_name, hcfirst, seed):
    if mechanism_name is None:
        return None
    return build_mechanism(
        mechanism_name,
        MitigationConfig(
            hcfirst=hcfirst,
            banks=config.banks,
            rows_per_bank=config.rows_per_bank,
            timings=config.timings,
            seed=seed,
        ),
    )


def assert_all_modes_identical(config, trace_sets, mechanism_name, hcfirst, seed, cycles):
    """One batch through the kernel vs per-simulation event and cycle runs."""
    mitigations = [
        build_mitigation(config, mechanism_name, hcfirst, seed) for _ in trace_sets
    ]
    batch = SimulationBatch(config, trace_sets, mitigations=mitigations, backend="kernel")
    kernel_fps = [fingerprint(result) for result in batch.run(cycles)]
    for mode in ("event", "cycle"):
        for traces, kernel_fp in zip(trace_sets, kernel_fps):
            simulation = Simulation(
                config,
                traces,
                mitigation=build_mitigation(config, mechanism_name, hcfirst, seed),
                step_mode=mode,
            )
            assert fingerprint(simulation.run(cycles)) == kernel_fp, mode


@st.composite
def system_and_soup(draw):
    """A random small system plus one random trace soup per core."""
    banks = draw(st.sampled_from([2, 4, 8]))
    rows = draw(st.sampled_from([64, 128, 256]))
    config = SystemConfig(
        cores=draw(st.integers(1, 3)),
        cpu_freq_ghz=draw(st.sampled_from([0.5, 1.7, 4.0])),
        banks=banks,
        rows_per_bank=rows,
        columns_per_row=32,
        read_queue_depth=draw(st.sampled_from([4, 8, 16])),
        write_queue_depth=draw(st.sampled_from([4, 8, 16])),
        instruction_window=draw(st.sampled_from([8, 32, 128])),
    )
    record = st.builds(
        TraceRecord,
        bubble_instructions=st.integers(0, 40),
        bank=st.integers(0, banks - 1),
        row=st.integers(0, rows - 1),
        column=st.integers(0, 31),
        is_write=st.booleans(),
    )
    traces = [
        draw(st.lists(record, min_size=5, max_size=40)) for _ in range(config.cores)
    ]
    mechanism = draw(st.sampled_from([None] + MECHANISMS))
    hcfirst = draw(st.sampled_from([8, 200, 2_000]))
    seed = draw(st.integers(0, 2**16))
    return config, traces, mechanism, hcfirst, seed


class TestRandomSoups:
    @settings(max_examples=25, deadline=None)
    @given(system_and_soup())
    def test_random_soup_all_modes_identical(self, drawn):
        config, traces, mechanism, hcfirst, seed = drawn
        assert_all_modes_identical(config, [traces], mechanism, hcfirst, seed, 2_000)

    @settings(max_examples=10, deadline=None)
    @given(system_and_soup(), st.integers(2, 4))
    def test_random_soup_batched_sims_identical(self, drawn, copies):
        """Several simulations of one soup in one batch (rotated traces so
        the lockstep simulations genuinely diverge)."""
        config, traces, mechanism, hcfirst, seed = drawn
        trace_sets = [
            [trace[shift:] + trace[:shift] for trace in traces]
            for shift in range(copies)
        ]
        assert_all_modes_identical(config, trace_sets, mechanism, hcfirst, seed, 1_500)


def burst_trace(banks, rows, start_bubbles, burst_len, stride=1):
    """A quiet lead-in then a zero-bubble burst (refresh/tFAW pressure)."""
    records = [
        TraceRecord(
            bubble_instructions=start_bubbles,
            bank=0,
            row=1,
            column=0,
            is_write=False,
        )
    ]
    for index in range(burst_len):
        records.append(
            TraceRecord(
                bubble_instructions=0,
                bank=(index * stride) % banks,
                row=(index * 7) % rows,
                column=index % 32,
                is_write=index % 5 == 4,
            )
        )
    return records


class TestAdversarialBoundaries:
    """Schedules aimed at refresh-window and tFAW edges."""

    CONFIG = SystemConfig(
        cores=2,
        banks=4,
        rows_per_bank=128,
        columns_per_row=32,
        read_queue_depth=8,
        write_queue_depth=8,
        timings=FAST_REFRESH,
    )

    @settings(max_examples=20, deadline=None)
    @given(
        offset=st.integers(-30, 30),
        boundary=st.integers(1, 4),
        mechanism=st.sampled_from([None, "PARA", "TWiCe", "IncreasedRefresh"]),
    )
    def test_burst_at_refresh_boundary(self, offset, boundary, mechanism):
        """A zero-bubble burst landing around ``n * tREFI + offset``."""
        config = self.CONFIG
        trefi = config.timings.trefi
        ratio = config.cpu_cycles_per_dram_cycle
        # Lead-in bubbles that put the burst's arrival near the boundary.
        lead = max(0, int((boundary * trefi + offset) * ratio) * config.issue_width)
        traces = [
            burst_trace(config.banks, config.rows_per_bank, lead, 40, stride=1),
            burst_trace(config.banks, config.rows_per_bank, lead, 40, stride=3),
        ]
        assert_all_modes_identical(config, [traces], mechanism, 200, 0, 3 * trefi)

    @settings(max_examples=12, deadline=None)
    @given(end_offset=st.integers(-2, 2), boundary=st.integers(1, 3))
    def test_run_ends_at_refresh_boundary(self, end_offset, boundary):
        """Runs ending exactly on / just around a refresh boundary."""
        config = self.CONFIG
        cycles = boundary * config.timings.trefi + end_offset
        traces = [
            burst_trace(config.banks, config.rows_per_bank, 0, 60, stride=1),
            burst_trace(config.banks, config.rows_per_bank, 200, 60, stride=2),
        ]
        assert_all_modes_identical(config, [traces], "PARA", 64, 1, cycles)

    def test_tfaw_activate_storm(self):
        """Zero-bubble round-robin over all banks with no row reuse: every
        issue is an activate, so rank tRRD/tFAW admission gates the run."""
        config = self.CONFIG
        traces = [
            [
                TraceRecord(
                    bubble_instructions=0,
                    bank=index % config.banks,
                    row=(index * 11) % config.rows_per_bank,
                    column=0,
                    is_write=False,
                )
                for index in range(150)
            ]
            for _ in range(2)
        ]
        assert_all_modes_identical(config, [traces], None, 2_000, 0, 2_500)
