"""Unit tests for the event-horizon API of the event-driven fast path.

``BankState``, ``RankState``, ``MemoryController`` and ``SimpleCore`` each
expose a ``next_event_cycle`` horizon; the simulation loop jumps the clock
to the minimum.  A horizon that undershoots merely costs a wasted wake-up; a
horizon that overshoots would skip an event and corrupt results, so these
tests pin the exact values for known component states.
"""

import pytest

from repro.sim.bank import BankState, RankState
from repro.sim.config import SystemConfig
from repro.sim.controller import MemoryController
from repro.sim.core import NEVER, SimpleCore
from repro.sim.requests import MemoryRequest, RequestType
from repro.sim.timing import DDR4_2400
from repro.sim.trace import TraceRecord


@pytest.fixture
def system() -> SystemConfig:
    return SystemConfig(cores=2, banks=4, rows_per_bank=256, read_queue_depth=8, write_queue_depth=8)


def read_request(bank, row):
    return MemoryRequest(request_type=RequestType.READ, bank=bank, row=row)


class TestBankHorizon:
    def test_closed_bank_horizon_is_activate_timer(self):
        bank = BankState(DDR4_2400)
        bank.activate(0, 5)
        bank.precharge(DDR4_2400.tras)
        assert bank.open_row is None
        assert bank.next_event_cycle() == bank.next_activate

    def test_open_bank_horizon_is_earliest_command(self):
        bank = BankState(DDR4_2400)
        bank.activate(0, 5)
        expected = min(bank.next_precharge, bank.next_read, bank.next_write)
        assert bank.next_event_cycle() == expected
        # Directly after ACT the column timers (tRCD) expire before tRAS.
        assert bank.next_event_cycle() == DDR4_2400.trcd

    def test_rank_next_activate_includes_tfaw(self):
        rank = RankState(DDR4_2400)
        for cycle in (0, 6, 12, 18):  # tRRD_L apart, all inside the tFAW window
            assert rank.can_activate(cycle)
            rank.record_activate(cycle)
        # Four activates in the window: the fifth waits for the oldest to age out.
        assert rank.next_activate_cycle() == 0 + DDR4_2400.tfaw
        assert not rank.can_activate(DDR4_2400.tfaw - 1)
        assert rank.can_activate(DDR4_2400.tfaw)

    def test_rank_data_bus_ready_cycle(self):
        rank = RankState(DDR4_2400)
        rank.occupy_data_bus(100)
        ready = rank.data_bus_ready_cycle()
        assert not rank.can_use_data_bus(ready - 1)
        assert rank.can_use_data_bus(ready)


class TestControllerHorizon:
    def test_idle_controller_horizon_is_next_refresh(self, system):
        controller = MemoryController(system)
        assert controller.next_event_cycle(0) == system.timings.trefi

    def test_queued_request_bounds_horizon(self, system):
        controller = MemoryController(system)
        controller.enqueue(read_request(0, 5), cycle=0)
        # A fresh bank can activate immediately: the horizon is the next cycle.
        assert controller.next_event_cycle(0) == 1

    def test_pending_completion_bounds_horizon(self, system):
        controller = MemoryController(system)
        controller.enqueue(read_request(0, 5), cycle=0)
        cycle = 0
        while not controller._pending_completions:
            controller.tick(cycle)
            cycle += 1
        done_cycle = controller._pending_completions[0][0]
        assert controller.earliest_completion_cycle == done_cycle
        assert controller.next_event_cycle(cycle) <= done_cycle

    def test_quiescent_tick_returns_valid_horizon(self, system):
        """The fused tick's horizon byproduct must match the standalone oracle
        and the next actual event."""
        controller = MemoryController(system)
        controller.enqueue(read_request(0, 5), cycle=0)
        cycle = 0
        checked = 0
        while cycle < 600:
            horizon = controller.tick(cycle)
            if horizon is None:
                cycle += 1
                continue
            # The byproduct agrees with the standalone computation...
            assert horizon == controller.next_event_cycle(cycle)
            # ...and jumping to it hits an event or a legal no-op boundary:
            # no cycle strictly between may contain an event, which the
            # reference scheduler would expose as a state change.
            assert horizon > cycle
            checked += 1
            cycle = horizon
        assert checked > 0

    def test_never_overshoots_an_issue(self, system):
        """Ticking at the horizon must find work if the quiescent scan
        promised it (otherwise events would starve)."""
        controller = MemoryController(system)
        for row in (5, 9, 5, 13):
            controller.enqueue(read_request(0, row), cycle=0)
        cycle = 0
        while cycle < 2_000 and controller.stats.reads_serviced < 4:
            horizon = controller.tick(cycle)
            cycle = cycle + 1 if horizon is None else horizon
        assert controller.stats.reads_serviced == 4


class TestCoreHorizon:
    def make_core(self, system, records, controller=None):
        controller = controller or MemoryController(system)
        return SimpleCore(0, records, system, controller), controller

    def test_bubble_rich_core_reports_safe_span(self, system):
        records = [TraceRecord(10_000, 0, 1, 0, False)]
        core, _controller = self.make_core(system, records)
        horizon = core.next_event_cycle(0)
        safe_ticks = 10_000 // system.issue_width
        assert horizon == 1 + safe_ticks // core._max_ticks_per_cycle
        assert horizon > 1

    def test_issuing_core_reports_next_cycle(self, system):
        records = [TraceRecord(0, 0, 1, 0, False)]
        core, _controller = self.make_core(system, records)
        assert core.next_event_cycle(0) == 1

    def test_queue_blocked_core_reports_never(self, system):
        records = [TraceRecord(0, 0, 1, 0, False)]
        core, controller = self.make_core(system, records)
        for index in range(system.read_queue_depth):
            controller.enqueue(read_request(0, index), cycle=0)
        assert core.next_event_cycle(0) == NEVER

    def test_blocked_core_with_leftover_bubbles_reports_never(self, system):
        """Bubble retirement never touches the controller, so a blocked
        record makes the whole core quiescent even mid-bubble."""
        records = [TraceRecord(7, 0, 1, 0, False)]
        core, controller = self.make_core(system, records)
        for index in range(system.read_queue_depth):
            controller.enqueue(read_request(0, index), cycle=0)
        assert core._bubbles_remaining > 0
        assert core.next_event_cycle(0) == NEVER

    def test_fast_tick_declines_interacting_core(self, system):
        """A core that would reach an issuable memory request must be ticked
        exactly (fast_tick returns None and applies nothing)."""
        records = [TraceRecord(3, 0, 1, 0, False)]
        core, _controller = self.make_core(system, records)
        assert core.fast_tick(3) is None
        assert core.stats.cpu_cycles == 0

    def test_fast_tick_bubble_equivalence(self, system):
        records = [TraceRecord(100, 0, 1, 0, False)]
        batched, _c1 = self.make_core(system, records)
        exact, _c2 = self.make_core(system, records)
        assert batched.fast_tick(3) == "bubble"
        for _ in range(3):
            exact.tick(0)
        assert batched.stats == exact.stats
        assert batched._bubbles_remaining == exact._bubbles_remaining

    def test_fast_tick_stall_and_drain_equivalence(self, system):
        for bubbles in (0, 7):
            records = [TraceRecord(bubbles, 0, 1, 0, False)]
            batched, controller_a = self.make_core(system, records)
            exact, controller_b = self.make_core(system, records)
            for controller in (controller_a, controller_b):
                for index in range(system.read_queue_depth):
                    controller.enqueue(read_request(0, index), cycle=0)
            ticks = 4
            mode = batched.fast_tick(ticks)
            assert mode == ("drain" if bubbles else "stall")
            for _ in range(ticks):
                exact.tick(0)
            assert batched.stats == exact.stats
            assert batched._bubbles_remaining == exact._bubbles_remaining


class TestMitigationTimerHook:
    def test_autonomous_timer_bounds_horizon(self, system):
        """A mechanism with its own timer must cap the controller horizon."""
        from repro.mitigations.base import MitigationConfig, MitigationMechanism

        class TimerMechanism(MitigationMechanism):
            name = "timer"

            def on_activate(self, bank, row, cycle):
                return []

            def next_event_cycle(self, cycle):
                return cycle + 17

        mechanism = TimerMechanism(
            MitigationConfig(hcfirst=1_000, banks=system.banks, rows_per_bank=system.rows_per_bank)
        )
        controller = MemoryController(system, mitigation=mechanism)
        assert controller.next_event_cycle(0) == 17
        horizon = controller.tick(0)
        assert horizon == 17

    def test_default_mechanisms_have_no_autonomous_timer(self, system):
        from repro.mitigations.base import MitigationConfig
        from repro.mitigations.registry import available_mechanisms, build_mechanism

        for name in available_mechanisms():
            mechanism = build_mechanism(
                name,
                MitigationConfig(
                    hcfirst=50_000, banks=system.banks, rows_per_bank=system.rows_per_bank
                ),
            )
            assert mechanism.next_event_cycle(123) is None
