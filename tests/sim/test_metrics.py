"""Unit tests for the Section 6.2.1 performance metrics."""

import pytest

from repro.sim.metrics import (
    average,
    bandwidth_overhead_percent,
    normalized_performance,
    weighted_speedup,
)


class TestWeightedSpeedup:
    def test_equal_ipcs_sum_to_core_count(self):
        assert weighted_speedup([2.0, 2.0, 2.0], [2.0, 2.0, 2.0]) == 3.0

    def test_halved_shared_ipcs(self):
        assert weighted_speedup([1.0, 1.0], [2.0, 2.0]) == 1.0

    def test_per_core_ratios_accumulate(self):
        # 0.5 + 0.25 -- each core contributes its own slowdown ratio.
        assert weighted_speedup([1.0, 0.5], [2.0, 2.0]) == 0.75

    def test_zero_shared_ipc_is_allowed(self):
        # A fully stalled core contributes zero, not an error.
        assert weighted_speedup([0.0, 1.0], [1.0, 1.0]) == 1.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([], [])

    def test_nonpositive_alone_ipc_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [0.0])


class TestNormalizedPerformance:
    def test_baseline_is_100_percent(self):
        assert normalized_performance(1.5, 1.5) == 100.0

    def test_scales_linearly(self):
        assert normalized_performance(0.75, 1.5) == 50.0
        assert normalized_performance(3.0, 1.5) == 200.0

    def test_nonpositive_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalized_performance(1.0, 0.0)


class TestBandwidthOverhead:
    def test_percent_of_demand_busy_time(self):
        assert bandwidth_overhead_percent(50.0, 100.0) == 50.0

    def test_can_exceed_100_percent(self):
        # Figure 10a: aggressive mechanisms far exceed demand bank-time.
        assert bandwidth_overhead_percent(300.0, 100.0) == 300.0

    def test_idle_system_reports_zero(self):
        assert bandwidth_overhead_percent(10.0, 0.0) == 0.0
        assert bandwidth_overhead_percent(0.0, 0.0) == 0.0


class TestAverage:
    def test_mean(self):
        assert average([1.0, 2.0, 3.0]) == 2.0

    def test_single_value(self):
        assert average([4.5]) == 4.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average([])
