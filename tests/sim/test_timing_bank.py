"""Tests for DRAM timing parameters and the bank/rank state machines."""

import pytest

from repro.sim.bank import BankState, RankState
from repro.sim.timing import DDR4_2400, DramTimings


class TestTimings:
    def test_ddr4_2400_sanity(self):
        assert DDR4_2400.trc_ns == pytest.approx(45.8, abs=1.0)
        assert DDR4_2400.trefi > DDR4_2400.trfc
        assert DDR4_2400.refreshes_per_window == pytest.approx(8205, abs=50)

    def test_invalid_timings_rejected(self):
        with pytest.raises(ValueError):
            DramTimings(trc=10)
        with pytest.raises(ValueError):
            DramTimings(trefi=100, trfc=420)

    def test_scaled_refresh(self):
        scaled = DDR4_2400.scaled_refresh(0.5)
        assert scaled.trefi == DDR4_2400.trefi // 2
        assert scaled.refresh_window_ms == pytest.approx(32.0)
        with pytest.raises(ValueError):
            DDR4_2400.scaled_refresh(0.0)

    def test_scaled_refresh_clamps_to_trfc(self):
        scaled = DDR4_2400.scaled_refresh(1e-6)
        assert scaled.trefi > scaled.trfc


class TestBankState:
    def test_activate_then_access_then_precharge_timing(self):
        bank = BankState(DDR4_2400)
        assert bank.can_activate(0)
        bank.activate(0, row=7)
        assert bank.open_row == 7
        assert not bank.can_column_access(0, is_write=False)
        assert bank.can_column_access(DDR4_2400.trcd, is_write=False)
        assert not bank.can_precharge(DDR4_2400.trcd)
        assert bank.can_precharge(DDR4_2400.tras)
        bank.precharge(DDR4_2400.tras)
        assert bank.open_row is None
        assert not bank.can_activate(DDR4_2400.tras + 1)
        assert bank.can_activate(DDR4_2400.trc)

    def test_cannot_activate_open_bank(self):
        bank = BankState(DDR4_2400)
        bank.activate(0, row=3)
        assert not bank.can_activate(DDR4_2400.trc + 10)

    def test_column_access_returns_data_completion(self):
        bank = BankState(DDR4_2400)
        bank.activate(0, 1)
        done = bank.column_access(DDR4_2400.trcd, is_write=False)
        assert done == DDR4_2400.trcd + DDR4_2400.tcl + DDR4_2400.burst_cycles

    def test_block_until_closes_row(self):
        bank = BankState(DDR4_2400)
        bank.activate(0, 1)
        bank.block_until(500)
        assert bank.open_row is None
        assert not bank.can_activate(499)
        assert bank.can_activate(500)


class TestRankState:
    def test_tfaw_limits_to_four_activates(self):
        rank = RankState(DDR4_2400)
        cycle = 0
        for _ in range(4):
            assert rank.can_activate(cycle)
            rank.record_activate(cycle)
            cycle += DDR4_2400.trrd_l
        assert not rank.can_activate(cycle)
        assert rank.can_activate(DDR4_2400.tfaw + 1)

    def test_trrd_spacing(self):
        rank = RankState(DDR4_2400)
        rank.record_activate(0)
        assert not rank.can_activate(DDR4_2400.trrd_l - 1)
        assert rank.can_activate(DDR4_2400.trrd_l)

    def test_data_bus_occupancy(self):
        rank = RankState(DDR4_2400)
        assert rank.can_use_data_bus(0)
        rank.occupy_data_bus(0)
        assert not rank.can_use_data_bus(1)
        assert rank.can_use_data_bus(DDR4_2400.burst_cycles)
