"""Integration tests across the characterization and mitigation pipelines."""

import numpy as np
import pytest

from repro.analysis.figures import build_figure8_hcfirst_distribution
from repro.analysis.tables import build_table2_rowhammerable, build_table4_min_hcfirst
from repro.core.first_flip import find_hcfirst, population_hcfirst
from repro.dram.geometry import ChipGeometry
from repro.dram.population import make_chip, make_population
from repro.mitigations.base import MitigationConfig
from repro.mitigations.registry import build_mechanism
from repro.sim.config import SystemConfig
from repro.sim.requests import MemoryRequest, RequestType
from repro.sim.controller import MemoryController
from repro.sim.trace import AggressorTraceGenerator
from repro.sim.system import Simulation

GEOMETRY = ChipGeometry(banks=1, rows_per_bank=40, row_bytes=32)


class TestCharacterizationPipeline:
    def test_population_hcfirst_ordering_across_generations(self):
        # Newer LPDDR4 chips must measure as more vulnerable than older DDR4
        # chips of the same manufacturer, reproducing Observation 10 end to
        # end (population generation -> hammering -> HC_first search ->
        # table aggregation).
        population = make_population(
            chips_per_config=2,
            seed=42,
            geometry=GEOMETRY,
            configurations=[("DDR4-old", "A"), ("DDR4-new", "A"), ("LPDDR4-1y", "A")],
        )
        results = []
        for chips in population.values():
            results.extend(population_hcfirst(chips))
        table = build_table4_min_hcfirst(results)
        ddr4_old = table["DDR4-old"]["A"]
        ddr4_new = table["DDR4-new"]["A"]
        lpddr4_1y = table["LPDDR4-1y"]["A"]
        assert lpddr4_1y < ddr4_new < ddr4_old

    def test_ddr3_old_mostly_not_rowhammerable(self):
        chips = [
            make_chip("DDR3-old", "C", seed=seed, geometry=GEOMETRY) for seed in range(3)
        ]
        results = population_hcfirst(chips)
        table = build_table2_rowhammerable(results)
        hammerable, total = table["DDR3-old"]["C"]
        assert total == 3
        assert hammerable == 0

    def test_figure8_distribution_from_population(self):
        chips = [
            make_chip("LPDDR4-1y", "A", seed=seed, geometry=GEOMETRY) for seed in range(3)
        ]
        results = population_hcfirst(chips)
        figure = build_figure8_hcfirst_distribution(results)
        stats = figure[("LPDDR4-1y", "A")]
        assert stats is not None
        assert stats.minimum >= 4_000  # population minimum is near the 4.8k target


class TestMitigationProtectsAgainstAttack:
    """End-to-end: an attacker trace on the simulator drives real victim
    refreshes through the mitigation, and the resulting activation pattern is
    replayed against the chip model to check for bit flips."""

    def _attack_activation_counts(self, mechanism_name, hcfirst, dram_cycles=6_000):
        # A real RowHammer attacker uses dependent (serialized) accesses so
        # the memory controller cannot coalesce them into row hits; an
        # instruction window of one read models that access pattern.
        config = SystemConfig(cores=1, banks=4, rows_per_bank=256, instruction_window=1)
        trace = AggressorTraceGenerator(
            target_bank=0, victim_row=100, banks=4, rows_per_bank=256, seed=1
        ).generate(4_000)
        mitigation = None
        if mechanism_name is not None:
            mitigation = build_mechanism(
                mechanism_name,
                MitigationConfig(
                    hcfirst=hcfirst, banks=4, rows_per_bank=256, seed=7, time_scale=1.0
                ),
            )
        simulation = Simulation(config, [trace], mitigation=mitigation)
        result = simulation.run(dram_cycles)
        controller = simulation.controller
        return result, controller

    def test_attacker_generates_activations_to_aggressor_rows(self):
        result, controller = self._attack_activation_counts(None, hcfirst=64)
        assert controller.stats.demand_activates > 100

    def test_ideal_mechanism_refreshes_victim_under_attack(self):
        result, controller = self._attack_activation_counts("Ideal", hcfirst=64)
        assert controller.stats.mitigation_refreshes > 0
        # The victim row (100) must be among the refreshed rows.
        assert result.mitigation_busy_cycles > 0

    def test_para_refreshes_scale_with_vulnerability(self):
        _result_weak, controller_weak = self._attack_activation_counts("PARA", hcfirst=50_000)
        _result_strong, controller_strong = self._attack_activation_counts("PARA", hcfirst=64)
        assert (
            controller_strong.stats.mitigation_refreshes
            >= controller_weak.stats.mitigation_refreshes
        )


class TestControllerChipCoSimulation:
    def test_victim_refresh_requests_target_adjacent_rows(self):
        config = SystemConfig(cores=1, banks=2, rows_per_bank=128)
        mechanism = build_mechanism(
            "PARA", MitigationConfig(hcfirst=64, banks=2, rows_per_bank=128, seed=3)
        )
        mechanism.probability = 1.0
        controller = MemoryController(config, mitigation=mechanism)
        refreshed = []
        original = controller._enqueue_victim_refresh

        def record(bank, row, cycle):
            refreshed.append((bank, row))
            original(bank, row, cycle)

        controller._enqueue_victim_refresh = record
        request = MemoryRequest(request_type=RequestType.READ, bank=0, row=50)
        controller.enqueue(request, 0)
        for cycle in range(300):
            controller.tick(cycle)
        assert refreshed
        assert all(row in (49, 51) for _bank, row in refreshed)
