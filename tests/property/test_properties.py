"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.search import minimal_hammer_count
from repro.dram.geometry import ChipGeometry
from repro.dram.population import make_chip
from repro.ecc.hamming import HammingCode
from repro.ecc.secded import SecDedCode
from repro.mitigations.base import MitigationConfig
from repro.mitigations.ideal import IdealRefresh
from repro.utils.bitops import bits_to_bytes, bytes_to_bits
from repro.utils.stats import box_stats

GEOMETRY = ChipGeometry(banks=1, rows_per_bank=32, row_bytes=32)


class TestBitopsProperties:
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=64))
    def test_bytes_bits_round_trip(self, values):
        data = np.array(values, dtype=np.uint8)
        assert np.array_equal(bits_to_bytes(bytes_to_bits(data)), data)


class TestBoxStatsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=60))
    def test_ordering_invariants(self, values):
        stats = box_stats(values)
        assert stats.minimum <= stats.first_quartile <= stats.median
        assert stats.median <= stats.third_quartile <= stats.maximum
        assert stats.lower_whisker >= stats.minimum
        assert stats.upper_whisker <= stats.maximum
        assert stats.count == len(values)


class TestHammingProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        data=st.lists(st.integers(0, 1), min_size=32, max_size=32),
        error_position=st.integers(min_value=0, max_value=37),
    )
    def test_single_error_always_corrected(self, data, error_position):
        code = HammingCode(32)
        word = np.array(data, dtype=np.uint8)
        codeword = code.encode(word)
        corrupted = codeword.copy()
        corrupted[error_position % code.codeword_bits] ^= 1
        result = code.decode(corrupted)
        assert np.array_equal(result.data, word)

    @settings(max_examples=30, deadline=None)
    @given(data=st.lists(st.integers(0, 1), min_size=16, max_size=16))
    def test_secded_round_trip(self, data):
        code = SecDedCode(16)
        word = np.array(data, dtype=np.uint8)
        result = code.decode(code.encode(word))
        assert np.array_equal(result.data, word)
        assert not result.uncorrectable


class TestSearchProperties:
    @settings(max_examples=40, deadline=None)
    @given(threshold=st.integers(min_value=1, max_value=150_000))
    def test_minimal_hammer_count_brackets_threshold(self, threshold):
        found = minimal_hammer_count(lambda hc: hc >= threshold, hc_max=150_000)
        assert found is not None
        assert found >= threshold
        assert found <= max(threshold + 1, int(threshold * 1.05))


class TestChipProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=50),
        fill=st.integers(min_value=0, max_value=255),
        row=st.integers(min_value=0, max_value=31),
    )
    def test_write_read_round_trip_without_hammering(self, seed, fill, row):
        chip = make_chip("DDR4-new", "A", seed=seed, geometry=GEOMETRY)
        chip.write_row(0, row, fill)
        assert np.all(chip.read_row(0, row) == fill)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_hammering_never_flips_aggressor_rows(self, seed):
        chip = make_chip("DDR4-new", "A", seed=seed, geometry=GEOMETRY, hcfirst_target=10_000)
        victim = chip.weakest_cell[1]
        for offset in range(-3, 4):
            chip.write_row(0, victim + offset, 0x00 if offset % 2 == 0 else 0xFF)
        chip.hammer_pair(0, victim - 1, victim + 1, 150_000)
        assert np.all(chip.read_row(0, victim - 1) == 0xFF)
        assert np.all(chip.read_row(0, victim + 1) == 0xFF)


class TestMitigationProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        hcfirst=st.integers(min_value=2, max_value=1_000),
        activations=st.integers(min_value=0, max_value=3_000),
    )
    def test_ideal_mechanism_never_lets_counter_exceed_hcfirst(self, hcfirst, activations):
        config = MitigationConfig(hcfirst=hcfirst, banks=1, rows_per_bank=64)
        mechanism = IdealRefresh(config)
        refreshes = 0
        for cycle in range(activations):
            victims = mechanism.on_activate(0, 10, cycle)
            refreshes += len(victims)
        # Each victim (rows 9 and 11) must be refreshed exactly
        # floor(activations / (hcfirst - 1)) times -- never fewer (safety)
        # and never more (minimality of the ideal mechanism).
        expected = activations // max(1, hcfirst - 1)
        assert refreshes == 2 * expected
