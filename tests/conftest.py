"""Shared fixtures for the test suite.

Chips used in tests are deliberately small so exhaustive studies finish in
milliseconds; the vulnerability model calibrates itself to the simulated
cell count, so the behaviour under test is the same as for larger chips.
"""

from __future__ import annotations

import pytest

from repro.dram.geometry import ChipGeometry
from repro.dram.population import make_chip
from repro.sim.config import SystemConfig


@pytest.fixture
def small_geometry() -> ChipGeometry:
    """A small chip geometry used throughout the tests."""
    return ChipGeometry(banks=1, rows_per_bank=48, row_bytes=32)


@pytest.fixture
def ddr4_chip(small_geometry):
    """A vulnerable DDR4-new chip (no on-die ECC)."""
    return make_chip("DDR4-new", "A", seed=11, geometry=small_geometry)


@pytest.fixture
def lpddr4_chip(small_geometry):
    """A vulnerable LPDDR4-1y chip (with on-die ECC)."""
    return make_chip("LPDDR4-1y", "A", seed=7, geometry=small_geometry)


@pytest.fixture
def paired_chip(small_geometry):
    """A manufacturer-B LPDDR4-1x chip using the paired-wordline remapping."""
    return make_chip("LPDDR4-1x", "B", seed=5, geometry=small_geometry)


@pytest.fixture
def robust_chip(small_geometry):
    """A chip whose weakest cell is far above the test limit."""
    return make_chip("DDR4-new", "A", seed=3, geometry=small_geometry, hcfirst_target=500_000)


@pytest.fixture
def small_system() -> SystemConfig:
    """A reduced system configuration for fast simulator tests."""
    return SystemConfig(cores=2, banks=4, rows_per_bank=256, read_queue_depth=16, write_queue_depth=16)
