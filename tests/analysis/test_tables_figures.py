"""Tests for the table/figure builders and text reports."""

import pytest

from repro.analysis.figures import (
    build_figure4_coverage,
    build_figure5_hc_sweep,
    build_figure6_spatial,
    build_figure7_word_density,
    build_figure8_hcfirst_distribution,
    build_figure9_ecc,
)
from repro.analysis.report import format_table, render_nested_series, render_series
from repro.analysis.tables import (
    PAPER_TABLE4_MIN_HCFIRST_K,
    build_table1_population,
    build_table2_rowhammerable,
    build_table3_worst_patterns,
    build_table4_min_hcfirst,
    build_table5_monotonicity,
)
from repro.core.first_flip import HCFirstResult
from repro.core.results import (
    CoverageResult,
    EccWordAnalysis,
    ProbabilityResult,
    SpatialResult,
    SweepPoint,
    SweepResult,
    WordDensityResult,
)


def _hcfirst(type_node, manufacturer, value, chip_id="c"):
    return HCFirstResult(
        chip_id=chip_id,
        type_node=type_node,
        manufacturer=manufacturer,
        hcfirst=value,
        victim_row=1 if value else None,
        hammer_limit=150_000,
        data_pattern="RowStripe0",
    )


class TestTables:
    def test_table1_matches_paper(self):
        table = build_table1_population()
        assert table["DDR4-new"]["A"] == (264, 43)
        assert table["LPDDR4-1y"]["C"] == (144, 36)

    def test_table2_fractions(self):
        results = [
            _hcfirst("DDR3-old", "A", 100_000),
            _hcfirst("DDR3-old", "A", None),
            _hcfirst("DDR3-new", "B", 30_000),
            _hcfirst("DDR4-new", "A", 20_000),  # not a DDR3 row
        ]
        table = build_table2_rowhammerable(results)
        assert table["DDR3-old"]["A"] == (1, 2)
        assert table["DDR3-new"]["B"] == (1, 1)
        assert "DDR4-new" not in table

    def test_table3_votes_majority(self):
        def coverage(winner):
            return CoverageResult(
                chip_id="c",
                type_node="DDR4-new",
                manufacturer="A",
                hammer_count=150_000,
                unique_flips_total=100,
                coverage_by_pattern={winner: 0.9, "Solid0": 0.1},
            )

        table = build_table3_worst_patterns(
            [coverage("RowStripe0"), coverage("RowStripe0"), coverage("Checkered1")]
        )
        assert table["DDR4-new"]["A"] == "RowStripe0"

    def test_table3_skips_chips_without_enough_flips(self):
        sparse = CoverageResult(
            chip_id="c", type_node="DDR3-new", manufacturer="A",
            hammer_count=150_000, unique_flips_total=2,
            coverage_by_pattern={"Solid0": 1.0},
        )
        assert build_table3_worst_patterns([sparse]) == {}

    def test_table4_minimum_and_none(self):
        results = [
            _hcfirst("DDR4-new", "A", 12_000),
            _hcfirst("DDR4-new", "A", 18_000),
            _hcfirst("DDR3-old", "B", None),
        ]
        table = build_table4_min_hcfirst(results)
        assert table["DDR4-new"]["A"] == pytest.approx(12.0)
        assert table["DDR3-old"]["B"] is None

    def test_table4_paper_reference_shape(self):
        assert PAPER_TABLE4_MIN_HCFIRST_K["LPDDR4-1y"]["A"] == pytest.approx(4.8)

    def test_table5_average_percentage(self):
        results = [
            ProbabilityResult("c1", "DDR4-new", "A", (10, 20), 5, 100, 98),
            ProbabilityResult("c2", "DDR4-new", "A", (10, 20), 5, 100, 100),
        ]
        table = build_table5_monotonicity(results)
        assert table["DDR4-new"]["A"] == pytest.approx(99.0)


class TestFigures:
    def test_figure4_averages_percentages(self):
        results = [
            CoverageResult("c1", "DDR4-new", "A", 150_000, 10, {"RowStripe0": 0.8}),
            CoverageResult("c2", "DDR4-new", "A", 150_000, 10, {"RowStripe0": 0.6}),
        ]
        figure = build_figure4_coverage(results)
        assert figure[("DDR4-new", "A")]["RowStripe0"] == pytest.approx(70.0)

    def test_figure5_average_rates(self):
        sweep = SweepResult(
            "c", "DDR4-new", "A", "RowStripe0",
            points=[SweepPoint(10_000, 10, 1000), SweepPoint(20_000, 100, 1000)],
        )
        figure = build_figure5_hc_sweep([sweep])
        assert figure[("DDR4-new", "A")][20_000] == pytest.approx(0.1)

    def test_figure6_and_7_aggregate(self):
        spatial = SpatialResult("c", "DDR4-new", "A", 1000, {0: 8, 2: 2})
        density = WordDensityResult("c", "DDR4-new", "A", 1000, {1: 9, 2: 1})
        fig6 = build_figure6_spatial([spatial])
        fig7 = build_figure7_word_density([density])
        assert fig6[("DDR4-new", "A")][0]["mean"] == pytest.approx(0.8)
        assert fig7[("DDR4-new", "A")][1]["mean"] == pytest.approx(0.9)

    def test_figure8_box_stats_and_none(self):
        results = [
            _hcfirst("DDR4-new", "A", 10_000),
            _hcfirst("DDR4-new", "A", 30_000),
            _hcfirst("DDR3-old", "B", None),
        ]
        figure = build_figure8_hcfirst_distribution(results)
        assert figure[("DDR4-new", "A")].minimum == 10_000
        assert figure[("DDR3-old", "B")] is None

    def test_figure9_multipliers(self):
        analysis = EccWordAnalysis(
            "c", "DDR4-new", "A", 64, {1: 10_000, 2: 25_000, 3: 40_000}
        )
        figure = build_figure9_ecc([analysis])
        data = figure[("DDR4-new", "A")]
        assert data["hc"][2]["mean"] == pytest.approx(25_000)
        assert data["multiplier"][2]["mean"] == pytest.approx(2.5)


class TestReport:
    def test_format_table_alignment_and_none(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["b", None]])
        assert "name" in text and "N/A" in text
        assert len(text.splitlines()) == 4

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_render_series(self):
        text = render_series({64: 20.0, 128: 40.0}, label="perf", key_label="hcfirst")
        assert "hcfirst" in text and "128" in text

    def test_render_nested_series(self):
        text = render_nested_series({"PARA": {64: 20.0, 128: 40.0}})
        assert "PARA" in text and "64" in text
