"""Tests for the Figure 10 mitigation study harness."""

import pytest

from repro.analysis.mitigation_study import (
    DEFAULT_HCFIRST_SWEEP,
    run_mitigation_study,
)
from repro.sim.config import SystemConfig
from repro.sim.workloads import make_workload_mixes


@pytest.fixture(scope="module")
def small_study():
    """A reduced Figure 10 run shared across tests (seconds, not minutes)."""
    config = SystemConfig(cores=4, banks=8, rows_per_bank=1024)
    mixes = make_workload_mixes(num_mixes=2, cores=4, seed=3)
    return run_mitigation_study(
        system_config=config,
        workload_mixes=mixes,
        hcfirst_values=(50_000, 2_000, 128),
        mechanisms=("PARA", "Ideal", "TWiCe-ideal", "ProHIT"),
        dram_cycles=4_000,
        requests_per_core=1_000,
        seed=1,
    )


class TestMitigationStudy:
    def test_default_sweep_matches_paper_range(self):
        assert max(DEFAULT_HCFIRST_SWEEP) == 200_000
        assert min(DEFAULT_HCFIRST_SWEEP) == 64

    def test_points_respect_design_constraints(self, small_study):
        prohit_points = small_study.series_for("ProHIT")
        assert set(prohit_points) == {2_000}
        para_points = small_study.series_for("PARA")
        assert set(para_points) == {50_000, 2_000, 128}

    def test_performance_bounded_and_normalized(self, small_study):
        for point in small_study.points:
            assert 0.0 < point.normalized_performance_avg <= 110.0
            assert point.normalized_performance_min <= point.normalized_performance_avg
            assert point.normalized_performance_avg <= point.normalized_performance_max
            assert point.bandwidth_overhead_avg >= 0.0
            assert point.workloads_evaluated == 2

    def test_para_overhead_grows_as_hcfirst_drops(self, small_study):
        para = small_study.series_for("PARA")
        assert para[128].bandwidth_overhead_avg > para[50_000].bandwidth_overhead_avg
        assert (
            para[128].normalized_performance_avg
            <= para[50_000].normalized_performance_avg + 1e-6
        )

    def test_ideal_outperforms_para_at_low_hcfirst(self, small_study):
        para = small_study.performance_at("PARA", 128)
        ideal = small_study.performance_at("Ideal", 128)
        assert ideal >= para

    def test_serialization_and_lookup(self, small_study):
        point = small_study.points[0]
        payload = point.to_dict()
        assert payload["mechanism"] == point.mechanism
        assert small_study.performance_at("DoesNotExist", 1) is None
        assert set(small_study.mechanisms()) <= {"PARA", "Ideal", "TWiCe-ideal", "ProHIT"}
