"""Worker heartbeat fault handling (no sockets, stub streams).

A lease's heartbeat thread renews the lease while a batch executes; if it
dies the lease silently lapses mid-batch.  These tests pin the hardened
behaviour: the thread flags its own death (whatever the cause), and the
lease holder then surrenders the lease explicitly with ``lease_failed``
instead of letting the scheduler discover the expiry by TTL sweep.
"""

from __future__ import annotations

import threading
import time

from repro.service import protocol
from repro.service.worker import ServiceWorker


class StubStream:
    """Records sent messages; raises per-type exceptions on demand."""

    def __init__(self, fail_types=(), exception=OSError("broken pipe")):
        self.sent = []
        self.fail_types = set(fail_types)
        self.exception = exception
        self.lock = threading.Lock()

    def send(self, message):
        if message.get("type") in self.fail_types:
            raise self.exception
        with self.lock:
            self.sent.append(message)

    def sent_types(self):
        with self.lock:
            return [message["type"] for message in self.sent]


class TestHeartbeatLoop:
    def test_clean_stop_does_not_flag_failure(self):
        stream = StubStream()
        stop, failed = threading.Event(), threading.Event()
        thread = threading.Thread(
            target=ServiceWorker._heartbeat_loop,
            args=(stream, "lease-1", 0.01, stop, failed),
            daemon=True,
        )
        thread.start()
        time.sleep(0.08)
        stop.set()
        thread.join(timeout=2.0)
        assert not failed.is_set()
        assert stream.sent_types().count("heartbeat") >= 1

    def test_closed_stream_flags_failure(self):
        stream = StubStream(fail_types={"heartbeat"})
        stop, failed = threading.Event(), threading.Event()
        ServiceWorker._heartbeat_loop(stream, "lease-1", 0.01, stop, failed)
        assert failed.is_set()

    def test_unexpected_crash_flags_failure(self):
        stream = StubStream(fail_types={"heartbeat"}, exception=ValueError("boom"))
        stop, failed = threading.Event(), threading.Event()
        # Must not propagate: the thread logs and flags instead of dying
        # with an unraisable exception.
        ServiceWorker._heartbeat_loop(stream, "lease-1", 0.01, stop, failed)
        assert failed.is_set()


class TestLeaseSurrender:
    def make_worker(self):
        return ServiceWorker("127.0.0.1", 1, name="w-test")

    def run_lease(self, worker, stream, monkeypatch, unit_duration=0.25):
        def slow_execute(task):
            time.sleep(unit_duration)
            return {"ok": task}

        monkeypatch.setattr("repro.service.worker.execute_task", slow_execute)
        grant = {
            "lease_id": "lease-7",
            "expires_in": 0.15,  # heartbeat interval: max(0.05, 0.15/3)
            "units": [{"key": "u0", "task": protocol.pack_blob("payload")}],
        }
        worker._run_lease(stream, grant)

    def test_heartbeat_death_surrenders_lease(self, monkeypatch):
        worker = self.make_worker()
        stream = StubStream(fail_types={"heartbeat"})
        self.run_lease(worker, stream, monkeypatch)
        assert worker.heartbeat_failures == 1
        types = stream.sent_types()
        assert "unit_result" in types  # the batch itself still completed
        assert types[-1] == "lease_failed"
        surrender = stream.sent[-1]
        assert surrender["lease_id"] == "lease-7"
        assert "heartbeat" in surrender["error"]

    def test_healthy_heartbeat_does_not_surrender(self, monkeypatch):
        worker = self.make_worker()
        stream = StubStream()
        self.run_lease(worker, stream, monkeypatch)
        assert worker.heartbeat_failures == 0
        types = stream.sent_types()
        assert "lease_failed" not in types
        assert types.count("heartbeat") >= 1
        assert "unit_result" in types
