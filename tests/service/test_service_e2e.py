"""Loopback end-to-end: ServiceExecutor == SerialExecutor, bit for bit.

The acceptance contract of :mod:`repro.service`: a study submitted through
:class:`~repro.experiments.ServiceExecutor` to a loopback scheduler with
two or more workers produces payloads *bit-identical* to a local
:class:`~repro.experiments.SerialExecutor` run -- for both simulator
``step_mode``s, and including a run where one worker process is SIGKILLed
mid-sweep (its leased units are re-dispatched and re-executed exactly
once each).
"""

from __future__ import annotations

import contextlib
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.analysis.mitigation_study import MitigationStudyConfig
from repro.experiments import ExperimentSession, SerialExecutor, ServiceExecutor
from repro.service import SchedulerThread, ServiceClient, ServiceWorker
from repro.service.selftest import ServiceSelfTestConfig

TINY_FIG10 = dict(
    hcfirst_values=(2_000, 256),
    mechanisms=("PARA", "ProHIT", "Ideal"),
    num_mixes=1,
    rows_per_bank=512,
    dram_cycles=2_000,
    requests_per_core=400,
    seed=3,
)

SRC_ROOT = str(Path(repro.__file__).resolve().parents[1])


def points_of(study_payload):
    return [point.to_dict() for point in study_payload.points]


@contextlib.contextmanager
def worker_fleet(host, port, count=2, batch_size=2):
    """Run ``count`` in-process workers until the block exits."""
    stop = threading.Event()
    workers = [
        ServiceWorker(host, port, name=f"w{i}", batch_size=batch_size, stop_event=stop)
        for i in range(count)
    ]
    threads = [threading.Thread(target=w.run, daemon=True) for w in workers]
    for thread in threads:
        thread.start()
    try:
        yield workers
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)


def spawn_worker_process(host, port, name, batch_size=2):
    """Start ``python -m repro.service worker`` as a killable subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "worker",
            "--host",
            host,
            "--port",
            str(port),
            "--name",
            name,
            "--batch",
            str(batch_size),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def wait_for(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestServiceMatchesSerial:
    """Acceptance: fig10 payloads over the service == SerialExecutor."""

    @pytest.mark.parametrize("step_mode", ["event", "cycle"])
    def test_fig10_bit_identical_with_two_workers(self, step_mode):
        config = MitigationStudyConfig(step_mode=step_mode, **TINY_FIG10)
        serial = ExperimentSession(executor=SerialExecutor(), seed=3).run(
            "fig10-mitigations", config
        )
        with SchedulerThread() as scheduler:
            host, port = scheduler.address
            with worker_fleet(host, port, count=2):
                service = ExperimentSession(
                    executor=ServiceExecutor(host, port), seed=3
                ).run("fig10-mitigations", config)
            with ServiceClient(host, port) as probe:
                status = probe.status()
        assert points_of(serial.single()) == points_of(service.single())
        assert serial.single().points
        assert service.executed == serial.executed == service.units_total
        # A healthy loopback run has no recoveries; both workers connected
        # (tiny units finish so fast one worker may drain the whole queue,
        # so shared load is asserted in the slower selftest run below).
        assert service.retries == 0 and service.requeues == 0
        assert len(status["workers"]) == 2
        assert status["counters"]["units_completed"] == service.units_total

    def test_selftest_many_workers_any_batch(self):
        """Worker count and batch size are invisible in the payloads."""
        config = ServiceSelfTestConfig(units=9, rounds=200, unit_sleep_s=0.05, seed=11)
        serial = ExperimentSession(executor=SerialExecutor(), seed=2).run(
            "service-selftest", config
        )
        with SchedulerThread() as scheduler:
            host, port = scheduler.address
            with worker_fleet(host, port, count=3, batch_size=1):
                service = ExperimentSession(
                    executor=ServiceExecutor(host, port), seed=2
                ).run("service-selftest", config)
            with ServiceClient(host, port) as probe:
                status = probe.status()
        assert service.single() == serial.single()
        assert service.single().combined_digest == serial.single().combined_digest
        # Units sleep 50ms each, so the sweep genuinely spread across the
        # fleet: at least two of the three workers completed units.
        busy = [w for w in status["workers"].values() if w["units_completed"] >= 1]
        assert len(busy) >= 2


class TestWorkerKilledMidSweep:
    def test_sigkill_mid_batch_redispatches_and_stays_bit_identical(self):
        """Kill a subprocess worker holding a lease: the scheduler requeues
        exactly its incomplete units, a rescue worker re-executes them, and
        the merged payload still equals the serial run's."""
        config = ServiceSelfTestConfig(units=6, rounds=50, unit_sleep_s=0.35, seed=4)
        serial = ExperimentSession(executor=SerialExecutor(), seed=9).run(
            "service-selftest", config
        )
        with SchedulerThread(
            lease_ttl=2.0, backoff_base=0.05, backoff_cap=0.2
        ) as scheduler:
            host, port = scheduler.address
            victim = spawn_worker_process(host, port, "victim", batch_size=2)
            try:
                session = ExperimentSession(
                    executor=ServiceExecutor(host, port), seed=9
                )
                run_box = {}

                def run_study():
                    run_box["result"] = session.run("service-selftest", config)

                runner = threading.Thread(target=run_study, daemon=True)

                def victim_has_lease():
                    with ServiceClient(host, port) as probe:
                        worker = probe.status()["workers"].get("victim")
                    return worker is not None and worker["leases_granted"] >= 1

                runner.start()
                # Wait until the victim holds a lease, then catch it mid-unit
                # (each unit sleeps 0.35s, so the lease cannot be done yet).
                assert wait_for(victim_has_lease), "victim never got a lease"
                time.sleep(0.1)
                victim.send_signal(signal.SIGKILL)
                victim.wait(timeout=10.0)
                # A rescue worker finishes the study, re-dispatched units
                # included.
                stop = threading.Event()
                rescue = ServiceWorker(
                    host, port, name="rescue", batch_size=2, stop_event=stop
                )
                rescue_thread = threading.Thread(target=rescue.run, daemon=True)
                rescue_thread.start()
                runner.join(timeout=120.0)
                assert not runner.is_alive(), "service run did not finish"
                stop.set()
                rescue_thread.join(timeout=10.0)
                result = run_box["result"]
                with ServiceClient(host, port) as probe:
                    status = probe.status()
            finally:
                if victim.poll() is None:  # pragma: no cover - cleanup path
                    victim.kill()
                    victim.wait(timeout=10.0)
        # Bit identity survives the death.
        assert result.single() == serial.single()
        counters = status["counters"]
        # The victim was killed holding incomplete units, so the run
        # recovered at least one unit -- and the session surfaces it.
        assert result.requeues >= 1
        assert result.retries == result.requeues  # no failures, only the kill
        assert counters["units_requeued"] == result.requeues
        # Exactly the lost units were re-executed: every unit completed
        # exactly once (no duplicates), every failure path stayed quiet.
        assert counters["units_completed"] == config.units
        assert counters["duplicate_completions"] == 0
        assert counters["units_failed"] == 0
        assert status["workers"]["victim"]["state"] == "dead"
        assert status["workers"]["rescue"]["units_completed"] >= result.requeues
