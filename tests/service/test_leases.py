"""Unit tests of the lease state machine (no sockets, simulated clock)."""

from __future__ import annotations

import pytest

from repro.service.leases import LeaseManager, UnitRecord, UnitState


def make_units(count, submission="sub", prefix="u"):
    return [
        UnitRecord(
            key=f"{prefix}{index}",
            submission_id=submission,
            index=index,
            unit_digest=f"digest-{index}",
            task_blob=f"blob-{index}",
        )
        for index in range(count)
    ]


def make_manager(**kwargs):
    defaults = dict(lease_ttl=10.0, max_attempts=3, backoff_base=1.0, backoff_cap=8.0)
    defaults.update(kwargs)
    return LeaseManager(**defaults)


class TestGrantAndComplete:
    def test_grant_leases_up_to_capacity(self):
        manager = make_manager()
        manager.add_submission("sub", "label", make_units(5))
        lease = manager.grant("w1", capacity=3, now=0.0)
        assert lease is not None and len(lease.keys) == 3
        assert all(manager.units[key].state is UnitState.LEASED for key in lease.keys)
        assert all(manager.units[key].attempts == 1 for key in lease.keys)
        # Remaining units still grantable to another worker.
        second = manager.grant("w2", capacity=10, now=0.0)
        assert second is not None and len(second.keys) == 2

    def test_complete_marks_done_and_empties_lease(self):
        manager = make_manager()
        manager.add_submission("sub", "label", make_units(2))
        lease = manager.grant("w1", capacity=2, now=0.0)
        for key in sorted(lease.keys):
            assert manager.complete(key, worker="w1") == "accepted"
        assert manager.submissions["sub"].done
        assert lease.lease_id not in manager.leases  # emptied leases are dropped

    def test_nothing_to_grant_returns_none(self):
        manager = make_manager()
        assert manager.grant("w1", capacity=1, now=0.0) is None
        manager.add_submission("sub", "label", make_units(1))
        manager.grant("w1", capacity=1, now=0.0)
        assert manager.grant("w2", capacity=1, now=0.0) is None  # all leased

    def test_duplicate_and_unknown_completions(self):
        manager = make_manager()
        manager.add_submission("sub", "label", make_units(1))
        manager.grant("w1", capacity=1, now=0.0)
        assert manager.complete("u0", worker="w1") == "accepted"
        # Idempotent: a second completion (re-dispatch race) is a duplicate.
        assert manager.complete("u0", worker="w2") == "duplicate"
        assert manager.submissions["sub"].completed == 1
        assert manager.complete("nope", worker="w1") == "unknown"


class TestExpiryAndReclaim:
    def test_expired_lease_requeues_units_with_backoff(self):
        manager = make_manager(lease_ttl=5.0, backoff_base=1.0)
        manager.add_submission("sub", "label", make_units(2))
        lease = manager.grant("w1", capacity=2, now=0.0)
        expired, events = manager.reap_expired(now=4.9)
        assert expired == 0 and not events
        expired, events = manager.reap_expired(now=5.1)
        assert expired == 1
        assert sorted(e.transition for e in events) == ["requeued", "requeued"]
        unit = manager.units["u0"]
        assert unit.state is UnitState.PENDING
        assert unit.requeues == 1
        # Backoff gate: not grantable immediately, grantable after it passes.
        assert manager.grant("w2", capacity=2, now=5.2) is None
        assert manager.next_available_in(5.2) == pytest.approx(0.9, abs=0.05)
        regrant = manager.grant("w2", capacity=2, now=6.2)
        assert regrant is not None and len(regrant.keys) == 2
        assert lease.lease_id not in manager.leases

    def test_heartbeat_extends_lease(self):
        manager = make_manager(lease_ttl=5.0)
        manager.add_submission("sub", "label", make_units(1))
        lease = manager.grant("w1", capacity=1, now=0.0)
        assert manager.heartbeat(lease.lease_id, now=4.0)
        expired, _ = manager.reap_expired(now=6.0)  # would have expired at 5.0
        assert expired == 0
        expired, _ = manager.reap_expired(now=9.1)
        assert expired == 1
        assert not manager.heartbeat(lease.lease_id, now=9.2)  # gone now

    def test_release_worker_reclaims_all_its_leases(self):
        manager = make_manager()
        manager.add_submission("sub", "label", make_units(4))
        manager.grant("w1", capacity=2, now=0.0)
        lease_w2 = manager.grant("w2", capacity=2, now=0.0)
        events = manager.release_worker("w1", now=1.0)
        assert len(events) == 2
        assert all(e.transition == "requeued" for e in events)
        # w2's lease is untouched.
        assert lease_w2.lease_id in manager.leases
        assert manager.state_counts()["leased"] == 2

    def test_late_completion_after_expiry_is_accepted(self):
        """A presumed-dead worker that finishes anyway saves the re-execution."""
        manager = make_manager(lease_ttl=1.0, backoff_base=0.0)
        manager.add_submission("sub", "label", make_units(1))
        manager.grant("w1", capacity=1, now=0.0)
        manager.reap_expired(now=2.0)  # w1 presumed hung; unit back to pending
        assert manager.complete("u0", worker="w1") == "accepted"
        assert manager.submissions["sub"].done

    def test_completion_race_between_old_and_new_worker(self):
        manager = make_manager(lease_ttl=1.0, backoff_base=0.0)
        manager.add_submission("sub", "label", make_units(1))
        manager.grant("w1", capacity=1, now=0.0)
        manager.reap_expired(now=2.0)
        manager.grant("w2", capacity=1, now=2.1)  # re-dispatched
        assert manager.complete("u0", worker="w1") == "accepted"  # old one first
        assert manager.complete("u0", worker="w2") == "duplicate"
        assert manager.submissions["sub"].completed == 1


class TestQuarantine:
    def test_unit_quarantined_after_max_attempts(self):
        manager = make_manager(max_attempts=2, backoff_base=0.0)
        manager.add_submission("sub", "label", make_units(1))
        manager.grant("w1", capacity=1, now=0.0)
        event = manager.fail("u0", "boom 1", now=0.1, worker="w1")
        assert event.transition == "requeued"
        manager.grant("w1", capacity=1, now=0.2)
        event = manager.fail("u0", "boom 2", now=0.3, worker="w1")
        assert event.transition == "quarantined"
        unit = manager.units["u0"]
        assert unit.state is UnitState.QUARANTINED
        assert unit.errors == ["boom 1", "boom 2"]
        # The submission terminates despite the poison unit.
        assert manager.submissions["sub"].done
        assert manager.submissions["sub"].quarantined == ["u0"]
        # Quarantined units are never re-granted.
        assert manager.grant("w1", capacity=1, now=1.0) is None

    def test_worker_death_counts_toward_poison(self):
        """A unit that crashes its worker must still quarantine eventually."""
        manager = make_manager(max_attempts=2, backoff_base=0.0)
        manager.add_submission("sub", "label", make_units(1))
        manager.grant("w1", capacity=1, now=0.0)
        events = manager.release_worker("w1", now=0.1)
        assert events[0].transition == "requeued"
        manager.grant("w2", capacity=1, now=0.2)
        events = manager.release_worker("w2", now=0.3)
        assert events[0].transition == "quarantined"

    def test_stale_failure_reports_ignored(self):
        manager = make_manager()
        manager.add_submission("sub", "label", make_units(1))
        manager.grant("w1", capacity=1, now=0.0)
        assert manager.fail("u0", "boom", now=0.1, worker="other") is None
        manager.complete("u0", worker="w1")
        assert manager.fail("u0", "boom", now=0.2, worker="w1") is None


class TestBackoffGate:
    def test_all_units_backing_off_grants_nothing_and_reports_wait(self):
        """Regression: a fleet hammering ``grant`` while every pending unit
        backs off must get ``None`` plus an accurate ``next_available_in``,
        and the repeated empty grants must not churn the pending order."""
        manager = make_manager(lease_ttl=5.0, backoff_base=2.0)
        manager.add_submission("sub", "label", make_units(3))
        lease = manager.grant("w1", capacity=3, now=0.0)
        assert lease is not None
        manager.reap_expired(now=6.0)  # all three requeue with 2s backoff

        pending_before = list(manager.submissions["sub"].pending)
        for attempt in range(5):  # busy-poll storm
            assert manager.grant("w2", capacity=3, now=6.5) is None
        assert list(manager.submissions["sub"].pending) == pending_before
        wait = manager.next_available_in(now=6.5)
        assert wait == pytest.approx(1.5)

        # Once the backoff lapses the very same units are granted, in order.
        lease = manager.grant("w2", capacity=3, now=6.0 + 2.0)
        assert lease is not None and len(lease.keys) == 3

    def test_next_available_in_states(self):
        manager = make_manager(backoff_base=4.0)
        assert manager.next_available_in(now=0.0) is None  # nothing pending
        manager.add_submission("sub", "label", make_units(1))
        assert manager.next_available_in(now=0.0) == 0.0  # grantable now
        manager.grant("w1", capacity=1, now=0.0)
        assert manager.next_available_in(now=0.0) is None  # all leased

    def test_fail_lease_requeues_every_leased_unit(self):
        manager = make_manager(backoff_base=1.0)
        manager.add_submission("sub", "label", make_units(2))
        lease = manager.grant("w1", capacity=2, now=0.0)
        events = manager.fail_lease(lease.lease_id, "heartbeat thread died", now=1.0)
        assert {event.transition for event in events} == {"requeued"}
        assert lease.lease_id not in manager.leases
        for key in ("u0", "u1"):
            unit = manager.units[key]
            assert unit.state is UnitState.PENDING
            assert unit.errors[-1] == "heartbeat thread died"
            assert unit.available_at > 1.0
        # Stale ids (already reclaimed) are a harmless no-op.
        assert manager.fail_lease(lease.lease_id, "again", now=2.0) == []
        assert manager.fail_lease("lease-nope", "never existed", now=2.0) == []


class TestFairnessAndCancel:
    def test_round_robin_across_submissions(self):
        manager = make_manager()
        manager.add_submission("a", "A", make_units(4, submission="a", prefix="a"))
        manager.add_submission("b", "B", make_units(4, submission="b", prefix="b"))
        first = manager.grant("w1", capacity=2, now=0.0)
        second = manager.grant("w2", capacity=2, now=0.0)
        submissions_served = {
            manager.units[key].submission_id for key in first.keys | second.keys
        }
        # The second grant serves the other submission: no starvation.
        assert submissions_served == {"a", "b"}

    def test_capacity_spans_submissions(self):
        manager = make_manager()
        manager.add_submission("a", "A", make_units(1, submission="a", prefix="a"))
        manager.add_submission("b", "B", make_units(1, submission="b", prefix="b"))
        lease = manager.grant("w1", capacity=5, now=0.0)
        assert len(lease.keys) == 2

    def test_cancel_submission_frees_units(self):
        manager = make_manager()
        manager.add_submission("a", "A", make_units(3, submission="a", prefix="a"))
        manager.grant("w1", capacity=1, now=0.0)
        dropped = manager.cancel_submission("a")
        assert dropped == 3
        assert not manager.units  # memory bounded by live work
        assert manager.complete("a0", worker="w1") == "unknown"
        assert manager.cancel_submission("a") == 0

    def test_duplicate_submission_or_key_rejected(self):
        manager = make_manager()
        manager.add_submission("a", "A", make_units(1, submission="a"))
        with pytest.raises(ValueError):
            manager.add_submission("a", "A", make_units(1, submission="a", prefix="x"))
        with pytest.raises(ValueError):
            manager.add_submission("b", "B", make_units(1, submission="b"))
