"""Framing and blob round-trips of the ndjson wire protocol."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.experiments.executors import StudyTask
from repro.experiments.study import WorkUnit
from repro.service import protocol


class TestFraming:
    def test_encode_decode_roundtrip(self):
        message = {"type": "lease_request", "capacity": 4, "name": "w≠1"}
        data = protocol.encode_message(message)
        assert data.endswith(b"\n") and data.count(b"\n") == 1
        assert protocol.decode_message(data) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_message(b"\xff\xfe not json\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_message(b"[1, 2, 3]\n")  # no "type"
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_message(b'{"no_type": 1}\n')

    def test_blob_roundtrips_study_tasks(self):
        unit = WorkUnit(study="demo", unit_id="cell/1", params={"a": 1, "b": (2, 3)})
        task = StudyTask(study="demo", config=None, chip=None, seed=42, unit=unit)
        clone = protocol.unpack_blob(protocol.pack_blob(task))
        assert clone.study == task.study
        assert clone.seed == 42
        assert clone.unit == unit
        assert clone.unit.digest == unit.digest

    def test_check_hello_validation(self):
        good = protocol.hello("worker", "w1")
        assert protocol.check_hello(good, ("worker",)) is good
        with pytest.raises(protocol.ProtocolError):
            protocol.check_hello(None, ("worker",))
        with pytest.raises(protocol.ProtocolError):
            protocol.check_hello({"type": "submit"}, ("worker",))
        with pytest.raises(protocol.ProtocolError):
            protocol.check_hello(dict(good, protocol=99), ("worker",))
        with pytest.raises(protocol.ProtocolError):
            protocol.check_hello(good, ("client",))


class TestMessageStream:
    def make_pair(self):
        left, right = socket.socketpair()
        return protocol.MessageStream(left), protocol.MessageStream(right)

    def test_send_recv_over_socketpair(self):
        a, b = self.make_pair()
        try:
            a.send({"type": "ping", "n": 1})
            a.send({"type": "ping", "n": 2})
            assert b.recv() == {"type": "ping", "n": 1}
            assert b.recv() == {"type": "ping", "n": 2}
        finally:
            a.close()
            b.close()

    def test_recv_returns_none_on_close(self):
        a, b = self.make_pair()
        a.close()
        assert b.recv() is None
        b.close()

    def test_concurrent_sends_stay_framed(self):
        """Heartbeat threads share the stream with the execution loop."""
        a, b = self.make_pair()
        per_thread = 50

        def blast(tag):
            for n in range(per_thread):
                a.send({"type": "msg", "tag": tag, "n": n, "pad": "x" * 512})

        threads = [threading.Thread(target=blast, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        received = [b.recv() for _ in range(4 * per_thread)]
        for thread in threads:
            thread.join()
        assert all(message["type"] == "msg" for message in received)
        seen = {(message["tag"], message["n"]) for message in received}
        assert len(seen) == 4 * per_thread
        a.close()
        b.close()
