"""Advisory store locking and scheduler-side checkpointing.

Two halves of the shared-store story: :class:`ResultStore` mutations take
an exclusive ``flock`` on ``<root>/.lock`` (so concurrent writers to one
directory serialize), and a scheduler configured with a store checkpoints
every completed unit -- after which a *local* serial session pointed at
the same directory replays the whole service run from cache.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.experiments import ExperimentSession, SerialExecutor, ServiceExecutor
from repro.experiments.store import CacheKey, ResultStore, fcntl
from repro.experiments.study import StudyResult
from repro.service import SchedulerThread, ServiceWorker
from repro.service.selftest import ServiceSelfTestConfig

pytestmark = pytest.mark.skipif(fcntl is None, reason="fcntl unavailable")


def make_result(payload):
    return StudyResult(
        study="locking-demo",
        config_digest="cfg",
        chip_id=None,
        type_node=None,
        manufacturer=None,
        seed=0,
        payload=payload,
    )


class TestAdvisoryLocking:
    def test_lock_file_appears_at_store_root(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(CacheKey("locking-demo", "cfg", "chip"), make_result(1))
        assert (tmp_path / "store" / ResultStore.LOCK_FILENAME).exists()

    def test_put_blocks_while_lock_is_held(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root)
        store.put(CacheKey("locking-demo", "cfg", "warmup"), make_result(0))
        done = threading.Event()

        def contended_put():
            # A different ResultStore instance, as a second process would use.
            ResultStore(root).put(
                CacheKey("locking-demo", "cfg", "contended"), make_result(1)
            )
            done.set()

        with (root / ResultStore.LOCK_FILENAME).open("a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            thread = threading.Thread(target=contended_put, daemon=True)
            thread.start()
            # The writer must sit on the flock while we hold it...
            assert not done.wait(0.3)
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        # ...and complete promptly once it is released.
        assert done.wait(10.0)
        thread.join(timeout=10.0)
        assert ResultStore(root).contains(
            CacheKey("locking-demo", "cfg", "contended")
        )

    def test_concurrent_writers_all_land(self, tmp_path):
        """Many writers, one root: every entry readable and complete."""
        root = tmp_path / "store"
        writers = 4
        puts_each = 8

        def blast(writer_id):
            store = ResultStore(root)
            for n in range(puts_each):
                key = CacheKey("locking-demo", "cfg", f"w{writer_id}-{n}")
                store.put(key, make_result((writer_id, n)))

        threads = [
            threading.Thread(target=blast, args=(w,), daemon=True)
            for w in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        reader = ResultStore(root)
        for writer_id in range(writers):
            for n in range(puts_each):
                key = CacheKey("locking-demo", "cfg", f"w{writer_id}-{n}")
                cached = reader.get(key)
                assert cached is not None
                assert cached.payload == (writer_id, n)
                assert cached.from_cache


class TestSchedulerCheckpointing:
    def test_local_session_replays_service_run_from_shared_store(self, tmp_path):
        """The scheduler checkpoints completed units into its store; a local
        serial session sharing the directory replays them all from cache."""
        root = tmp_path / "shared-store"
        config = ServiceSelfTestConfig(units=5, rounds=100, seed=6)
        with SchedulerThread(store=ResultStore(root)) as scheduler:
            host, port = scheduler.address
            stop = threading.Event()
            worker = ServiceWorker(host, port, name="ck", stop_event=stop)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            try:
                service = ExperimentSession(
                    executor=ServiceExecutor(host, port), seed=7
                ).run("service-selftest", config)
            finally:
                stop.set()
                thread.join(timeout=10.0)
        assert service.executed == service.units_total == config.units
        # Every unit now sits in the shared store directory.
        shared = ResultStore(root)
        assert len(shared.entry_paths("service-selftest", units_only=True)) == (
            config.units
        )
        # A purely local run against the same directory replays everything.
        local = ExperimentSession(
            executor=SerialExecutor(), store=shared, seed=7
        ).run("service-selftest", config)
        assert local.executed == 0
        assert local.cache_hits == local.units_total == config.units
        assert local.single() == service.single()
