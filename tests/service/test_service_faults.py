"""Fault injection against a live loopback scheduler.

These tests drive the wire protocol *manually* (a hand-rolled worker over a
raw :class:`~repro.service.protocol.MessageStream`) so each failure mode is
triggered deterministically rather than by racing real threads:

* lease expiry: a worker that takes a lease and never heartbeats loses it,
  and the units are re-dispatched to a live worker;
* duplicate completion: the same unit completed twice is accepted once and
  counted as a duplicate the second time;
* poison quarantine: a unit failing ``max_attempts`` times is quarantined,
  the submission still terminates, and the client sees exactly which unit
  poisoned the study.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import ExperimentSession, ServiceExecutor
from repro.service import (
    PoisonedUnitError,
    SchedulerThread,
    ServiceClient,
    protocol,
)
from repro.service.selftest import ServiceSelfTestConfig


def manual_worker(host, port, name):
    """Open a worker connection without the real pull loop around it."""
    stream = protocol.connect_stream(host, port)
    stream.send(protocol.hello("worker", name))
    ack = stream.recv()
    assert ack["type"] == "hello_ack"
    return stream


def request_lease(stream, capacity=8, attempts=100, delay=0.05):
    """Poll until the scheduler grants a lease (retries across backoff)."""
    for _ in range(attempts):
        stream.send({"type": "lease_request", "capacity": capacity})
        reply = stream.recv()
        if reply["type"] == "lease_grant":
            return reply
        assert reply["type"] == "no_work"
        time.sleep(min(delay, float(reply.get("retry_in") or delay)))
    raise AssertionError("scheduler never granted a lease")


def submit_selftest(client, config, seed=0):
    """Submit a selftest study's tasks through the raw client."""
    from repro.experiments import get_study
    from repro.experiments.executors import StudyTask
    from repro.experiments.remote import ServiceExecutor as _SE
    from repro.experiments.study import config_digest

    spec = get_study("service-selftest")
    digest = config_digest(config)
    units = spec.units_for(config)
    tasks = [
        StudyTask(study=spec.name, config=config, chip=None, seed=seed + i, unit=unit)
        for i, unit in enumerate(units)
    ]
    specs = [_SE._unit_spec(i, task) for i, task in enumerate(tasks)]
    client.submit_units(specs, label="faults")
    return tasks, specs, digest


def run_unit_blob(task_blob):
    """Execute one shipped unit the way a real worker would."""
    from repro.experiments.executors import execute_task

    return protocol.pack_blob(execute_task(protocol.unpack_blob(task_blob)))


class TestLeaseExpiry:
    def test_hung_worker_loses_lease_and_units_are_redispatched(self):
        with SchedulerThread(
            lease_ttl=0.4, backoff_base=0.01, backoff_cap=0.05, max_attempts=5
        ) as scheduler:
            host, port = scheduler.address
            config = ServiceSelfTestConfig(units=2, rounds=10)
            with ServiceClient(host, port) as client:
                submit_selftest(client, config)
                hung = manual_worker(host, port, "hung")
                grant = request_lease(hung, capacity=2)
                assert len(grant["units"]) == 2
                # The hung worker never heartbeats and never reports; the
                # sweep reclaims the lease after the TTL.
                live = manual_worker(host, port, "live")
                regrant = request_lease(live, capacity=2)
                assert {u["key"] for u in regrant["units"]} == {
                    u["key"] for u in grant["units"]
                }
                for unit in regrant["units"]:
                    live.send(
                        {
                            "type": "unit_result",
                            "lease_id": regrant["lease_id"],
                            "key": unit["key"],
                            "elapsed_s": 0.01,
                            "outcome": run_unit_blob(unit["task"]),
                        }
                    )
                events = [event for event in client.events()]
                done = events[-1]
                assert done["type"] == "submission_done"
                assert done["completed"] == 2 and not done["quarantined"]
                completes = [e for e in events if e["type"] == "unit_complete"]
                # Both units record the reclaimed lease: attempts=2, requeues=1.
                assert all(e["attempts"] == 2 and e["requeues"] == 1 for e in completes)
                status = client.status()
            assert status["counters"]["leases_expired"] >= 1
            assert status["counters"]["units_requeued"] == 2
            hung.close()
            live.close()


class TestDuplicateCompletion:
    def test_second_completion_is_dropped(self):
        with SchedulerThread(lease_ttl=30.0) as scheduler:
            host, port = scheduler.address
            config = ServiceSelfTestConfig(units=1, rounds=10)
            with ServiceClient(host, port) as client:
                submit_selftest(client, config)
                worker = manual_worker(host, port, "dup")
                grant = request_lease(worker, capacity=1)
                unit = grant["units"][0]
                outcome_blob = run_unit_blob(unit["task"])
                for _ in range(2):  # send the identical completion twice
                    worker.send(
                        {
                            "type": "unit_result",
                            "lease_id": grant["lease_id"],
                            "key": unit["key"],
                            "elapsed_s": 0.01,
                            "outcome": outcome_blob,
                        }
                    )
                events = list(client.events())
                # Exactly one unit_complete reaches the client.
                assert [e["type"] for e in events] == [
                    "unit_complete",
                    "submission_done",
                ]
                status = client.status()
            assert status["counters"]["duplicate_completions"] == 1
            assert status["counters"]["units_completed"] == 1
            worker.close()

    def test_completion_for_cancelled_submission_is_unknown(self):
        with SchedulerThread(lease_ttl=30.0) as scheduler:
            host, port = scheduler.address
            config = ServiceSelfTestConfig(units=1, rounds=10)
            client = ServiceClient(host, port)
            client.connect()
            submit_selftest(client, config)
            worker = manual_worker(host, port, "orphan")
            grant = request_lease(worker, capacity=1)
            client.close()  # client goes away; submission cancelled
            time.sleep(0.2)
            unit = grant["units"][0]
            worker.send(
                {
                    "type": "unit_result",
                    "lease_id": grant["lease_id"],
                    "key": unit["key"],
                    "elapsed_s": 0.01,
                    "outcome": run_unit_blob(unit["task"]),
                }
            )
            # The scheduler drops the orphan result and stays serviceable.
            with ServiceClient(host, port) as probe:
                status = probe.status()
            assert status["counters"]["submissions_cancelled"] == 1
            assert status["counters"]["unknown_completions"] == 1
            worker.close()


class TestPoisonQuarantine:
    def test_poison_unit_quarantined_without_sinking_study(self):
        with SchedulerThread(
            lease_ttl=5.0, max_attempts=2, backoff_base=0.01, backoff_cap=0.02
        ) as scheduler:
            host, port = scheduler.address
            from repro.service.worker import ServiceWorker
            import threading

            stop = threading.Event()
            worker = ServiceWorker(
                host, port, name="pw", batch_size=2, stop_event=stop
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            try:
                config = ServiceSelfTestConfig(units=4, rounds=10, fail_units=(1,))
                session = ExperimentSession(
                    executor=ServiceExecutor(host, port), seed=5
                )
                with pytest.raises(PoisonedUnitError) as excinfo:
                    session.run("service-selftest", config)
                assert len(excinfo.value.reports) == 1
                report = excinfo.value.reports[0]
                assert report["index"] == 1
                assert report["attempts"] == 2
                assert any("poisoned" in err for err in report["errors"])
                with ServiceClient(host, port) as probe:
                    status = probe.status()
                assert status["counters"]["units_quarantined"] == 1
                assert status["counters"]["units_failed"] == 2  # both attempts
            finally:
                stop.set()
                thread.join(timeout=5.0)
