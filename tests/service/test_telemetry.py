"""Streaming-statistics and telemetry snapshot tests."""

from __future__ import annotations

import random

import pytest

from repro.service.telemetry import SchedulerTelemetry, StreamingStats
from repro.utils.stats import box_stats


class TestStreamingStats:
    def test_exact_moments_with_bounded_memory(self):
        stats = StreamingStats(capacity=64)
        values = [float(v) for v in range(1000)]
        for value in values:
            stats.add(value)
        assert stats.count == 1000
        assert stats.minimum == 0.0
        assert stats.maximum == 999.0
        assert stats.mean == pytest.approx(sum(values) / len(values))
        assert len(stats._reservoir) == 64  # never grows past capacity

    def test_small_streams_are_kept_exactly(self):
        stats = StreamingStats(capacity=512)
        values = [3.0, 1.0, 2.0, 5.0, 4.0]
        for value in values:
            stats.add(value)
        snapshot = stats.snapshot()
        box = box_stats(values)
        assert snapshot["p50"] == box.median
        assert snapshot["p25"] == box.first_quartile
        assert snapshot["p75"] == box.third_quartile
        assert snapshot["sampled"] == 5

    def test_reservoir_quantiles_track_distribution(self):
        rng = random.Random(7)
        stats = StreamingStats(capacity=256, seed=1)
        for _ in range(20_000):
            stats.add(rng.uniform(0.0, 100.0))
        snapshot = stats.snapshot()
        # Uniform(0,100): quartiles land near 25/50/75; the reservoir is a
        # uniform sample so estimates are close (generous tolerance).
        assert snapshot["p50"] == pytest.approx(50.0, abs=12.0)
        assert snapshot["p25"] == pytest.approx(25.0, abs=12.0)
        assert snapshot["p75"] == pytest.approx(75.0, abs=12.0)

    def test_snapshot_none_before_first_value(self):
        assert StreamingStats().snapshot() is None

    def test_deterministic_given_insertion_order(self):
        a, b = StreamingStats(capacity=16, seed=3), StreamingStats(capacity=16, seed=3)
        for value in range(500):
            a.add(float(value))
            b.add(float(value))
        assert a.snapshot() == b.snapshot()


class TestSchedulerTelemetry:
    def test_worker_lifecycle_and_counters(self):
        telemetry = SchedulerTelemetry(started_at=0.0)
        telemetry.worker_connected("w1", now=1.0)
        telemetry.unit_completed("w1", elapsed_s=0.5, now=2.0)
        telemetry.unit_completed("w1", elapsed_s=1.5, now=3.0)
        telemetry.unit_failed("w1", now=3.5)
        telemetry.worker_dead("w1", now=4.0)
        status = telemetry.status(now=5.0)
        assert status["counters"]["units_completed"] == 2
        assert status["counters"]["units_failed"] == 1
        worker = status["workers"]["w1"]
        assert worker["state"] == "dead"
        assert worker["units_completed"] == 2
        assert worker["units_failed"] == 1
        assert status["unit_seconds"]["count"] == 2
        assert status["unit_seconds"]["mean"] == pytest.approx(1.0)
        assert status["throughput"]["overall_units_per_s"] == pytest.approx(0.4)

    def test_status_is_json_safe(self):
        import json

        telemetry = SchedulerTelemetry(started_at=0.0)
        telemetry.worker_connected("w1", now=0.5)
        telemetry.unit_completed("w1", elapsed_s=0.1, now=1.0)
        json.dumps(telemetry.status(now=2.0))  # must not raise
