"""Deterministic random-number utilities.

Every stochastic component of the library (cell thresholds, chip-to-chip
variation, trace generation, probabilistic mitigation mechanisms) draws from
a :class:`numpy.random.Generator` seeded through :func:`derive_seed` so that
results are reproducible given a top-level seed, and so that two components
never share a stream by accident.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

Seedable = Union[int, str]


def derive_seed(*components: Seedable) -> int:
    """Derive a 64-bit seed deterministically from a sequence of components.

    The components are hashed with SHA-256 so that nearby integers (for
    example consecutive row indices) still produce statistically independent
    streams.

    >>> derive_seed(1, "bank", 0) == derive_seed(1, "bank", 0)
    True
    >>> derive_seed(1, "bank", 0) != derive_seed(1, "bank", 1)
    True
    """
    hasher = hashlib.sha256()
    for component in components:
        hasher.update(repr(component).encode("utf-8"))
        hasher.update(b"\x1f")
    return int.from_bytes(hasher.digest()[:8], "little")


def make_rng(*components: Seedable) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from seed components."""
    return np.random.default_rng(derive_seed(*components))
