"""Shared utilities: deterministic RNG streams, bit operations, statistics."""

from repro.utils.rng import derive_seed, make_rng
from repro.utils.bitops import (
    bytes_to_bits,
    bits_to_bytes,
    count_set_bits,
    flip_bits,
    words_of,
)
from repro.utils.stats import BoxStats, box_stats, geometric_mean

__all__ = [
    "derive_seed",
    "make_rng",
    "bytes_to_bits",
    "bits_to_bytes",
    "count_set_bits",
    "flip_bits",
    "words_of",
    "BoxStats",
    "box_stats",
    "geometric_mean",
]
