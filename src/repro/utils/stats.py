"""Small statistics helpers used by the analysis layer.

The paper reports most per-configuration results either as box-and-whisker
distributions (Figure 8) or as means with standard deviations (Figures 6, 7,
and 9).  :class:`BoxStats` captures exactly the quantities a box plot needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class BoxStats:
    """Summary statistics matching a box-and-whisker plot.

    Whiskers extend at most 1.5x the inter-quartile range beyond the box, as
    in the paper (Section 5.5, footnote 9); data points beyond the whiskers
    are reported as outliers.
    """

    minimum: float
    first_quartile: float
    median: float
    third_quartile: float
    maximum: float
    lower_whisker: float
    upper_whisker: float
    outliers: tuple
    count: int

    @property
    def iqr(self) -> float:
        """Inter-quartile range (box height)."""
        return self.third_quartile - self.first_quartile


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sequence."""
    if not sorted_values:
        raise ValueError("cannot compute quantile of empty sequence")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = q * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    fraction = position - lower
    low = float(sorted_values[lower])
    high = float(sorted_values[upper])
    # Clamp: rounding in the interpolation (e.g. with subnormal inputs) must
    # never push a quantile outside the bracketing samples, or quantiles of
    # the same data could come out non-monotone.
    return min(max(low * (1 - fraction) + high * fraction, low), high)


def box_stats(values: Sequence[float]) -> BoxStats:
    """Compute :class:`BoxStats` for a sequence of values."""
    if len(values) == 0:
        raise ValueError("cannot compute box statistics of empty sequence")
    ordered = sorted(float(v) for v in values)
    q1 = _quantile(ordered, 0.25)
    median = _quantile(ordered, 0.50)
    q3 = _quantile(ordered, 0.75)
    iqr = q3 - q1
    lower_limit = q1 - 1.5 * iqr
    upper_limit = q3 + 1.5 * iqr
    in_range = [v for v in ordered if lower_limit <= v <= upper_limit]
    outliers = tuple(v for v in ordered if v < lower_limit or v > upper_limit)
    lower_whisker = min(in_range) if in_range else q1
    upper_whisker = max(in_range) if in_range else q3
    return BoxStats(
        minimum=ordered[0],
        first_quartile=q1,
        median=median,
        third_quartile=q3,
        maximum=ordered[-1],
        lower_whisker=lower_whisker,
        upper_whisker=upper_whisker,
        outliers=outliers,
        count=len(ordered),
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    if len(values) == 0:
        raise ValueError("cannot compute geometric mean of empty sequence")
    log_sum = 0.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires strictly positive values")
        log_sum += math.log(value)
    return math.exp(log_sum / len(values))


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input rather than returning NaN)."""
    if len(values) == 0:
        raise ValueError("cannot compute mean of empty sequence")
    return sum(float(v) for v in values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation."""
    if len(values) == 0:
        raise ValueError("cannot compute stddev of empty sequence")
    mu = mean(values)
    return math.sqrt(sum((float(v) - mu) ** 2 for v in values) / len(values))
