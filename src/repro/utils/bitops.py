"""Bit-level helpers used throughout the DRAM device model and ECC codecs."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np


def bytes_to_bits(data: np.ndarray) -> np.ndarray:
    """Expand a uint8 byte array into a uint8 bit array (MSB first per byte).

    >>> bytes_to_bits(np.array([0b10000001], dtype=np.uint8)).tolist()
    [1, 0, 0, 0, 0, 0, 0, 1]
    """
    data = np.asarray(data, dtype=np.uint8)
    return np.unpackbits(data)


def bits_to_bytes(bits: np.ndarray) -> np.ndarray:
    """Pack a uint8 bit array (MSB first) back into bytes.

    The bit array length must be a multiple of eight.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 8 != 0:
        raise ValueError(f"bit array length {bits.size} is not a multiple of 8")
    return np.packbits(bits)


def count_set_bits(data: np.ndarray) -> int:
    """Count the number of set bits in a uint8 byte array."""
    return int(np.unpackbits(np.asarray(data, dtype=np.uint8)).sum())


def flip_bits(data: np.ndarray, bit_indices: Sequence[int]) -> np.ndarray:
    """Return a copy of ``data`` (bytes) with the given bit indices flipped.

    Bit index ``i`` refers to bit ``7 - (i % 8)`` of byte ``i // 8`` so that
    the indexing matches :func:`bytes_to_bits`.
    """
    bits = bytes_to_bits(data).copy()
    for index in bit_indices:
        bits[index] ^= 1
    return bits_to_bytes(bits)


def words_of(bits: np.ndarray, word_bits: int) -> Iterator[np.ndarray]:
    """Yield successive fixed-width words (as bit arrays) from a bit array.

    A trailing partial word is not yielded.
    """
    bits = np.asarray(bits)
    num_words = bits.size // word_bits
    for word_index in range(num_words):
        start = word_index * word_bits
        yield bits[start : start + word_bits]


def xor_reduce(values: Iterable[int]) -> int:
    """XOR-reduce an iterable of integers (0 for an empty iterable)."""
    result = 0
    for value in values:
        result ^= value
    return result
