"""DRAM type specifications (organization and key timings).

The values follow the JEDEC figures the paper quotes in Section 4.3: the
activation cycle time ``tRC`` limits how fast rows can be hammered (DDR3
52.5 ns, DDR4 50 ns, LPDDR4 60 ns), and the refresh window ``tREFW`` (64 ms,
or 32 ms at high temperature) bounds how long a hammer routine can run
without conflating RowHammer bit flips with retention failures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional


class DramType(enum.Enum):
    """The three DRAM types characterized by the paper."""

    DDR3 = "DDR3"
    DDR4 = "DDR4"
    LPDDR4 = "LPDDR4"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class DramTypeSpec:
    """Organization and timing parameters of one DRAM type.

    Attributes
    ----------
    dram_type:
        Which JEDEC family the spec describes.
    trc_ns:
        Minimum time between two successive activations to the same bank
        (nanoseconds).  This is the rate limiter for hammering.
    refresh_window_ms:
        Nominal refresh window tREFW in milliseconds: the interval within
        which every row must be refreshed once.
    refresh_interval_us:
        Nominal interval tREFI between two refresh commands (microseconds).
    banks:
        Number of banks per chip.
    rows_per_bank:
        Number of rows per bank in a full-size device.
    row_bytes:
        Row (page) size in bytes per chip.
    on_die_ecc:
        Whether chips of this type ship with on-die single-error-correcting
        ECC that cannot be disabled (true for the paper's LPDDR4 chips).
    """

    dram_type: DramType
    trc_ns: float
    refresh_window_ms: float
    refresh_interval_us: float
    banks: int
    rows_per_bank: int
    row_bytes: int
    on_die_ecc: bool

    @property
    def rows_per_refresh_window(self) -> int:
        """Number of refresh commands per refresh window (tREFW / tREFI)."""
        return int(round(self.refresh_window_ms * 1000.0 / self.refresh_interval_us))

    @property
    def row_bits(self) -> int:
        """Row size in bits."""
        return self.row_bytes * 8

    def max_hammers_in_refresh_window(self, refresh_window_ms: Optional[float] = None) -> int:
        """Maximum double-sided hammer count that fits in one refresh window.

        One hammer is one activation to each of the two aggressor rows, so a
        hammer costs ``2 * tRC``.  The paper keeps its core test loop under
        the 32 ms minimum refresh window; by default this method uses the
        spec's nominal window.
        """
        window_ms = self.refresh_window_ms if refresh_window_ms is None else refresh_window_ms
        window_ns = window_ms * 1e6
        return int(window_ns // (2.0 * self.trc_ns))


#: Specifications for the three characterized DRAM types.  The organization
#: figures describe a representative full-size chip; simulated chips used in
#: tests and benchmarks are constructed with fewer rows/banks for speed (the
#: vulnerability model calibrates itself to the actual simulated cell count,
#: see :mod:`repro.dram.vulnerability`).
SPECS: Dict[DramType, DramTypeSpec] = {
    DramType.DDR3: DramTypeSpec(
        dram_type=DramType.DDR3,
        trc_ns=52.5,
        refresh_window_ms=64.0,
        refresh_interval_us=7.8,
        banks=8,
        rows_per_bank=32768,
        row_bytes=1024,
        on_die_ecc=False,
    ),
    DramType.DDR4: DramTypeSpec(
        dram_type=DramType.DDR4,
        trc_ns=50.0,
        refresh_window_ms=64.0,
        refresh_interval_us=7.8,
        banks=16,
        rows_per_bank=32768,
        row_bytes=1024,
        on_die_ecc=False,
    ),
    DramType.LPDDR4: DramTypeSpec(
        dram_type=DramType.LPDDR4,
        trc_ns=60.0,
        refresh_window_ms=32.0,
        refresh_interval_us=3.9,
        banks=8,
        rows_per_bank=65536,
        row_bytes=2048,
        on_die_ecc=True,
    ),
}


def spec_for(dram_type: DramType) -> DramTypeSpec:
    """Return the :class:`DramTypeSpec` for a DRAM type."""
    return SPECS[dram_type]
