"""Chip and module population generation, and fused population hammering.

The paper characterizes 1580 chips from 300 modules (Table 1); appendix
Tables 7 and 8 list every DDR4 and DDR3 module with its metadata and minimum
``HC_first``.  This module provides

* factory helpers (:func:`make_chip`, :func:`make_module`,
  :func:`make_population`) that build simulated populations matching the
  paper's sample sizes (optionally scaled down for quick experiments),
* the paper's population inventory as data
  (:data:`TABLE1_POPULATION`, :data:`TABLE7_DDR4_MODULES`,
  :data:`TABLE8_DDR3_MODULES`) so the population benchmark can regenerate
  Table 1 and the appendix tables directly, and
* :class:`ChipPopulation`, the fused batch backend that drives every chip
  of one configuration through the same operation sequence with
  chip-major numpy arrays -- one vectorized disturb over all chips at once,
  bit-identical per chip to running the chips individually.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dram.chip import ChipStats, DramChip, RowData, _CalibratedChip
from repro.dram.columnar import sample_class_row, sample_noise_row, sample_threshold_row
from repro.dram.geometry import ChipGeometry
from repro.dram.module import DramModule
from repro.dram.vulnerability import (
    PROFILES,
    TypeNode,
    VulnerabilityProfile,
    profile_for,
)
from repro.utils.rng import derive_seed, make_rng

TypeNodeLike = Union[TypeNode, str]


@dataclass(frozen=True)
class PopulationEntry:
    """One row of Table 1: chip and module counts for a configuration."""

    type_node: TypeNode
    manufacturer: str
    chips: int
    modules: int


#: Table 1 of the paper: number of chips (modules) tested per configuration.
TABLE1_POPULATION: Tuple[PopulationEntry, ...] = (
    PopulationEntry(TypeNode.DDR3_OLD, "A", 56, 10),
    PopulationEntry(TypeNode.DDR3_OLD, "B", 88, 11),
    PopulationEntry(TypeNode.DDR3_OLD, "C", 28, 7),
    PopulationEntry(TypeNode.DDR3_NEW, "A", 80, 10),
    PopulationEntry(TypeNode.DDR3_NEW, "B", 52, 9),
    PopulationEntry(TypeNode.DDR3_NEW, "C", 104, 13),
    PopulationEntry(TypeNode.DDR4_OLD, "A", 112, 16),
    PopulationEntry(TypeNode.DDR4_OLD, "B", 24, 3),
    PopulationEntry(TypeNode.DDR4_OLD, "C", 128, 18),
    PopulationEntry(TypeNode.DDR4_NEW, "A", 264, 43),
    PopulationEntry(TypeNode.DDR4_NEW, "B", 16, 2),
    PopulationEntry(TypeNode.DDR4_NEW, "C", 108, 28),
    PopulationEntry(TypeNode.LPDDR4_1X, "A", 12, 3),
    PopulationEntry(TypeNode.LPDDR4_1X, "B", 180, 45),
    PopulationEntry(TypeNode.LPDDR4_1Y, "A", 184, 46),
    PopulationEntry(TypeNode.LPDDR4_1Y, "C", 144, 36),
)


@dataclass(frozen=True)
class ModuleRecord:
    """One module row of appendix Table 7 (DDR4) or Table 8 (DDR3)."""

    module_ids: str
    manufacturer: str
    node: str  # "old" / "new"
    date: Optional[str]
    frequency_mts: int
    trc_ns: float
    size_gb: float
    chips: int
    pins: str
    min_hcfirst_k: Optional[float]


#: Appendix Table 7: the 110 DDR4 modules (grouped as in the paper).
TABLE7_DDR4_MODULES: Tuple[ModuleRecord, ...] = (
    ModuleRecord("A0-15", "A", "old", "17-08", 2133, 47.06, 4, 8, "x8", 17.5),
    ModuleRecord("A16-18", "A", "new", "19-19", 2400, 46.16, 4, 4, "x16", 12.5),
    ModuleRecord("A19-24", "A", "new", "19-36", 2666, 46.25, 4, 4, "x16", 10),
    ModuleRecord("A25-33", "A", "new", "19-45", 2666, 46.25, 4, 4, "x16", 10),
    ModuleRecord("A34-36", "A", "new", "19-51", 2133, 46.5, 8, 8, "x8", 10),
    ModuleRecord("A37-46", "A", "new", "20-07", 2400, 46.16, 8, 8, "x8", 12.5),
    ModuleRecord("A47-58", "A", "new", "20-08", 2133, 46.5, 4, 8, "x8", 10),
    ModuleRecord("B0-2", "B", "old", None, 2133, 46.5, 4, 8, "x8", 30),
    ModuleRecord("B3-4", "B", "new", None, 2133, 46.5, 4, 8, "x8", 25),
    ModuleRecord("C0-7", "C", "old", "16-48", 2133, 46.5, 4, 8, "x8", 147.5),
    ModuleRecord("C8-17", "C", "old", "17-12", 2133, 46.5, 4, 8, "x8", 87),
    ModuleRecord("C45", "C", "new", "19-01", 2400, 45.75, 8, 8, "x8", 54),
    ModuleRecord("C44", "C", "new", "19-06", 2400, 45.75, 8, 8, "x8", 63),
    ModuleRecord("C34", "C", "new", "19-11", 2400, 45.75, 4, 4, "x16", 62.5),
    ModuleRecord("C35-36", "C", "new", "19-23", 2400, 45.75, 4, 4, "x16", 63),
    ModuleRecord("C37-43", "C", "new", "19-44", 2133, 46.5, 8, 8, "x8", 57.5),
    ModuleRecord("C18-27", "C", "new", "19-48", 2400, 45.75, 8, 8, "x8", 52.5),
    ModuleRecord("C28-33", "C", "new", None, 2666, 46.5, 4, 8, "x4", 40),
)

#: Appendix Table 8: the 60 DDR3 modules (grouped as in the paper).
TABLE8_DDR3_MODULES: Tuple[ModuleRecord, ...] = (
    ModuleRecord("A0", "A", "old", "10-19", 1066, 50.625, 1, 8, "x8", 155),
    ModuleRecord("A1", "A", "old", "10-40", 1333, 49.5, 2, 8, "x8", None),
    ModuleRecord("A2-6", "A", "old", "12-11", 1866, 47.91, 2, 8, "x8", 156),
    ModuleRecord("A7-9", "A", "old", "12-32", 1600, 48.75, 2, 8, "x8", 69.2),
    ModuleRecord("A10-16", "A", "new", "14-16", 1600, 48.75, 4, 8, "x8", 85),
    ModuleRecord("A17-18", "A", "new", "14-26", 1600, 48.75, 2, 4, "x16", 160),
    ModuleRecord("A19", "A", "new", "15-23", 1600, 48.75, 8, 16, "x4", 155),
    ModuleRecord("B0-1", "B", "old", "10-48", 1333, 49.5, 1, 8, "x8", None),
    ModuleRecord("B2-4", "B", "old", "11-42", 1333, 49.5, 2, 8, "x8", None),
    ModuleRecord("B5-6", "B", "old", "12-24", 1600, 48.75, 2, 8, "x8", 157),
    ModuleRecord("B7-10", "B", "old", "13-51", 1600, 48.75, 4, 8, "x8", None),
    ModuleRecord("B11-14", "B", "new", "15-22", 1600, 50.625, 4, 8, "x8", 33.5),
    ModuleRecord("B15-19", "B", "new", "15-25", 1600, 48.75, 2, 4, "x16", 22.4),
    ModuleRecord("C0-6", "C", "old", "10-43", 1333, 49.125, 1, 4, "x16", 155),
    ModuleRecord("C7", "C", "new", "15-04", 1600, 48.75, 4, 8, "x8", None),
    ModuleRecord("C8-12", "C", "new", "15-46", 1600, 48.75, 2, 8, "x8", 33.5),
    ModuleRecord("C13-19", "C", "new", "17-03", 1600, 48.75, 4, 8, "x8", 24),
)


def make_chip(
    type_node: TypeNodeLike,
    manufacturer: str = "A",
    seed: int = 0,
    geometry: Optional[ChipGeometry] = None,
    hcfirst_target: Optional[float] = None,
    chip_id: str = "",
) -> DramChip:
    """Create one simulated chip of a given type-node configuration.

    >>> chip = make_chip("LPDDR4-1y", "A", seed=3)
    >>> chip.profile.type_node.value
    'LPDDR4-1y'
    """
    profile = profile_for(type_node, manufacturer)
    return DramChip(
        profile,
        geometry=geometry,
        seed=seed,
        hcfirst_target=hcfirst_target,
        chip_id=chip_id,
    )


def make_module(
    type_node: TypeNodeLike,
    manufacturer: str = "A",
    num_chips: int = 8,
    seed: int = 0,
    geometry: Optional[ChipGeometry] = None,
    module_id: str = "",
    **metadata,
) -> DramModule:
    """Create a module of ``num_chips`` chips sharing one configuration.

    Each chip receives an independent seed derived from the module seed so
    chips differ in their sampled vulnerability, mirroring chip-to-chip
    variation within a real module.
    """
    profile = profile_for(type_node, manufacturer)
    module_id = module_id or f"{manufacturer}{seed}"
    chips = [
        DramChip(
            profile,
            geometry=geometry,
            seed=derive_seed(seed, module_id, index),
            chip_id=f"{module_id}.{index}",
        )
        for index in range(num_chips)
    ]
    return DramModule(module_id=module_id, profile=profile, chips=chips, **metadata)


def make_population(
    chips_per_config: Optional[int] = None,
    seed: int = 0,
    geometry: Optional[ChipGeometry] = None,
    configurations: Optional[Sequence[Tuple[TypeNodeLike, str]]] = None,
) -> Dict[Tuple[TypeNode, str], List[DramChip]]:
    """Create a population of chips per type-node configuration.

    Parameters
    ----------
    chips_per_config:
        Number of chips to create per configuration.  ``None`` uses the
        paper's full Table 1 chip counts (1580 chips in total), which is
        appropriate for population-statistics benchmarks but slow for
        full characterization.
    seed:
        Top-level seed; every chip derives an independent stream from it.
    geometry:
        Geometry shared by all chips (defaults to the small test geometry).
    configurations:
        Restrict the population to these (type-node, manufacturer) pairs.

    Returns
    -------
    dict mapping ``(TypeNode, manufacturer)`` to the list of chips.
    """
    population: Dict[Tuple[TypeNode, str], List[DramChip]] = {}
    entries: Iterable[PopulationEntry]
    if configurations is not None:
        wanted = {
            (TypeNode(tn) if isinstance(tn, str) else tn, mfr) for tn, mfr in configurations
        }
        entries = [e for e in TABLE1_POPULATION if (e.type_node, e.manufacturer) in wanted]
    else:
        entries = TABLE1_POPULATION
    for entry in entries:
        count = entry.chips if chips_per_config is None else chips_per_config
        profile = profile_for(entry.type_node, entry.manufacturer)
        chips = [
            DramChip(
                profile,
                geometry=geometry,
                seed=derive_seed(seed, entry.type_node.value, entry.manufacturer, index),
                chip_id=f"{entry.type_node.value}-{entry.manufacturer}-{index}",
            )
            for index in range(count)
        ]
        population[(entry.type_node, entry.manufacturer)] = chips
    return population


def flatten_population(
    population: Mapping[Tuple[TypeNode, str], Sequence[DramChip]],
) -> List[DramChip]:
    """Flatten a :func:`make_population` dict into one ordered chip list.

    Chips appear in configuration order (Table 1 order for a full
    population) then chip order, which is the canonical population order
    used by :class:`repro.experiments.session.ExperimentSession`.
    """
    chips: List[DramChip] = []
    for config_chips in population.values():
        chips.extend(config_chips)
    return chips


def population_summary() -> Dict[str, Dict[str, Tuple[int, int]]]:
    """Summarize Table 1 as ``{type_node: {manufacturer: (chips, modules)}}``."""
    summary: Dict[str, Dict[str, Tuple[int, int]]] = {}
    for entry in TABLE1_POPULATION:
        summary.setdefault(entry.type_node.value, {})[entry.manufacturer] = (
            entry.chips,
            entry.modules,
        )
    return summary


class _PopulationBank:
    """Chip-major state of one bank across every chip of a population.

    ``C`` chips, ``R`` rows, ``B`` row bits, ``W`` wordlines.  Data and
    calibration that can diverge across chips (stored bits, thresholds,
    classes, noise) carry a leading chip axis; bookkeeping that every chip
    shares because the chips see the same operation sequence (written
    flags, refresh epochs, wordline exposure, ECC check bits -- flips never
    touch check bits) is stored once.
    """

    __slots__ = (
        "bits",
        "check_bits",
        "written",
        "epoch",
        "exposure",
        "exposure_present",
        "thresholds",
        "thr_sampled",
        "req_victim",
        "req_aggressor",
        "req_parity",
        "cls_sampled",
        "noise",
        "noise_epoch",
    )

    def __init__(
        self, num_chips: int, rows: int, row_bits: int, wordlines: int, check_bits_per_row: int
    ) -> None:
        self.bits = np.zeros((num_chips, rows, row_bits), dtype=np.uint8)
        self.check_bits: Optional[np.ndarray] = (
            np.zeros((rows, check_bits_per_row), dtype=np.uint8)
            if check_bits_per_row
            else None
        )
        self.written = np.zeros(rows, dtype=bool)
        self.epoch = np.zeros(rows, dtype=np.int64)
        self.exposure = np.zeros(wordlines, dtype=np.float64)
        self.exposure_present = np.zeros(wordlines, dtype=bool)
        self.thresholds: Optional[np.ndarray] = None
        self.thr_sampled = np.zeros(rows, dtype=bool)
        self.req_victim: Optional[np.ndarray] = None
        self.req_aggressor: Optional[np.ndarray] = None
        self.req_parity: Optional[np.ndarray] = None
        self.cls_sampled = np.zeros(rows, dtype=bool)
        self.noise: Optional[np.ndarray] = None
        self.noise_epoch: Optional[np.ndarray] = None


class ChipPopulation:
    """Batch hammering backend over many chips of one configuration.

    Drives every chip through the *same* operation sequence -- the shape of
    the paper's characterization loops, which apply one access pattern to a
    whole population -- with chip-major numpy arrays, so one
    ``hammer_pair`` disturbs all chips in a single vectorized op.  Per chip
    the results are bit-identical to executing the operations on the chips
    individually: every stochastic stream is drawn through the shared
    :mod:`repro.dram.columnar` per-row samplers with the chip's own seed
    and calibration, and the op semantics mirror
    :class:`~repro.dram.chip.DramChip` exactly (the population smoke
    benchmark asserts this for the full Table 1 population).

    Parameters
    ----------
    chips:
        Non-empty sequence of *pristine* chips sharing one profile,
        geometry, and remapper (chip seeds, ``HC_first`` targets, and
        planted cells may differ).  The chips themselves are not touched;
        the population captures their calibration and simulates them.
    """

    def __init__(self, chips: Sequence[_CalibratedChip]) -> None:
        if not chips:
            raise ValueError("ChipPopulation needs at least one chip")
        first = chips[0]
        for chip in chips:
            if chip.profile != first.profile:
                raise ValueError("all population chips must share one profile")
            if chip.geometry != first.geometry:
                raise ValueError("all population chips must share one geometry")
            if chip.remapper.name != first.remapper.name:
                raise ValueError("all population chips must share one remapper")
            if not chip.is_pristine:
                raise ValueError(f"chip {chip.chip_id!r} is not pristine")
        self.chips = list(chips)
        self.profile = first.profile
        self.geometry = first.geometry
        self.remapper = first.remapper
        self._ondie_ecc = first._ondie_ecc
        self._num_wordlines = self.remapper.num_wordlines(self.geometry.rows_per_bank)
        self._column_parity = first._column_parity
        self._seeds = [chip.seed for chip in chips]
        self._scales = [chip._threshold_scale for chip in chips]
        self._floors = [chip._threshold_floor for chip in chips]
        self._planted = [chip._planted_cell for chip in chips]
        self._banks: Dict[int, _PopulationBank] = {}
        # The op sequence is shared, so one counter set covers every chip;
        # only induced flips diverge.
        self.stats = ChipStats()
        self._flips = np.zeros(len(self.chips), dtype=np.int64)

    def __len__(self) -> int:
        return len(self.chips)

    @property
    def flips_per_chip(self) -> np.ndarray:
        """Copy of the per-chip induced-bit-flip counters."""
        return self._flips.copy()

    def chip_stats(self, chip_index: int) -> ChipStats:
        """Counters one chip would have accumulated running standalone."""
        return ChipStats(
            activations=self.stats.activations,
            refreshes=self.stats.refreshes,
            row_writes=self.stats.row_writes,
            row_reads=self.stats.row_reads,
            bit_flips_induced=int(self._flips[chip_index]),
        )

    def _bank(self, bank: int) -> _PopulationBank:
        columns = self._banks.get(bank)
        if columns is None:
            check_bits = (
                self._ondie_ecc.check_bits_per_row(self.geometry.row_bits)
                if self._ondie_ecc is not None
                else 0
            )
            columns = _PopulationBank(
                len(self.chips),
                self.geometry.rows_per_bank,
                self.geometry.row_bits,
                self._num_wordlines,
                check_bits,
            )
            self._banks[bank] = columns
        return columns

    # ------------------------------------------------------------------
    # Data path (broadcast to every chip)
    # ------------------------------------------------------------------
    def write_row(self, bank: int, row: int, data: RowData) -> None:
        """Write one row of every chip (same payload, as in a pattern fill)."""
        self.write_rows(bank, [row], [data])

    def write_rows(self, bank: int, rows: Sequence[int], data) -> None:
        """Batch-write rows of every chip; mirrors ``DramChip.write_rows``."""
        rows = [int(row) for row in rows]
        if isinstance(data, (int, np.integer)):
            data = [data] * len(rows)
        if len(data) != len(rows):
            raise ValueError(f"expected {len(rows)} row payloads, got {len(data)}")
        if not rows:
            return
        coerce = self.chips[0]._coerce_row_bits
        if len(set(rows)) != len(rows):
            for row, row_data in zip(rows, data):
                self.write_rows(bank, [row], [row_data])
            return
        for row in rows:
            self.geometry.validate_address(bank, row)
        bits = np.stack([coerce(row_data) for row_data in data])
        columns = self._bank(bank)
        index = np.asarray(rows, dtype=np.intp)
        columns.bits[:, index, :] = bits[None, :, :]
        if self._ondie_ecc is not None:
            columns.check_bits[index] = self._ondie_ecc.encode_row(
                bits.reshape(-1)
            ).reshape(len(rows), -1)
        columns.epoch[index] = np.where(columns.written[index], columns.epoch[index] + 1, 1)
        columns.written[index] = True
        wordlines = np.asarray(
            [self.remapper.logical_to_physical(row) for row in rows], dtype=np.intp
        )
        columns.exposure[wordlines] = 0.0
        columns.exposure_present[wordlines] = True
        self.stats.row_writes += len(rows)

    def fill_bank(self, bank: int, victim_byte: int, aggressor_byte: Optional[int] = None) -> None:
        """Fill a bank of every chip; mirrors ``DramChip.fill_bank``."""
        rows = range(self.geometry.rows_per_bank)
        if aggressor_byte is None:
            data: List[RowData] = [victim_byte] * self.geometry.rows_per_bank
        else:
            data = [
                victim_byte
                if self.remapper.logical_to_physical(row) % 2 == 0
                else aggressor_byte
                for row in rows
            ]
        self.write_rows(bank, rows, data)

    def read_row_raw(self, bank: int, row: int) -> np.ndarray:
        """Raw stored bits of one row across chips, shape ``(chips, row_bits)``."""
        self.geometry.validate_address(bank, row)
        columns = self._banks.get(bank)
        if columns is None or not columns.written[row]:
            return np.zeros((len(self.chips), self.geometry.row_bits), dtype=np.uint8)
        return columns.bits[:, row, :].copy()

    def read_row(self, bank: int, row: int) -> np.ndarray:
        """ECC-decoded row bytes across chips, shape ``(chips, row_bytes)``."""
        self.geometry.validate_address(bank, row)
        self.stats.row_reads += 1
        columns = self._banks.get(bank)
        if columns is None or not columns.written[row]:
            return np.zeros((len(self.chips), self.geometry.row_bytes), dtype=np.uint8)
        bits = columns.bits[:, row, :]
        if self._ondie_ecc is not None and columns.check_bits is not None:
            check = np.broadcast_to(
                columns.check_bits[row], (len(self.chips), columns.check_bits.shape[1])
            )
            decoded, _corrected = self._ondie_ecc.decode_row(
                bits.reshape(-1), np.ascontiguousarray(check).reshape(-1)
            )
            bits = decoded.reshape(len(self.chips), -1)
        return np.packbits(bits, axis=1)

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def refresh_row(self, bank: int, row: int) -> None:
        """Refresh one logical row of every chip."""
        self.geometry.validate_address(bank, row)
        columns = self._banks.get(bank)
        if columns is not None:
            wordline = self.remapper.logical_to_physical(row)
            columns.exposure[wordline] = 0.0
            columns.exposure_present[wordline] = False
            for logical in self.remapper.physical_to_logical(wordline):
                if 0 <= logical < self.geometry.rows_per_bank and columns.written[logical]:
                    columns.epoch[logical] += 1
        self.stats.refreshes += 1

    def refresh_all(self) -> None:
        """Refresh every row of every chip."""
        for columns in self._banks.values():
            columns.exposure.fill(0.0)
            columns.exposure_present.fill(False)
            columns.epoch[columns.written] += 1
        self.stats.refreshes += 1

    # ------------------------------------------------------------------
    # Activation / hammering
    # ------------------------------------------------------------------
    def activate(self, bank: int, row: int, count: int = 1) -> np.ndarray:
        """Activate a row of every chip; returns per-chip new flips ``(chips,)``."""
        self.geometry.validate_address(bank, row)
        if count <= 0:
            return np.zeros(len(self.chips), dtype=np.int64)
        self.stats.activations += count
        return self._apply_aggressor(bank, row, count)

    def hammer_pair(self, bank: int, row_a: int, row_b: int, count: int) -> np.ndarray:
        """Double-sided hammer on every chip; returns per-chip new flips."""
        self.geometry.validate_address(bank, row_a)
        self.geometry.validate_address(bank, row_b)
        if count <= 0:
            return np.zeros(len(self.chips), dtype=np.int64)
        self.stats.activations += 2 * count
        flips = self._apply_aggressor(bank, row_a, count)
        flips = flips + self._apply_aggressor(bank, row_b, count)
        return flips

    # ------------------------------------------------------------------
    # Lazy per-chip calibration columns
    # ------------------------------------------------------------------
    def _thresholds_for(self, columns: _PopulationBank, bank: int, index: np.ndarray) -> np.ndarray:
        if columns.thresholds is None:
            columns.thresholds = np.empty(
                (len(self.chips), self.geometry.rows_per_bank, self.geometry.row_bits),
                dtype=np.float64,
            )
        slope = self.profile.flip_slope
        for row in index:
            row = int(row)
            if columns.thr_sampled[row]:
                continue
            for chip_index in range(len(self.chips)):
                columns.thresholds[chip_index, row] = sample_threshold_row(
                    self._seeds[chip_index],
                    bank,
                    row,
                    self.geometry.row_bits,
                    self._scales[chip_index],
                    slope,
                    self._floors[chip_index],
                    self._planted[chip_index],
                )
            columns.thr_sampled[row] = True
        return columns.thresholds[:, index, :]

    def _classes_for(
        self, columns: _PopulationBank, bank: int, index: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if columns.req_victim is None:
            shape = (len(self.chips), self.geometry.rows_per_bank, self.geometry.row_bits)
            columns.req_victim = np.empty(shape, dtype=np.uint8)
            columns.req_aggressor = np.empty(shape, dtype=np.uint8)
            columns.req_parity = np.empty(shape, dtype=np.uint8)
        for row in index:
            row = int(row)
            if columns.cls_sampled[row]:
                continue
            for chip_index in range(len(self.chips)):
                rv, ra, rp = sample_class_row(
                    self._seeds[chip_index],
                    bank,
                    row,
                    self.geometry.row_bits,
                    self.profile,
                    self._planted[chip_index],
                )
                columns.req_victim[chip_index, row] = rv
                columns.req_aggressor[chip_index, row] = ra
                columns.req_parity[chip_index, row] = rp
            columns.cls_sampled[row] = True
        return (
            columns.req_victim[:, index, :],
            columns.req_aggressor[:, index, :],
            columns.req_parity[:, index, :],
        )

    def _noise_for(self, columns: _PopulationBank, bank: int, index: np.ndarray) -> np.ndarray:
        if columns.noise is None:
            columns.noise = np.empty(
                (len(self.chips), self.geometry.rows_per_bank, self.geometry.row_bits),
                dtype=np.float64,
            )
            columns.noise_epoch = np.full(self.geometry.rows_per_bank, -1, dtype=np.int64)
        sigma = self.profile.threshold_noise_sigma
        for row in index:
            row = int(row)
            epoch = int(columns.epoch[row])
            if columns.noise_epoch[row] == epoch:
                continue
            for chip_index in range(len(self.chips)):
                columns.noise[chip_index, row] = sample_noise_row(
                    self._seeds[chip_index],
                    bank,
                    row,
                    epoch,
                    self.geometry.row_bits,
                    sigma,
                )
            columns.noise_epoch[row] = epoch
        return columns.noise[:, index, :]

    # ------------------------------------------------------------------
    # Disturbance kernel (vectorized across chips)
    # ------------------------------------------------------------------
    def _wordline_bits(self, columns: _PopulationBank, wordline: int) -> np.ndarray:
        """Stored bits of the (first) logical row on a wordline, per chip."""
        for logical in self.remapper.physical_to_logical(wordline):
            if not 0 <= logical < self.geometry.rows_per_bank:
                continue
            if columns.written[logical]:
                return columns.bits[:, logical, :]
            break
        return np.zeros((len(self.chips), self.geometry.row_bits), dtype=np.uint8)

    def _apply_aggressor(self, bank: int, aggressor_row: int, count: int) -> np.ndarray:
        columns = self._bank(bank)
        aggressor_wordline = self.remapper.logical_to_physical(aggressor_row)
        columns.exposure[aggressor_wordline] = 0.0
        columns.exposure_present[aggressor_wordline] = True
        aggressor_bits = self._wordline_bits(columns, aggressor_wordline)

        victim_rows: List[int] = []
        victim_exposure: List[float] = []
        for distance, coupling in self.profile.distance_coupling.items():
            for victim_wordline in (
                aggressor_wordline - distance,
                aggressor_wordline + distance,
            ):
                if not 0 <= victim_wordline < self._num_wordlines:
                    continue
                columns.exposure[victim_wordline] += coupling * count
                columns.exposure_present[victim_wordline] = True
                exposure = float(columns.exposure[victim_wordline])
                for logical in self.remapper.physical_to_logical(victim_wordline):
                    if 0 <= logical < self.geometry.rows_per_bank and columns.written[logical]:
                        victim_rows.append(logical)
                        victim_exposure.append(exposure)
        if not victim_rows:
            return np.zeros(len(self.chips), dtype=np.int64)

        index = np.asarray(victim_rows, dtype=np.intp)
        exposure = np.asarray(victim_exposure, dtype=np.float64)
        effective = self._thresholds_for(columns, bank, index)
        if self.profile.threshold_noise_sigma > 0:
            effective = effective * self._noise_for(columns, bank, index)
        eligible = effective <= exposure[None, :, None]
        if not eligible.any():
            return np.zeros(len(self.chips), dtype=np.int64)
        required_victim, required_aggressor, required_parity = self._classes_for(
            columns, bank, index
        )
        match = (
            eligible
            & (columns.bits[:, index, :] == required_victim)
            & (aggressor_bits[:, None, :] == required_aggressor)
            & (
                (required_parity == 2)
                | (self._column_parity[None, None, :] == required_parity)
            )
        )
        per_chip = match.sum(axis=(1, 2)).astype(np.int64)
        if per_chip.any():
            columns.bits[:, index, :] ^= match.astype(np.uint8)
        self._flips += per_chip
        self.stats.bit_flips_induced += int(per_chip.sum())
        return per_chip
