"""Chip and module population generation.

The paper characterizes 1580 chips from 300 modules (Table 1); appendix
Tables 7 and 8 list every DDR4 and DDR3 module with its metadata and minimum
``HC_first``.  This module provides

* factory helpers (:func:`make_chip`, :func:`make_module`,
  :func:`make_population`) that build simulated populations matching the
  paper's sample sizes (optionally scaled down for quick experiments), and
* the paper's population inventory as data
  (:data:`TABLE1_POPULATION`, :data:`TABLE7_DDR4_MODULES`,
  :data:`TABLE8_DDR3_MODULES`) so the population benchmark can regenerate
  Table 1 and the appendix tables directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.dram.chip import DramChip
from repro.dram.geometry import ChipGeometry
from repro.dram.module import DramModule
from repro.dram.vulnerability import (
    PROFILES,
    TypeNode,
    VulnerabilityProfile,
    profile_for,
)
from repro.utils.rng import derive_seed, make_rng

TypeNodeLike = Union[TypeNode, str]


@dataclass(frozen=True)
class PopulationEntry:
    """One row of Table 1: chip and module counts for a configuration."""

    type_node: TypeNode
    manufacturer: str
    chips: int
    modules: int


#: Table 1 of the paper: number of chips (modules) tested per configuration.
TABLE1_POPULATION: Tuple[PopulationEntry, ...] = (
    PopulationEntry(TypeNode.DDR3_OLD, "A", 56, 10),
    PopulationEntry(TypeNode.DDR3_OLD, "B", 88, 11),
    PopulationEntry(TypeNode.DDR3_OLD, "C", 28, 7),
    PopulationEntry(TypeNode.DDR3_NEW, "A", 80, 10),
    PopulationEntry(TypeNode.DDR3_NEW, "B", 52, 9),
    PopulationEntry(TypeNode.DDR3_NEW, "C", 104, 13),
    PopulationEntry(TypeNode.DDR4_OLD, "A", 112, 16),
    PopulationEntry(TypeNode.DDR4_OLD, "B", 24, 3),
    PopulationEntry(TypeNode.DDR4_OLD, "C", 128, 18),
    PopulationEntry(TypeNode.DDR4_NEW, "A", 264, 43),
    PopulationEntry(TypeNode.DDR4_NEW, "B", 16, 2),
    PopulationEntry(TypeNode.DDR4_NEW, "C", 108, 28),
    PopulationEntry(TypeNode.LPDDR4_1X, "A", 12, 3),
    PopulationEntry(TypeNode.LPDDR4_1X, "B", 180, 45),
    PopulationEntry(TypeNode.LPDDR4_1Y, "A", 184, 46),
    PopulationEntry(TypeNode.LPDDR4_1Y, "C", 144, 36),
)


@dataclass(frozen=True)
class ModuleRecord:
    """One module row of appendix Table 7 (DDR4) or Table 8 (DDR3)."""

    module_ids: str
    manufacturer: str
    node: str  # "old" / "new"
    date: Optional[str]
    frequency_mts: int
    trc_ns: float
    size_gb: float
    chips: int
    pins: str
    min_hcfirst_k: Optional[float]


#: Appendix Table 7: the 110 DDR4 modules (grouped as in the paper).
TABLE7_DDR4_MODULES: Tuple[ModuleRecord, ...] = (
    ModuleRecord("A0-15", "A", "old", "17-08", 2133, 47.06, 4, 8, "x8", 17.5),
    ModuleRecord("A16-18", "A", "new", "19-19", 2400, 46.16, 4, 4, "x16", 12.5),
    ModuleRecord("A19-24", "A", "new", "19-36", 2666, 46.25, 4, 4, "x16", 10),
    ModuleRecord("A25-33", "A", "new", "19-45", 2666, 46.25, 4, 4, "x16", 10),
    ModuleRecord("A34-36", "A", "new", "19-51", 2133, 46.5, 8, 8, "x8", 10),
    ModuleRecord("A37-46", "A", "new", "20-07", 2400, 46.16, 8, 8, "x8", 12.5),
    ModuleRecord("A47-58", "A", "new", "20-08", 2133, 46.5, 4, 8, "x8", 10),
    ModuleRecord("B0-2", "B", "old", None, 2133, 46.5, 4, 8, "x8", 30),
    ModuleRecord("B3-4", "B", "new", None, 2133, 46.5, 4, 8, "x8", 25),
    ModuleRecord("C0-7", "C", "old", "16-48", 2133, 46.5, 4, 8, "x8", 147.5),
    ModuleRecord("C8-17", "C", "old", "17-12", 2133, 46.5, 4, 8, "x8", 87),
    ModuleRecord("C45", "C", "new", "19-01", 2400, 45.75, 8, 8, "x8", 54),
    ModuleRecord("C44", "C", "new", "19-06", 2400, 45.75, 8, 8, "x8", 63),
    ModuleRecord("C34", "C", "new", "19-11", 2400, 45.75, 4, 4, "x16", 62.5),
    ModuleRecord("C35-36", "C", "new", "19-23", 2400, 45.75, 4, 4, "x16", 63),
    ModuleRecord("C37-43", "C", "new", "19-44", 2133, 46.5, 8, 8, "x8", 57.5),
    ModuleRecord("C18-27", "C", "new", "19-48", 2400, 45.75, 8, 8, "x8", 52.5),
    ModuleRecord("C28-33", "C", "new", None, 2666, 46.5, 4, 8, "x4", 40),
)

#: Appendix Table 8: the 60 DDR3 modules (grouped as in the paper).
TABLE8_DDR3_MODULES: Tuple[ModuleRecord, ...] = (
    ModuleRecord("A0", "A", "old", "10-19", 1066, 50.625, 1, 8, "x8", 155),
    ModuleRecord("A1", "A", "old", "10-40", 1333, 49.5, 2, 8, "x8", None),
    ModuleRecord("A2-6", "A", "old", "12-11", 1866, 47.91, 2, 8, "x8", 156),
    ModuleRecord("A7-9", "A", "old", "12-32", 1600, 48.75, 2, 8, "x8", 69.2),
    ModuleRecord("A10-16", "A", "new", "14-16", 1600, 48.75, 4, 8, "x8", 85),
    ModuleRecord("A17-18", "A", "new", "14-26", 1600, 48.75, 2, 4, "x16", 160),
    ModuleRecord("A19", "A", "new", "15-23", 1600, 48.75, 8, 16, "x4", 155),
    ModuleRecord("B0-1", "B", "old", "10-48", 1333, 49.5, 1, 8, "x8", None),
    ModuleRecord("B2-4", "B", "old", "11-42", 1333, 49.5, 2, 8, "x8", None),
    ModuleRecord("B5-6", "B", "old", "12-24", 1600, 48.75, 2, 8, "x8", 157),
    ModuleRecord("B7-10", "B", "old", "13-51", 1600, 48.75, 4, 8, "x8", None),
    ModuleRecord("B11-14", "B", "new", "15-22", 1600, 50.625, 4, 8, "x8", 33.5),
    ModuleRecord("B15-19", "B", "new", "15-25", 1600, 48.75, 2, 4, "x16", 22.4),
    ModuleRecord("C0-6", "C", "old", "10-43", 1333, 49.125, 1, 4, "x16", 155),
    ModuleRecord("C7", "C", "new", "15-04", 1600, 48.75, 4, 8, "x8", None),
    ModuleRecord("C8-12", "C", "new", "15-46", 1600, 48.75, 2, 8, "x8", 33.5),
    ModuleRecord("C13-19", "C", "new", "17-03", 1600, 48.75, 4, 8, "x8", 24),
)


def make_chip(
    type_node: TypeNodeLike,
    manufacturer: str = "A",
    seed: int = 0,
    geometry: Optional[ChipGeometry] = None,
    hcfirst_target: Optional[float] = None,
    chip_id: str = "",
) -> DramChip:
    """Create one simulated chip of a given type-node configuration.

    >>> chip = make_chip("LPDDR4-1y", "A", seed=3)
    >>> chip.profile.type_node.value
    'LPDDR4-1y'
    """
    profile = profile_for(type_node, manufacturer)
    return DramChip(
        profile,
        geometry=geometry,
        seed=seed,
        hcfirst_target=hcfirst_target,
        chip_id=chip_id,
    )


def make_module(
    type_node: TypeNodeLike,
    manufacturer: str = "A",
    num_chips: int = 8,
    seed: int = 0,
    geometry: Optional[ChipGeometry] = None,
    module_id: str = "",
    **metadata,
) -> DramModule:
    """Create a module of ``num_chips`` chips sharing one configuration.

    Each chip receives an independent seed derived from the module seed so
    chips differ in their sampled vulnerability, mirroring chip-to-chip
    variation within a real module.
    """
    profile = profile_for(type_node, manufacturer)
    module_id = module_id or f"{manufacturer}{seed}"
    chips = [
        DramChip(
            profile,
            geometry=geometry,
            seed=derive_seed(seed, module_id, index),
            chip_id=f"{module_id}.{index}",
        )
        for index in range(num_chips)
    ]
    return DramModule(module_id=module_id, profile=profile, chips=chips, **metadata)


def make_population(
    chips_per_config: Optional[int] = None,
    seed: int = 0,
    geometry: Optional[ChipGeometry] = None,
    configurations: Optional[Sequence[Tuple[TypeNodeLike, str]]] = None,
) -> Dict[Tuple[TypeNode, str], List[DramChip]]:
    """Create a population of chips per type-node configuration.

    Parameters
    ----------
    chips_per_config:
        Number of chips to create per configuration.  ``None`` uses the
        paper's full Table 1 chip counts (1580 chips in total), which is
        appropriate for population-statistics benchmarks but slow for
        full characterization.
    seed:
        Top-level seed; every chip derives an independent stream from it.
    geometry:
        Geometry shared by all chips (defaults to the small test geometry).
    configurations:
        Restrict the population to these (type-node, manufacturer) pairs.

    Returns
    -------
    dict mapping ``(TypeNode, manufacturer)`` to the list of chips.
    """
    population: Dict[Tuple[TypeNode, str], List[DramChip]] = {}
    entries: Iterable[PopulationEntry]
    if configurations is not None:
        wanted = {
            (TypeNode(tn) if isinstance(tn, str) else tn, mfr) for tn, mfr in configurations
        }
        entries = [e for e in TABLE1_POPULATION if (e.type_node, e.manufacturer) in wanted]
    else:
        entries = TABLE1_POPULATION
    for entry in entries:
        count = entry.chips if chips_per_config is None else chips_per_config
        profile = profile_for(entry.type_node, entry.manufacturer)
        chips = [
            DramChip(
                profile,
                geometry=geometry,
                seed=derive_seed(seed, entry.type_node.value, entry.manufacturer, index),
                chip_id=f"{entry.type_node.value}-{entry.manufacturer}-{index}",
            )
            for index in range(count)
        ]
        population[(entry.type_node, entry.manufacturer)] = chips
    return population


def flatten_population(
    population: Mapping[Tuple[TypeNode, str], Sequence[DramChip]],
) -> List[DramChip]:
    """Flatten a :func:`make_population` dict into one ordered chip list.

    Chips appear in configuration order (Table 1 order for a full
    population) then chip order, which is the canonical population order
    used by :class:`repro.experiments.session.ExperimentSession`.
    """
    chips: List[DramChip] = []
    for config_chips in population.values():
        chips.extend(config_chips)
    return chips


def population_summary() -> Dict[str, Dict[str, Tuple[int, int]]]:
    """Summarize Table 1 as ``{type_node: {manufacturer: (chips, modules)}}``."""
    summary: Dict[str, Dict[str, Tuple[int, int]]] = {}
    for entry in TABLE1_POPULATION:
        summary.setdefault(entry.type_node.value, {})[entry.manufacturer] = (
            entry.chips,
            entry.modules,
        )
    return summary
