"""Columnar (structure-of-arrays) per-bank chip state.

The behavioural chip model used to keep per-row Python dicts -- one
``_RowState`` object per written row, one float per exposed wordline.  At
population scale (Table 1 is 1580 chips) that made every hammer a chain of
dict lookups.  This module holds the columnar replacement: one
:class:`BankColumns` per touched bank, with whole-bank numpy arrays that
``activate`` / ``hammer_pair`` / ``refresh_all`` operate on as single
vectorized ops.

Bit-identity contract
---------------------
Every stochastic stream is sampled *per row* from its own generator
(``make_rng(seed, kind, bank, row[, epoch])``), exactly as the dict-based
implementation did.  Because the streams are independent, materializing a
row's thresholds into ``BankColumns.thresholds[row]`` lazily -- in whatever
order rows happen to be touched -- produces bit-identical values to the
old per-row dict cache.  The module-level ``sample_*_row`` helpers are the
single source of truth for those draws; :class:`~repro.dram.chip.DramChip`
and :class:`~repro.dram.population.ChipPopulation` both call them, which is
what keeps the object-at-a-time view and the fused population arrays
bit-identical by construction (and what the differential suite pins).

Array layout (per bank; ``R`` rows, ``B`` row bits, ``W`` wordlines)
--------------------------------------------------------------------
``bits``              (R, B)  uint8    stored data bits (zeros until written)
``check_bits``        (R, K)  uint8    on-die ECC check bits (ECC chips only)
``written``           (R,)    bool     row has been written at least once
``epoch``             (R,)    int64    refresh epoch (increments on write/refresh)
``exposure``          (W,)    float64  accumulated weighted disturbance
``exposure_present``  (W,)    bool     wordline has an exposure entry (pristine
                                       tracking mirrors the old dict's *key
                                       presence*, including zero-valued keys)
``thresholds``        (R, B)  float64  base per-cell flip thresholds (lazy)
``req_victim`` /
``req_aggressor`` /
``req_parity``        (R, B)  uint8    coupling-class requirements (lazy)
``noise``             (R, B)  float64  per-epoch threshold jitter (lazy,
                                       valid where ``noise_epoch == epoch``)
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import make_rng


def sample_threshold_row(
    seed: int,
    bank: int,
    row: int,
    row_bits: int,
    scale: float,
    slope: float,
    floor: float,
    planted_cell: Tuple[int, int, int],
) -> np.ndarray:
    """Base per-cell thresholds of one logical row (exposure units).

    Inverse transform of ``P(T <= e) = scale * e**slope`` (capped at 1),
    floored at the planted weakest cell's threshold; the planted cell itself
    receives exactly the floor.
    """
    rng = make_rng(seed, "thresholds", bank, row)
    uniform = rng.random(row_bits)
    thresholds = (uniform / scale) ** (1.0 / slope)
    np.maximum(thresholds, floor, out=thresholds)
    planted_bank, planted_row, planted_column = planted_cell
    if (bank, row) == (planted_bank, planted_row):
        thresholds[planted_column] = floor
    return thresholds


def sample_class_row(
    seed: int,
    bank: int,
    row: int,
    row_bits: int,
    profile,
    planted_cell: Tuple[int, int, int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Coupling-class requirement arrays of one logical row.

    Returns ``(required_victim_bit, required_aggressor_bit, required_parity)``
    with 2 in ``required_parity`` meaning "any column".  The planted weakest
    cell is forced into the profile's dominant class so the chip's worst-case
    data pattern always exposes it.
    """
    rng = make_rng(seed, "classes", bank, row)
    probabilities = profile.class_probabilities()
    class_indices = rng.choice(len(probabilities), size=row_bits, p=probabilities)
    required_victim = np.empty(row_bits, dtype=np.uint8)
    required_aggressor = np.empty(row_bits, dtype=np.uint8)
    required_parity = np.empty(row_bits, dtype=np.uint8)
    for index, cls in enumerate(profile.coupling_classes):
        mask = class_indices == index
        required_victim[mask] = cls.victim_bit
        required_aggressor[mask] = cls.aggressor_bit
        required_parity[mask] = 2 if cls.column_parity is None else cls.column_parity
    planted_bank, planted_row, planted_column = planted_cell
    if (bank, row) == (planted_bank, planted_row):
        dominant = profile.coupling_classes[0]
        required_victim[planted_column] = dominant.victim_bit
        required_aggressor[planted_column] = dominant.aggressor_bit
        required_parity[planted_column] = (
            2 if dominant.column_parity is None else dominant.column_parity
        )
    return required_victim, required_aggressor, required_parity


def sample_noise_row(
    seed: int, bank: int, row: int, epoch: int, row_bits: int, sigma: float
) -> np.ndarray:
    """Multiplicative per-refresh-epoch threshold jitter of one logical row."""
    rng = make_rng(seed, "noise", bank, row, epoch)
    return np.exp(rng.normal(0.0, sigma, row_bits))


class BankColumns:
    """Structure-of-arrays state of one bank of one chip.

    Data arrays (``bits`` .. ``exposure_present``) are allocated eagerly --
    they are touched by the first write or activation that creates the bank.
    Calibration arrays (thresholds, classes, noise) are allocated on first
    use and filled row-by-row on demand via the ``*_for`` accessors, so a
    chip that only ever hammers a few rows samples no more generator streams
    than the dict implementation did.
    """

    __slots__ = (
        "bank",
        "rows",
        "row_bits",
        "bits",
        "check_bits",
        "written",
        "epoch",
        "exposure",
        "exposure_present",
        "thresholds",
        "thr_sampled",
        "req_victim",
        "req_aggressor",
        "req_parity",
        "cls_sampled",
        "noise",
        "noise_epoch",
    )

    def __init__(
        self, bank: int, rows: int, row_bits: int, wordlines: int, check_bits_per_row: int
    ) -> None:
        self.bank = bank
        self.rows = rows
        self.row_bits = row_bits
        self.bits = np.zeros((rows, row_bits), dtype=np.uint8)
        self.check_bits: Optional[np.ndarray] = (
            np.zeros((rows, check_bits_per_row), dtype=np.uint8)
            if check_bits_per_row
            else None
        )
        self.written = np.zeros(rows, dtype=bool)
        self.epoch = np.zeros(rows, dtype=np.int64)
        self.exposure = np.zeros(wordlines, dtype=np.float64)
        self.exposure_present = np.zeros(wordlines, dtype=bool)
        self.thresholds: Optional[np.ndarray] = None
        self.thr_sampled = np.zeros(rows, dtype=bool)
        self.req_victim: Optional[np.ndarray] = None
        self.req_aggressor: Optional[np.ndarray] = None
        self.req_parity: Optional[np.ndarray] = None
        self.cls_sampled = np.zeros(rows, dtype=bool)
        self.noise: Optional[np.ndarray] = None
        self.noise_epoch: Optional[np.ndarray] = None

    @property
    def touched(self) -> bool:
        """Whether any observable state exists (written rows or exposure keys)."""
        return bool(self.written.any() or self.exposure_present.any())

    # ------------------------------------------------------------------
    # Lazy calibration columns
    # ------------------------------------------------------------------
    def thresholds_for(
        self,
        rows_idx: np.ndarray,
        *,
        seed: int,
        scale: float,
        slope: float,
        floor: float,
        planted_cell: Tuple[int, int, int],
    ) -> np.ndarray:
        """Base thresholds for a set of rows, sampling missing rows on demand."""
        if self.thresholds is None:
            self.thresholds = np.empty((self.rows, self.row_bits), dtype=np.float64)
        for row in rows_idx:
            row = int(row)
            if not self.thr_sampled[row]:
                self.thresholds[row] = sample_threshold_row(
                    seed, self.bank, row, self.row_bits, scale, slope, floor, planted_cell
                )
                self.thr_sampled[row] = True
        return self.thresholds[rows_idx]

    def classes_for(
        self,
        rows_idx: np.ndarray,
        *,
        seed: int,
        profile,
        planted_cell: Tuple[int, int, int],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Coupling-class requirements for a set of rows (lazy per row)."""
        if self.req_victim is None:
            self.req_victim = np.empty((self.rows, self.row_bits), dtype=np.uint8)
            self.req_aggressor = np.empty((self.rows, self.row_bits), dtype=np.uint8)
            self.req_parity = np.empty((self.rows, self.row_bits), dtype=np.uint8)
        for row in rows_idx:
            row = int(row)
            if not self.cls_sampled[row]:
                rv, ra, rp = sample_class_row(
                    seed, self.bank, row, self.row_bits, profile, planted_cell
                )
                self.req_victim[row] = rv
                self.req_aggressor[row] = ra
                self.req_parity[row] = rp
                self.cls_sampled[row] = True
        return (
            self.req_victim[rows_idx],
            self.req_aggressor[rows_idx],
            self.req_parity[rows_idx],
        )

    def noise_for(self, rows_idx: np.ndarray, *, seed: int, sigma: float) -> np.ndarray:
        """Per-epoch threshold jitter for a set of rows.

        A row's cached noise is valid while its refresh epoch is unchanged
        (epochs only ever increase, so an epoch never needs two samples --
        the same invariant the dict-based ``(epoch, noise)`` cache relied
        on).
        """
        if self.noise is None:
            self.noise = np.empty((self.rows, self.row_bits), dtype=np.float64)
            self.noise_epoch = np.full(self.rows, -1, dtype=np.int64)
        for row in rows_idx:
            row = int(row)
            epoch = int(self.epoch[row])
            if self.noise_epoch[row] != epoch:
                self.noise[row] = sample_noise_row(
                    seed, self.bank, row, epoch, self.row_bits, sigma
                )
                self.noise_epoch[row] = epoch
        return self.noise[rows_idx]
