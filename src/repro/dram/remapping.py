"""Logical-to-physical DRAM-internal row address remapping.

DRAM manufacturers remap the row addresses the memory controller sees
(logical rows) onto physical wordlines in undocumented, confidential ways
(paper Section 4.3).  The paper reverse-engineers these mappings by
exploiting the fact that hammering a row disturbs its physical neighbours.

Three remapping schemes are modelled:

* :class:`IdentityRemapper` -- logical row N maps to physical wordline N
  (the common case for the paper's DDR3/DDR4 chips).
* :class:`XorRemapper` -- a low address bit is XOR-folded, swapping pairs of
  logical rows (a simple scrambling scheme seen in some devices).
* :class:`PairedWordlineRemapper` -- every pair of consecutive logical rows
  shares one internal wordline, which is what the paper observes in
  manufacturer B's LPDDR4-1x chips: hammering logical rows N-2 and N+2 is
  required to double-side-hammer logical row N, and bit flips appear in the
  four logically adjacent rows.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List


class RowRemapper(ABC):
    """Maps logical row numbers (as seen by the memory controller) to
    physical wordline indices inside the DRAM array."""

    #: short identifier used by profiles / population tables
    name: str = "abstract"

    @abstractmethod
    def logical_to_physical(self, logical_row: int) -> int:
        """Return the physical wordline index for a logical row."""

    @abstractmethod
    def physical_to_logical(self, physical_row: int) -> List[int]:
        """Return all logical rows that map onto a physical wordline."""

    def num_wordlines(self, rows_per_bank: int) -> int:
        """Number of physical wordlines backing ``rows_per_bank`` logical rows."""
        return rows_per_bank

    def aggressors_for(self, victim_logical_row: int) -> List[int]:
        """Logical rows to activate for a worst-case double-sided hammer of
        ``victim_logical_row``.

        These are the logical rows whose physical wordlines are immediately
        adjacent to the victim's physical wordline.
        """
        physical = self.logical_to_physical(victim_logical_row)
        aggressors: List[int] = []
        for neighbour in (physical - 1, physical + 1):
            for logical in self.physical_to_logical(neighbour):
                if logical not in aggressors:
                    aggressors.append(logical)
        return aggressors

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"


class IdentityRemapper(RowRemapper):
    """Logical row N is physical wordline N."""

    name = "identity"

    def logical_to_physical(self, logical_row: int) -> int:
        return logical_row

    def physical_to_logical(self, physical_row: int) -> List[int]:
        return [physical_row]


class XorRemapper(RowRemapper):
    """Swap logical rows in pairs by XOR-ing a low address bit.

    With ``xor_bit = 1`` logical rows ``(2, 3)`` map to physical wordlines
    ``(3, 2)``; the mapping is its own inverse.
    """

    name = "xor"

    def __init__(self, xor_bit: int = 1) -> None:
        if xor_bit <= 0:
            raise ValueError("xor_bit must be a positive bit mask")
        self._mask = xor_bit

    def logical_to_physical(self, logical_row: int) -> int:
        return logical_row ^ self._mask

    def physical_to_logical(self, physical_row: int) -> List[int]:
        return [physical_row ^ self._mask]


class PairedWordlineRemapper(RowRemapper):
    """Every two consecutive logical rows share one physical wordline.

    Logical rows ``2k`` and ``2k + 1`` both map onto physical wordline ``k``.
    Activating either logical row activates the shared wordline, so a victim
    at logical row N must be hammered by activating logical rows N - 2 and
    N + 2 (paper Section 4.3, manufacturer B LPDDR4-1x).
    """

    name = "paired"

    def logical_to_physical(self, logical_row: int) -> int:
        return logical_row // 2

    def physical_to_logical(self, physical_row: int) -> List[int]:
        return [physical_row * 2, physical_row * 2 + 1]

    def num_wordlines(self, rows_per_bank: int) -> int:
        return (rows_per_bank + 1) // 2


_REMAPPERS = {
    IdentityRemapper.name: IdentityRemapper,
    XorRemapper.name: XorRemapper,
    PairedWordlineRemapper.name: PairedWordlineRemapper,
}


def remapper_for(name: str) -> RowRemapper:
    """Instantiate a remapper by its registry name.

    >>> remapper_for("identity").logical_to_physical(7)
    7
    """
    try:
        return _REMAPPERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown remapper {name!r}; available: {sorted(_REMAPPERS)}"
        ) from None
