"""Behavioural DRAM device substrate with a circuit-level RowHammer model.

This package replaces the 1580 real DRAM chips characterized by the paper
with a calibrated stochastic device model (see DESIGN.md section 2).  The
observable interface of a :class:`~repro.dram.chip.DramChip` is the same set
of operations the paper's testing infrastructure performs on real chips:
write a row, activate (hammer) a row, refresh, and read a row back.

Columnar state layout
---------------------
Chip state is *columnar* (structure-of-arrays): each touched bank owns one
:class:`~repro.dram.columnar.BankColumns` whose whole-bank numpy arrays are
what the hammer/refresh kernels operate on --

* ``bits (rows, row_bits)`` and ``check_bits (rows, check_bits_per_row)``
  hold the stored data and on-die-ECC check bits of every row;
* ``written (rows,)`` / ``epoch (rows,)`` track which rows hold data and
  their refresh epoch (the key for per-epoch threshold noise);
* ``exposure (wordlines,)`` accumulates weighted disturbance per physical
  wordline, with ``exposure_present`` recording which wordlines have an
  exposure entry at all (the old implementation tracked this as dict-key
  presence; ``is_pristine`` is exactly "no written rows and no exposure
  entries");
* thresholds, coupling-class requirements, and per-epoch noise are lazily
  sampled ``(rows, row_bits)`` matrices, one independent RNG stream per
  row, so any access order yields the same values.

One ``activate`` / ``hammer_pair`` disturbs every victim row of the blast
radius in a single vectorized op, and
:class:`~repro.dram.population.ChipPopulation` extends the same arrays
with a leading chip axis to hammer a whole Table 1 population at once.

The pre-refactor object-at-a-time API is preserved as thin views:
``write_row`` / ``read_row`` index single rows of the arrays, and the
``chip._rows`` mapping used by white-box tests yields live row views whose
``bits`` / ``check_bits`` / ``epoch`` read (and, for ``bits``, write)
through to the columns.  :class:`~repro.dram.reference.ReferenceDramChip`
retains the original dict-of-rows implementation as the oracle the
differential suite pins the vectorized kernels against, and
:func:`~repro.dram.chip.state_digest` hashes any backend's observable raw
state for those comparisons.
"""

from repro.dram.spec import DramType, DramTypeSpec, SPECS, spec_for
from repro.dram.geometry import ChipGeometry, RowAddress
from repro.dram.remapping import (
    RowRemapper,
    IdentityRemapper,
    PairedWordlineRemapper,
    XorRemapper,
    remapper_for,
)
from repro.dram.vulnerability import (
    CouplingClass,
    VulnerabilityProfile,
    PROFILES,
    profile_for,
    TypeNode,
)
from repro.dram.chip import DramChip, state_digest
from repro.dram.reference import ReferenceDramChip
from repro.dram.module import DramModule
from repro.dram.population import (
    ChipPopulation,
    make_chip,
    make_module,
    make_population,
    PopulationEntry,
)

__all__ = [
    "DramType",
    "DramTypeSpec",
    "SPECS",
    "spec_for",
    "ChipGeometry",
    "RowAddress",
    "RowRemapper",
    "IdentityRemapper",
    "PairedWordlineRemapper",
    "XorRemapper",
    "remapper_for",
    "CouplingClass",
    "VulnerabilityProfile",
    "PROFILES",
    "profile_for",
    "TypeNode",
    "DramChip",
    "ReferenceDramChip",
    "state_digest",
    "ChipPopulation",
    "DramModule",
    "make_chip",
    "make_module",
    "make_population",
    "PopulationEntry",
]
