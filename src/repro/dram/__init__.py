"""Behavioural DRAM device substrate with a circuit-level RowHammer model.

This package replaces the 1580 real DRAM chips characterized by the paper
with a calibrated stochastic device model (see DESIGN.md section 2).  The
observable interface of a :class:`~repro.dram.chip.DramChip` is the same set
of operations the paper's testing infrastructure performs on real chips:
write a row, activate (hammer) a row, refresh, and read a row back.
"""

from repro.dram.spec import DramType, DramTypeSpec, SPECS, spec_for
from repro.dram.geometry import ChipGeometry, RowAddress
from repro.dram.remapping import (
    RowRemapper,
    IdentityRemapper,
    PairedWordlineRemapper,
    XorRemapper,
    remapper_for,
)
from repro.dram.vulnerability import (
    CouplingClass,
    VulnerabilityProfile,
    PROFILES,
    profile_for,
    TypeNode,
)
from repro.dram.chip import DramChip
from repro.dram.module import DramModule
from repro.dram.population import make_chip, make_module, make_population, PopulationEntry

__all__ = [
    "DramType",
    "DramTypeSpec",
    "SPECS",
    "spec_for",
    "ChipGeometry",
    "RowAddress",
    "RowRemapper",
    "IdentityRemapper",
    "PairedWordlineRemapper",
    "XorRemapper",
    "remapper_for",
    "CouplingClass",
    "VulnerabilityProfile",
    "PROFILES",
    "profile_for",
    "TypeNode",
    "DramChip",
    "DramModule",
    "make_chip",
    "make_module",
    "make_population",
    "PopulationEntry",
]
