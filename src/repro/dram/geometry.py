"""Chip geometry and row addressing.

A simulated chip is deliberately much smaller than a real device (a real
LPDDR4 die has billions of cells); the vulnerability model calibrates the
per-cell threshold distribution to the simulated cell count so the chip-level
observables (``HC_first`` and friends) remain meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChipGeometry:
    """Dimensions of a simulated DRAM chip.

    Attributes
    ----------
    banks:
        Number of independent banks.
    rows_per_bank:
        Number of DRAM rows (wordlines) per bank.
    row_bytes:
        Row size in bytes.
    """

    banks: int
    rows_per_bank: int
    row_bytes: int

    def __post_init__(self) -> None:
        if self.banks <= 0:
            raise ValueError("banks must be positive")
        if self.rows_per_bank <= 0:
            raise ValueError("rows_per_bank must be positive")
        if self.row_bytes <= 0 or self.row_bytes % 8 != 0:
            raise ValueError("row_bytes must be a positive multiple of 8")

    @property
    def row_bits(self) -> int:
        """Number of cells (bits) per row."""
        return self.row_bytes * 8

    @property
    def total_rows(self) -> int:
        """Total rows in the chip."""
        return self.banks * self.rows_per_bank

    @property
    def total_cells(self) -> int:
        """Total cells (bits) in the chip."""
        return self.total_rows * self.row_bits

    def validate_address(self, bank: int, row: int) -> None:
        """Raise :class:`IndexError` if (bank, row) is out of range."""
        if not 0 <= bank < self.banks:
            raise IndexError(f"bank {bank} out of range [0, {self.banks})")
        if not 0 <= row < self.rows_per_bank:
            raise IndexError(f"row {row} out of range [0, {self.rows_per_bank})")


@dataclass(frozen=True, order=True)
class RowAddress:
    """A (bank, row) pair identifying one DRAM row within a chip."""

    bank: int
    row: int

    def offset(self, delta: int) -> "RowAddress":
        """Return the row address ``delta`` rows away within the same bank."""
        return RowAddress(self.bank, self.row + delta)
