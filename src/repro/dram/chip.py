"""Behavioural DRAM chip model with circuit-level RowHammer disturbance.

A :class:`DramChip` exposes the same observable operations the paper's test
infrastructure performs against real chips:

* ``write_row`` / ``read_row`` -- store and retrieve row data (the read path
  goes through on-die ECC for LPDDR4 chips, which cannot be disabled);
* ``activate`` -- open a row, disturbing physically nearby rows;
* ``hammer_pair`` -- bulk double-sided hammering (the worst-case access
  sequence of Section 4.3);
* ``refresh_row`` / ``refresh_all`` -- restore cell charge, resetting the
  accumulated disturbance;
* ``write_rows`` / ``read_rows`` / ``read_rows_raw`` -- batch counterparts
  that move whole row-lists in one vectorized payload, the way the FPGA
  testers the paper builds on batch row programs to the board.

Disturbance model
-----------------
Each activation of a physical wordline adds *weighted exposure* to nearby
wordlines according to the profile's ``distance_coupling``.  A cell flips
once the accumulated exposure of its wordline (since the last refresh or
activation of that wordline) reaches the cell's sampled threshold *and* the
stored data matches the cell's coupling class (see
:mod:`repro.dram.vulnerability`).  Flipped cells stay flipped until the row
is rewritten; refreshing a row resets its exposure but cannot recover a bit
that has already flipped, exactly as in a real device.

State layout
------------
Chip state is columnar: each touched bank owns one
:class:`~repro.dram.columnar.BankColumns` of whole-bank numpy arrays (bits,
refresh epochs, wordline exposure, lazily sampled thresholds / coupling
classes / noise), so an aggressor application disturbs every victim row of
the blast radius in one vectorized op instead of per-row dict updates.  The
legacy per-row mapping survives as the read/write *view* ``chip._rows``
(used by white-box tests), and :class:`~repro.dram.reference.ReferenceDramChip`
retains the original dict-of-rows implementation as the bit-identity oracle
for the differential suite.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dram.columnar import BankColumns
from repro.dram.geometry import ChipGeometry
from repro.dram.remapping import RowRemapper, remapper_for
from repro.dram.spec import DramTypeSpec, spec_for
from repro.dram.vulnerability import VulnerabilityProfile
from repro.ecc.ondie import OnDieEcc
from repro.utils.rng import make_rng

#: Default geometry used when none is supplied: small enough that exhaustive
#: characterization sweeps finish quickly, large enough for meaningful
#: per-word and spatial statistics.
DEFAULT_GEOMETRY = ChipGeometry(banks=1, rows_per_bank=128, row_bytes=64)

RowData = Union[int, bytes, bytearray, np.ndarray]


@dataclass
class ChipStats:
    """Cumulative operation counters for one chip."""

    activations: int = 0
    refreshes: int = 0
    row_writes: int = 0
    row_reads: int = 0
    bit_flips_induced: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.activations = 0
        self.refreshes = 0
        self.row_writes = 0
        self.row_reads = 0
        self.bit_flips_induced = 0

    def merge(self, other: "ChipStats") -> None:
        """Add another counter set into this one.

        Used by the experiment executors, which run studies against a copy
        of the chip and fold the copy's counters back into the original.
        """
        self.activations += other.activations
        self.refreshes += other.refreshes
        self.row_writes += other.row_writes
        self.row_reads += other.row_reads
        self.bit_flips_induced += other.bit_flips_induced


class _RowStateView:
    """Live view of one written row's storage.

    Mirrors the old per-row ``_RowState`` object: ``bits`` is a writable
    view into the bank's bit matrix (white-box tests flip bits through it),
    ``check_bits`` / ``epoch`` read the corresponding columns.
    """

    __slots__ = ("_columns", "_row")

    def __init__(self, columns: BankColumns, row: int) -> None:
        self._columns = columns
        self._row = row

    @property
    def bits(self) -> np.ndarray:
        return self._columns.bits[self._row]

    @property
    def check_bits(self) -> Optional[np.ndarray]:
        if self._columns.check_bits is None:
            return None
        return self._columns.check_bits[self._row]

    @property
    def epoch(self) -> int:
        return int(self._columns.epoch[self._row])


class _RowsView:
    """Read-only mapping facade over the written rows of all banks.

    Keyed by ``(bank, row)`` like the old ``_rows`` dict; raises ``KeyError``
    for rows that have never been written.
    """

    __slots__ = ("_chip",)

    def __init__(self, chip: "DramChip") -> None:
        self._chip = chip

    def __getitem__(self, key: Tuple[int, int]) -> _RowStateView:
        bank, row = key
        columns = self._chip._banks.get(bank)
        if columns is None or not columns.written[row]:
            raise KeyError(key)
        return _RowStateView(columns, int(row))

    def get(self, key: Tuple[int, int], default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return self.get(key) is not None

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        for bank, columns in sorted(self._chip._banks.items()):
            for row in np.nonzero(columns.written)[0]:
                yield (bank, int(row))

    def __len__(self) -> int:
        return sum(
            int(columns.written.sum()) for columns in self._chip._banks.values()
        )

    def __bool__(self) -> bool:
        return any(columns.written.any() for columns in self._chip._banks.values())


class _CalibratedChip:
    """Construction-time calibration shared by every chip backend.

    Owns everything a chip *is* before any operation touches it: profile,
    geometry, remapper, on-die ECC, the sampled ``HC_first`` target, the
    derived threshold power-law scale/floor, and the planted weakest cell.
    Subclasses supply the state representation and the disturb kernel
    (:class:`DramChip` columnar arrays,
    :class:`~repro.dram.reference.ReferenceDramChip` per-row dicts).
    """

    #: Hammer-count ceiling used by the paper's characterization (Section 5.1).
    TEST_LIMIT_HC = 150_000

    def __init__(
        self,
        profile: VulnerabilityProfile,
        geometry: Optional[ChipGeometry] = None,
        seed: int = 0,
        hcfirst_target: Optional[float] = None,
        chip_id: str = "",
    ) -> None:
        self.profile = profile
        self.geometry = geometry or DEFAULT_GEOMETRY
        self.seed = seed
        self.chip_id = chip_id or f"{profile.type_node.value}-{profile.manufacturer}-{seed}"
        self.spec: DramTypeSpec = spec_for(profile.dram_type)
        self.remapper: RowRemapper = remapper_for(profile.remapper_name)
        self.stats = ChipStats()

        self._ondie_ecc: Optional[OnDieEcc] = None
        if profile.on_die_ecc:
            self._ondie_ecc = OnDieEcc(word_data_bits=128)
            # Validate the geometry against the ECC word size early.
            self._ondie_ecc.words_per_row(self.geometry.row_bits)

        chip_rng = make_rng(seed, "chip", profile.type_node.value, profile.manufacturer)
        if hcfirst_target is not None:
            self._hcfirst_target = float(hcfirst_target)
        else:
            sampled = profile.sample_chip_hcfirst(chip_rng)
            if sampled is None:
                # Not RowHammerable below the test limit: place the weakest
                # cell safely above 150k hammers.
                self._hcfirst_target = float(chip_rng.uniform(160_000.0, 500_000.0))
            else:
                self._hcfirst_target = float(sampled)
        # On-die ECC hides the first raw bit flip in every 128-bit word, so a
        # chip whose *visible* HC_first should equal the target needs its raw
        # (pre-ECC) weakest cell to fail earlier: roughly at the point where a
        # second flip is expected to land in some already-flipped word (a
        # birthday-bound argument over the chip's ECC words).
        calibration_target = self._hcfirst_target
        if self._ondie_ecc is not None:
            words = self.geometry.total_cells / self._ondie_ecc.word_data_bits
            masking_factor = (2.0 * math.log(2.0) * words) ** (
                1.0 / (2.0 * profile.flip_slope)
            )
            calibration_target = self._hcfirst_target / masking_factor
        self._threshold_scale = profile.threshold_scale(
            calibration_target, self.geometry.total_cells
        )
        # The chip's weakest cell is planted explicitly: one deterministic
        # cell receives exactly the target threshold and no sampled threshold
        # may fall below it.  This pins the chip's measured HC_first to its
        # sampled target (the sampled power-law tail would otherwise make the
        # measured minimum a noisy random variable), while leaving the
        # flip-count-versus-HC curve above HC_first unchanged.
        self._threshold_floor = 2.0 * calibration_target
        self._planted_cell = self._choose_planted_cell(chip_rng)
        self._column_parity = (np.arange(self.geometry.row_bits) % 2).astype(np.uint8)

    def _choose_planted_cell(self, rng) -> Tuple[int, int, int]:
        """Pick the (bank, row, column) of the chip's weakest cell.

        The row is kept away from the bank edges so the cell is always
        exercised by a full double-sided hammer, and the column respects the
        dominant coupling class's column-parity requirement so the cell is
        exposed by the chip's worst-case data pattern.
        """
        margin = (self.profile.blast_radius + 2) * (
            2 if self.remapper.name == "paired" else 1
        )
        rows = self.geometry.rows_per_bank
        if rows > 2 * margin + 1:
            row = int(rng.integers(margin, rows - margin))
        else:
            row = rows // 2
        bank = int(rng.integers(0, self.geometry.banks))
        dominant = self.profile.coupling_classes[0]
        column = int(rng.integers(0, self.geometry.row_bits))
        if dominant.column_parity is not None and column % 2 != dominant.column_parity:
            column = (column + 1) % self.geometry.row_bits
        return (bank, row, column)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hcfirst_target(self) -> float:
        """The chip's sampled target ``HC_first`` in hammers."""
        return self._hcfirst_target

    @property
    def weakest_cell(self) -> Tuple[int, int, int]:
        """(bank, row, bit index) of the chip's weakest (planted) cell.

        Exposed for calibration tests and examples; a real characterization
        discovers this location through testing (see
        :func:`repro.core.first_flip.find_hcfirst`).
        """
        return self._planted_cell

    @property
    def has_on_die_ecc(self) -> bool:
        """Whether reads pass through an undisableable on-die SEC ECC."""
        return self._ondie_ecc is not None

    def is_rowhammerable(self, hammer_limit: int = TEST_LIMIT_HC) -> bool:
        """Whether the chip's weakest cell is expected to flip within the limit."""
        return self._hcfirst_target <= hammer_limit

    # ------------------------------------------------------------------
    # Shared operation surface (delegates to the backend kernels)
    # ------------------------------------------------------------------
    def fill_bank(self, bank: int, victim_byte: int, aggressor_byte: Optional[int] = None) -> None:
        """Write every row of a bank with a repeated byte pattern.

        When ``aggressor_byte`` is given, rows alternate between the victim
        byte (even physical wordlines) and the aggressor byte (odd physical
        wordlines); this matches how row-stripe and checkered patterns are
        laid out in memory before hammering (Section 4.3).
        """
        rows = range(self.geometry.rows_per_bank)
        if aggressor_byte is None:
            data: List[RowData] = [victim_byte] * self.geometry.rows_per_bank
        else:
            data = [
                victim_byte
                if self.remapper.logical_to_physical(row) % 2 == 0
                else aggressor_byte
                for row in rows
            ]
        self.write_rows(bank, rows, data)

    def activate(self, bank: int, row: int, count: int = 1) -> int:
        """Activate a logical row ``count`` times (single-sided hammering).

        Returns the number of new bit flips induced in neighbouring rows.
        """
        self.geometry.validate_address(bank, row)
        if count <= 0:
            return 0
        self.stats.activations += count
        return self._apply_aggressor(bank, row, count)

    def hammer_pair(self, bank: int, row_a: int, row_b: int, count: int) -> int:
        """Hammer two aggressor rows ``count`` times each (double-sided).

        One *hammer* is one activation of each aggressor (paper Section 4.3),
        so this issues ``2 * count`` activations in total.  Returns the
        number of new bit flips induced.
        """
        self.geometry.validate_address(bank, row_a)
        self.geometry.validate_address(bank, row_b)
        if count <= 0:
            return 0
        self.stats.activations += 2 * count
        flips = self._apply_aggressor(bank, row_a, count)
        flips += self._apply_aggressor(bank, row_b, count)
        return flips

    def _apply_aggressor(self, bank: int, aggressor_row: int, count: int) -> int:
        raise NotImplementedError

    def write_rows(self, bank: int, rows: Sequence[int], data) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _coerce_row_bits(self, data: RowData) -> np.ndarray:
        """Convert supported row-data forms into a bit array."""
        row_bytes = self.geometry.row_bytes
        if isinstance(data, (int, np.integer)):
            if not 0 <= int(data) <= 0xFF:
                raise ValueError("fill byte must be within [0, 255]")
            byte_array = np.full(row_bytes, int(data), dtype=np.uint8)
            return np.unpackbits(byte_array)
        array = np.asarray(bytearray(data) if isinstance(data, (bytes, bytearray)) else data)
        array = array.astype(np.uint8)
        if array.size == row_bytes:
            return np.unpackbits(array)
        if array.size == self.geometry.row_bits:
            return array.copy()
        raise ValueError(
            f"row data must be {row_bytes} bytes or {self.geometry.row_bits} bits, "
            f"got {array.size} elements"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}(id={self.chip_id!r}, config={self.profile.type_node.value}/"
            f"{self.profile.manufacturer}, hcfirst_target={self._hcfirst_target:.0f})"
        )


class DramChip(_CalibratedChip):
    """One simulated DRAM chip with a calibrated RowHammer vulnerability.

    Parameters
    ----------
    profile:
        The :class:`~repro.dram.vulnerability.VulnerabilityProfile` of the
        chip's type-node configuration and manufacturer.
    geometry:
        Simulated chip dimensions; defaults to :data:`DEFAULT_GEOMETRY`.
    seed:
        Seed controlling every stochastic aspect of this chip (cell
        thresholds, coupling classes, chip-to-chip variation).
    hcfirst_target:
        Optional override of the chip's target ``HC_first`` in hammers.  When
        omitted it is sampled from the profile; chips the profile deems not
        RowHammerable receive a target above the 150k-hammer test limit.
    chip_id:
        Free-form identifier used in reports.

    State is columnar (:class:`~repro.dram.columnar.BankColumns` per touched
    bank); ``chip._rows`` remains available as a live mapping view for
    white-box tests.
    """

    def __init__(
        self,
        profile: VulnerabilityProfile,
        geometry: Optional[ChipGeometry] = None,
        seed: int = 0,
        hcfirst_target: Optional[float] = None,
        chip_id: str = "",
    ) -> None:
        super().__init__(profile, geometry, seed, hcfirst_target, chip_id)
        self._banks: Dict[int, BankColumns] = {}
        self._num_wordlines = self.remapper.num_wordlines(self.geometry.rows_per_bank)
        self._rows = _RowsView(self)

    def _bank(self, bank: int) -> BankColumns:
        columns = self._banks.get(bank)
        if columns is None:
            check_bits = (
                self._ondie_ecc.check_bits_per_row(self.geometry.row_bits)
                if self._ondie_ecc is not None
                else 0
            )
            columns = BankColumns(
                bank,
                self.geometry.rows_per_bank,
                self.geometry.row_bits,
                self._num_wordlines,
                check_bits,
            )
            self._banks[bank] = columns
        return columns

    @property
    def is_pristine(self) -> bool:
        """Whether the chip is still in its as-constructed state.

        True until the first row write or activation.  A pristine chip's
        observable behaviour is a pure function of its construction
        parameters, which is what lets the experiments result store key
        cached study results by those parameters alone.
        """
        return not any(columns.touched for columns in self._banks.values())

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def write_row(self, bank: int, row: int, data: RowData) -> None:
        """Write a full row.

        ``data`` may be a fill byte (``int``), a byte buffer of exactly
        ``row_bytes`` bytes, or a bit array of ``row_bits`` bits.  Writing a
        row restores its charge: accumulated disturbance on its wordline is
        cleared and any previously flipped cells take the new value.
        """
        self.geometry.validate_address(bank, row)
        bits = self._coerce_row_bits(data)
        columns = self._bank(bank)
        columns.bits[row] = bits
        if self._ondie_ecc is not None:
            columns.check_bits[row] = self._ondie_ecc.encode_row(bits)
        columns.epoch[row] = columns.epoch[row] + 1 if columns.written[row] else 1
        columns.written[row] = True
        wordline = self.remapper.logical_to_physical(row)
        columns.exposure[wordline] = 0.0
        columns.exposure_present[wordline] = True
        self.stats.row_writes += 1

    def write_rows(self, bank: int, rows: Sequence[int], data) -> None:
        """Write a batch of rows in one vectorized payload.

        ``rows`` is a sequence of logical row numbers; ``data`` is either a
        single fill byte applied to every row or a sequence of per-row
        values accepted by :meth:`write_row`.  Semantically identical to
        writing the rows one at a time in order (duplicate rows fall back to
        exactly that).
        """
        rows = [int(row) for row in rows]
        if isinstance(data, (int, np.integer)):
            data = [data] * len(rows)
        if len(data) != len(rows):
            raise ValueError(f"expected {len(rows)} row payloads, got {len(data)}")
        if not rows:
            return
        if len(set(rows)) != len(rows):
            # Later duplicates overwrite earlier ones; keep strict
            # write-at-a-time semantics for that (rare) case.
            for row, row_data in zip(rows, data):
                self.write_row(bank, row, row_data)
            return
        for row in rows:
            self.geometry.validate_address(bank, row)
        bits = np.stack([self._coerce_row_bits(row_data) for row_data in data])
        columns = self._bank(bank)
        index = np.asarray(rows, dtype=np.intp)
        columns.bits[index] = bits
        if self._ondie_ecc is not None:
            columns.check_bits[index] = self._ondie_ecc.encode_row(
                bits.reshape(-1)
            ).reshape(len(rows), -1)
        columns.epoch[index] = np.where(columns.written[index], columns.epoch[index] + 1, 1)
        columns.written[index] = True
        wordlines = np.asarray(
            [self.remapper.logical_to_physical(row) for row in rows], dtype=np.intp
        )
        columns.exposure[wordlines] = 0.0
        columns.exposure_present[wordlines] = True
        self.stats.row_writes += len(rows)

    def read_row(self, bank: int, row: int) -> np.ndarray:
        """Read a row as bytes, through on-die ECC when the chip has it."""
        self.geometry.validate_address(bank, row)
        self.stats.row_reads += 1
        columns = self._banks.get(bank)
        if columns is None or not columns.written[row]:
            return np.zeros(self.geometry.row_bytes, dtype=np.uint8)
        bits = columns.bits[row]
        if self._ondie_ecc is not None and columns.check_bits is not None:
            bits, _corrected = self._ondie_ecc.decode_row(bits, columns.check_bits[row])
        return np.packbits(bits)

    def read_rows(self, bank: int, rows: Sequence[int]) -> np.ndarray:
        """Read a batch of rows as a ``(len(rows), row_bytes)`` byte matrix.

        Equivalent to stacking :meth:`read_row` results (ECC decode is
        batched across the written rows in one call).
        """
        rows = [int(row) for row in rows]
        for row in rows:
            self.geometry.validate_address(bank, row)
        self.stats.row_reads += len(rows)
        out = np.zeros((len(rows), self.geometry.row_bits), dtype=np.uint8)
        columns = self._banks.get(bank)
        if columns is not None and rows:
            index = np.asarray(rows, dtype=np.intp)
            written = np.nonzero(columns.written[index])[0]
            if written.size:
                stored = columns.bits[index[written]]
                if self._ondie_ecc is not None and columns.check_bits is not None:
                    decoded, _corrected = self._ondie_ecc.decode_row(
                        stored.reshape(-1),
                        columns.check_bits[index[written]].reshape(-1),
                    )
                    stored = decoded.reshape(written.size, -1)
                out[written] = stored
        return np.packbits(out, axis=1)

    def read_row_raw(self, bank: int, row: int) -> np.ndarray:
        """Read the raw stored bits of a row, bypassing on-die ECC."""
        self.geometry.validate_address(bank, row)
        columns = self._banks.get(bank)
        if columns is None or not columns.written[row]:
            return np.zeros(self.geometry.row_bits, dtype=np.uint8)
        return columns.bits[row].copy()

    def read_rows_raw(self, bank: int, rows: Sequence[int]) -> np.ndarray:
        """Raw stored bits of a batch of rows as ``(len(rows), row_bits)``."""
        rows = [int(row) for row in rows]
        for row in rows:
            self.geometry.validate_address(bank, row)
        columns = self._banks.get(bank)
        if columns is None:
            return np.zeros((len(rows), self.geometry.row_bits), dtype=np.uint8)
        index = np.asarray(rows, dtype=np.intp)
        out = columns.bits[index].copy()
        out[~columns.written[index]] = 0
        return out

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def refresh_row(self, bank: int, row: int) -> None:
        """Refresh one logical row, clearing its wordline's accumulated exposure."""
        self.geometry.validate_address(bank, row)
        columns = self._banks.get(bank)
        if columns is not None:
            wordline = self.remapper.logical_to_physical(row)
            columns.exposure[wordline] = 0.0
            columns.exposure_present[wordline] = False
            for logical in self.remapper.physical_to_logical(wordline):
                if 0 <= logical < self.geometry.rows_per_bank and columns.written[logical]:
                    columns.epoch[logical] += 1
        self.stats.refreshes += 1

    def refresh_all(self) -> None:
        """Refresh every row in the chip."""
        for columns in self._banks.values():
            columns.exposure.fill(0.0)
            columns.exposure_present.fill(False)
            columns.epoch[columns.written] += 1
        self.stats.refreshes += 1

    # ------------------------------------------------------------------
    # Disturbance kernel
    # ------------------------------------------------------------------
    def _wordline_bits(self, columns: BankColumns, wordline: int) -> np.ndarray:
        """Stored bits of the (first) logical row on a physical wordline."""
        for logical in self.remapper.physical_to_logical(wordline):
            if not 0 <= logical < self.geometry.rows_per_bank:
                continue
            if columns.written[logical]:
                return columns.bits[logical]
            break
        return np.zeros(self.geometry.row_bits, dtype=np.uint8)

    def _apply_aggressor(self, bank: int, aggressor_row: int, count: int) -> int:
        """Apply ``count`` activations of one aggressor row and induce flips.

        All victim rows of the blast radius are disturbed in one vectorized
        op.  Within a single application every victim wordline is distinct
        from every other and from the aggressor wordline, so batching with
        each wordline's post-increment exposure is exactly equivalent to the
        sequential per-wordline walk.
        """
        columns = self._bank(bank)
        aggressor_wordline = self.remapper.logical_to_physical(aggressor_row)
        # Opening the aggressor row restores its own charge.
        columns.exposure[aggressor_wordline] = 0.0
        columns.exposure_present[aggressor_wordline] = True
        aggressor_bits = self._wordline_bits(columns, aggressor_wordline)

        victim_rows: List[int] = []
        victim_exposure: List[float] = []
        for distance, coupling in self.profile.distance_coupling.items():
            for victim_wordline in (
                aggressor_wordline - distance,
                aggressor_wordline + distance,
            ):
                if not 0 <= victim_wordline < self._num_wordlines:
                    continue
                columns.exposure[victim_wordline] += coupling * count
                columns.exposure_present[victim_wordline] = True
                exposure = float(columns.exposure[victim_wordline])
                for logical in self.remapper.physical_to_logical(victim_wordline):
                    if 0 <= logical < self.geometry.rows_per_bank and columns.written[logical]:
                        # A row that has never been written holds no
                        # meaningful data; flips in it would not be
                        # observable, so skip the work.
                        victim_rows.append(logical)
                        victim_exposure.append(exposure)
        if not victim_rows:
            return 0

        index = np.asarray(victim_rows, dtype=np.intp)
        exposure = np.asarray(victim_exposure, dtype=np.float64)
        effective = columns.thresholds_for(
            index,
            seed=self.seed,
            scale=self._threshold_scale,
            slope=self.profile.flip_slope,
            floor=self._threshold_floor,
            planted_cell=self._planted_cell,
        )
        sigma = self.profile.threshold_noise_sigma
        if sigma > 0:
            effective = effective * columns.noise_for(index, seed=self.seed, sigma=sigma)
        eligible = effective <= exposure[:, None]
        if not eligible.any():
            return 0
        required_victim, required_aggressor, required_parity = columns.classes_for(
            index, seed=self.seed, profile=self.profile, planted_cell=self._planted_cell
        )
        match = (
            eligible
            & (columns.bits[index] == required_victim)
            & (aggressor_bits[None, :] == required_aggressor)
            & ((required_parity == 2) | (self._column_parity[None, :] == required_parity))
        )
        flips = int(np.count_nonzero(match))
        if flips:
            # Victim rows within one application are distinct, so the fused
            # gather-xor-scatter cannot double-apply a flip.
            columns.bits[index] = columns.bits[index] ^ match.astype(np.uint8)
        self.stats.bit_flips_induced += flips
        return flips


def state_digest(chip) -> str:
    """Hex digest of a chip's observable raw state.

    Hashes the raw (pre-ECC) stored bits of every row of every bank through
    the public read API, so it is computable for any backend
    (:class:`DramChip`, :class:`~repro.dram.reference.ReferenceDramChip`)
    and identical exactly when their observable states are.  Reads bypass
    the stats counters (``read_row_raw`` does not count), so digesting is
    side-effect-free.
    """
    digest = hashlib.sha256()
    for bank in range(chip.geometry.banks):
        for row in range(chip.geometry.rows_per_bank):
            digest.update(chip.read_row_raw(bank, row).tobytes())
    return digest.hexdigest()
