"""Behavioural DRAM chip model with circuit-level RowHammer disturbance.

A :class:`DramChip` exposes the same observable operations the paper's test
infrastructure performs against real chips:

* ``write_row`` / ``read_row`` -- store and retrieve row data (the read path
  goes through on-die ECC for LPDDR4 chips, which cannot be disabled);
* ``activate`` -- open a row, disturbing physically nearby rows;
* ``hammer_pair`` -- bulk double-sided hammering (the worst-case access
  sequence of Section 4.3);
* ``refresh_row`` / ``refresh_all`` -- restore cell charge, resetting the
  accumulated disturbance.

Disturbance model
-----------------
Each activation of a physical wordline adds *weighted exposure* to nearby
wordlines according to the profile's ``distance_coupling``.  A cell flips
once the accumulated exposure of its wordline (since the last refresh or
activation of that wordline) reaches the cell's sampled threshold *and* the
stored data matches the cell's coupling class (see
:mod:`repro.dram.vulnerability`).  Flipped cells stay flipped until the row
is rewritten; refreshing a row resets its exposure but cannot recover a bit
that has already flipped, exactly as in a real device.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.dram.geometry import ChipGeometry
from repro.dram.remapping import RowRemapper, remapper_for
from repro.dram.spec import DramTypeSpec, spec_for
from repro.dram.vulnerability import VulnerabilityProfile
from repro.ecc.ondie import OnDieEcc
from repro.utils.rng import derive_seed, make_rng

#: Default geometry used when none is supplied: small enough that exhaustive
#: characterization sweeps finish quickly, large enough for meaningful
#: per-word and spatial statistics.
DEFAULT_GEOMETRY = ChipGeometry(banks=1, rows_per_bank=128, row_bytes=64)

RowData = Union[int, bytes, bytearray, np.ndarray]


@dataclass
class ChipStats:
    """Cumulative operation counters for one chip."""

    activations: int = 0
    refreshes: int = 0
    row_writes: int = 0
    row_reads: int = 0
    bit_flips_induced: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.activations = 0
        self.refreshes = 0
        self.row_writes = 0
        self.row_reads = 0
        self.bit_flips_induced = 0

    def merge(self, other: "ChipStats") -> None:
        """Add another counter set into this one.

        Used by the experiment executors, which run studies against a copy
        of the chip and fold the copy's counters back into the original.
        """
        self.activations += other.activations
        self.refreshes += other.refreshes
        self.row_writes += other.row_writes
        self.row_reads += other.row_reads
        self.bit_flips_induced += other.bit_flips_induced


@dataclass
class _RowState:
    """Mutable per-logical-row storage."""

    bits: np.ndarray
    check_bits: Optional[np.ndarray]
    epoch: int = 0


class DramChip:
    """One simulated DRAM chip with a calibrated RowHammer vulnerability.

    Parameters
    ----------
    profile:
        The :class:`~repro.dram.vulnerability.VulnerabilityProfile` of the
        chip's type-node configuration and manufacturer.
    geometry:
        Simulated chip dimensions; defaults to :data:`DEFAULT_GEOMETRY`.
    seed:
        Seed controlling every stochastic aspect of this chip (cell
        thresholds, coupling classes, chip-to-chip variation).
    hcfirst_target:
        Optional override of the chip's target ``HC_first`` in hammers.  When
        omitted it is sampled from the profile; chips the profile deems not
        RowHammerable receive a target above the 150k-hammer test limit.
    chip_id:
        Free-form identifier used in reports.
    """

    #: Hammer-count ceiling used by the paper's characterization (Section 5.1).
    TEST_LIMIT_HC = 150_000

    def __init__(
        self,
        profile: VulnerabilityProfile,
        geometry: Optional[ChipGeometry] = None,
        seed: int = 0,
        hcfirst_target: Optional[float] = None,
        chip_id: str = "",
    ) -> None:
        self.profile = profile
        self.geometry = geometry or DEFAULT_GEOMETRY
        self.seed = seed
        self.chip_id = chip_id or f"{profile.type_node.value}-{profile.manufacturer}-{seed}"
        self.spec: DramTypeSpec = spec_for(profile.dram_type)
        self.remapper: RowRemapper = remapper_for(profile.remapper_name)
        self.stats = ChipStats()

        self._ondie_ecc: Optional[OnDieEcc] = None
        if profile.on_die_ecc:
            self._ondie_ecc = OnDieEcc(word_data_bits=128)
            # Validate the geometry against the ECC word size early.
            self._ondie_ecc.words_per_row(self.geometry.row_bits)

        chip_rng = make_rng(seed, "chip", profile.type_node.value, profile.manufacturer)
        if hcfirst_target is not None:
            self._hcfirst_target = float(hcfirst_target)
        else:
            sampled = profile.sample_chip_hcfirst(chip_rng)
            if sampled is None:
                # Not RowHammerable below the test limit: place the weakest
                # cell safely above 150k hammers.
                self._hcfirst_target = float(chip_rng.uniform(160_000.0, 500_000.0))
            else:
                self._hcfirst_target = float(sampled)
        # On-die ECC hides the first raw bit flip in every 128-bit word, so a
        # chip whose *visible* HC_first should equal the target needs its raw
        # (pre-ECC) weakest cell to fail earlier: roughly at the point where a
        # second flip is expected to land in some already-flipped word (a
        # birthday-bound argument over the chip's ECC words).
        calibration_target = self._hcfirst_target
        if self._ondie_ecc is not None:
            words = self.geometry.total_cells / self._ondie_ecc.word_data_bits
            masking_factor = (2.0 * math.log(2.0) * words) ** (
                1.0 / (2.0 * profile.flip_slope)
            )
            calibration_target = self._hcfirst_target / masking_factor
        self._threshold_scale = profile.threshold_scale(
            calibration_target, self.geometry.total_cells
        )
        # The chip's weakest cell is planted explicitly: one deterministic
        # cell receives exactly the target threshold and no sampled threshold
        # may fall below it.  This pins the chip's measured HC_first to its
        # sampled target (the sampled power-law tail would otherwise make the
        # measured minimum a noisy random variable), while leaving the
        # flip-count-versus-HC curve above HC_first unchanged.
        self._threshold_floor = 2.0 * calibration_target
        self._planted_cell = self._choose_planted_cell(chip_rng)

        self._rows: Dict[Tuple[int, int], _RowState] = {}
        self._exposure: Dict[Tuple[int, int], float] = {}
        self._thresholds: Dict[Tuple[int, int], np.ndarray] = {}
        self._classes: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._noise_cache: Dict[Tuple[int, int], Tuple[int, np.ndarray]] = {}
        self._column_parity = (np.arange(self.geometry.row_bits) % 2).astype(np.uint8)

    def _choose_planted_cell(self, rng) -> Tuple[int, int, int]:
        """Pick the (bank, row, column) of the chip's weakest cell.

        The row is kept away from the bank edges so the cell is always
        exercised by a full double-sided hammer, and the column respects the
        dominant coupling class's column-parity requirement so the cell is
        exposed by the chip's worst-case data pattern.
        """
        margin = (self.profile.blast_radius + 2) * (
            2 if self.remapper.name == "paired" else 1
        )
        rows = self.geometry.rows_per_bank
        if rows > 2 * margin + 1:
            row = int(rng.integers(margin, rows - margin))
        else:
            row = rows // 2
        bank = int(rng.integers(0, self.geometry.banks))
        dominant = self.profile.coupling_classes[0]
        column = int(rng.integers(0, self.geometry.row_bits))
        if dominant.column_parity is not None and column % 2 != dominant.column_parity:
            column = (column + 1) % self.geometry.row_bits
        return (bank, row, column)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hcfirst_target(self) -> float:
        """The chip's sampled target ``HC_first`` in hammers."""
        return self._hcfirst_target

    @property
    def weakest_cell(self) -> Tuple[int, int, int]:
        """(bank, row, bit index) of the chip's weakest (planted) cell.

        Exposed for calibration tests and examples; a real characterization
        discovers this location through testing (see
        :func:`repro.core.first_flip.find_hcfirst`).
        """
        return self._planted_cell

    @property
    def has_on_die_ecc(self) -> bool:
        """Whether reads pass through an undisableable on-die SEC ECC."""
        return self._ondie_ecc is not None

    @property
    def is_pristine(self) -> bool:
        """Whether the chip is still in its as-constructed state.

        True until the first row write or activation.  A pristine chip's
        observable behaviour is a pure function of its construction
        parameters, which is what lets the experiments result store key
        cached study results by those parameters alone.
        """
        return not self._rows and not self._exposure

    def is_rowhammerable(self, hammer_limit: int = TEST_LIMIT_HC) -> bool:
        """Whether the chip's weakest cell is expected to flip within the limit."""
        return self._hcfirst_target <= hammer_limit

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def write_row(self, bank: int, row: int, data: RowData) -> None:
        """Write a full row.

        ``data`` may be a fill byte (``int``), a byte buffer of exactly
        ``row_bytes`` bytes, or a bit array of ``row_bits`` bits.  Writing a
        row restores its charge: accumulated disturbance on its wordline is
        cleared and any previously flipped cells take the new value.
        """
        self.geometry.validate_address(bank, row)
        bits = self._coerce_row_bits(data)
        state = self._rows.get((bank, row))
        check_bits = None
        if self._ondie_ecc is not None:
            check_bits = self._ondie_ecc.encode_row(bits)
        if state is None:
            state = _RowState(bits=bits, check_bits=check_bits, epoch=1)
            self._rows[(bank, row)] = state
        else:
            state.bits = bits
            state.check_bits = check_bits
            state.epoch += 1
        wordline = self.remapper.logical_to_physical(row)
        self._exposure[(bank, wordline)] = 0.0
        self.stats.row_writes += 1

    def fill_bank(self, bank: int, victim_byte: int, aggressor_byte: Optional[int] = None) -> None:
        """Write every row of a bank with a repeated byte pattern.

        When ``aggressor_byte`` is given, rows alternate between the victim
        byte (even physical wordlines) and the aggressor byte (odd physical
        wordlines); this matches how row-stripe and checkered patterns are
        laid out in memory before hammering (Section 4.3).
        """
        for row in range(self.geometry.rows_per_bank):
            if aggressor_byte is None:
                self.write_row(bank, row, victim_byte)
            else:
                wordline = self.remapper.logical_to_physical(row)
                byte = victim_byte if wordline % 2 == 0 else aggressor_byte
                self.write_row(bank, row, byte)

    def read_row(self, bank: int, row: int) -> np.ndarray:
        """Read a row as bytes, through on-die ECC when the chip has it."""
        self.geometry.validate_address(bank, row)
        self.stats.row_reads += 1
        state = self._rows.get((bank, row))
        if state is None:
            return np.zeros(self.geometry.row_bytes, dtype=np.uint8)
        bits = state.bits
        if self._ondie_ecc is not None and state.check_bits is not None:
            bits, _corrected = self._ondie_ecc.decode_row(bits, state.check_bits)
        return np.packbits(bits)

    def read_row_raw(self, bank: int, row: int) -> np.ndarray:
        """Read the raw stored bits of a row, bypassing on-die ECC."""
        self.geometry.validate_address(bank, row)
        state = self._rows.get((bank, row))
        if state is None:
            return np.zeros(self.geometry.row_bits, dtype=np.uint8)
        return state.bits.copy()

    # ------------------------------------------------------------------
    # Activation / hammering
    # ------------------------------------------------------------------
    def activate(self, bank: int, row: int, count: int = 1) -> int:
        """Activate a logical row ``count`` times (single-sided hammering).

        Returns the number of new bit flips induced in neighbouring rows.
        """
        self.geometry.validate_address(bank, row)
        if count <= 0:
            return 0
        self.stats.activations += count
        return self._apply_aggressor(bank, row, count)

    def hammer_pair(self, bank: int, row_a: int, row_b: int, count: int) -> int:
        """Hammer two aggressor rows ``count`` times each (double-sided).

        One *hammer* is one activation of each aggressor (paper Section 4.3),
        so this issues ``2 * count`` activations in total.  Returns the
        number of new bit flips induced.
        """
        self.geometry.validate_address(bank, row_a)
        self.geometry.validate_address(bank, row_b)
        if count <= 0:
            return 0
        self.stats.activations += 2 * count
        flips = self._apply_aggressor(bank, row_a, count)
        flips += self._apply_aggressor(bank, row_b, count)
        return flips

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def refresh_row(self, bank: int, row: int) -> None:
        """Refresh one logical row, clearing its wordline's accumulated exposure."""
        self.geometry.validate_address(bank, row)
        wordline = self.remapper.logical_to_physical(row)
        self._refresh_wordline(bank, wordline)
        self.stats.refreshes += 1

    def refresh_all(self) -> None:
        """Refresh every row in the chip."""
        self._exposure.clear()
        for state in self._rows.values():
            state.epoch += 1
        self._noise_cache.clear()
        self.stats.refreshes += 1

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _coerce_row_bits(self, data: RowData) -> np.ndarray:
        """Convert supported row-data forms into a bit array."""
        row_bytes = self.geometry.row_bytes
        if isinstance(data, (int, np.integer)):
            if not 0 <= int(data) <= 0xFF:
                raise ValueError("fill byte must be within [0, 255]")
            byte_array = np.full(row_bytes, int(data), dtype=np.uint8)
            return np.unpackbits(byte_array)
        array = np.asarray(bytearray(data) if isinstance(data, (bytes, bytearray)) else data)
        array = array.astype(np.uint8)
        if array.size == row_bytes:
            return np.unpackbits(array)
        if array.size == self.geometry.row_bits:
            return array.copy()
        raise ValueError(
            f"row data must be {row_bytes} bytes or {self.geometry.row_bits} bits, "
            f"got {array.size} elements"
        )

    def _refresh_wordline(self, bank: int, wordline: int) -> None:
        self._exposure.pop((bank, wordline), None)
        for logical in self.remapper.physical_to_logical(wordline):
            if not 0 <= logical < self.geometry.rows_per_bank:
                continue
            state = self._rows.get((bank, logical))
            if state is not None:
                state.epoch += 1
            self._noise_cache.pop((bank, logical), None)

    def _apply_aggressor(self, bank: int, aggressor_row: int, count: int) -> int:
        """Apply ``count`` activations of one aggressor row and induce flips."""
        aggressor_wordline = self.remapper.logical_to_physical(aggressor_row)
        # Opening the aggressor row restores its own charge.
        self._exposure[(bank, aggressor_wordline)] = 0.0
        aggressor_bits = self._wordline_bits(bank, aggressor_wordline)
        new_flips = 0
        max_wordline = self.remapper.num_wordlines(self.geometry.rows_per_bank)
        for distance, coupling in self.profile.distance_coupling.items():
            for victim_wordline in (aggressor_wordline - distance, aggressor_wordline + distance):
                if not 0 <= victim_wordline < max_wordline:
                    continue
                key = (bank, victim_wordline)
                self._exposure[key] = self._exposure.get(key, 0.0) + coupling * count
                new_flips += self._disturb_wordline(
                    bank, victim_wordline, self._exposure[key], aggressor_bits
                )
        self.stats.bit_flips_induced += new_flips
        return new_flips

    def _wordline_bits(self, bank: int, wordline: int) -> Optional[np.ndarray]:
        """Stored bits of the (first) logical row on a physical wordline."""
        for logical in self.remapper.physical_to_logical(wordline):
            if not 0 <= logical < self.geometry.rows_per_bank:
                continue
            state = self._rows.get((bank, logical))
            if state is not None:
                return state.bits
            return np.zeros(self.geometry.row_bits, dtype=np.uint8)
        return None

    def _disturb_wordline(
        self,
        bank: int,
        victim_wordline: int,
        exposure: float,
        aggressor_bits: Optional[np.ndarray],
    ) -> int:
        """Flip cells on a victim wordline whose thresholds are exceeded."""
        if aggressor_bits is None:
            aggressor_bits = np.zeros(self.geometry.row_bits, dtype=np.uint8)
        flips = 0
        for logical in self.remapper.physical_to_logical(victim_wordline):
            if not 0 <= logical < self.geometry.rows_per_bank:
                continue
            state = self._rows.get((bank, logical))
            if state is None:
                # A row that has never been written holds no meaningful data;
                # flips in it would not be observable, so skip the work.
                continue
            thresholds = self._effective_thresholds(bank, logical, state.epoch)
            eligible = thresholds <= exposure
            if not eligible.any():
                continue
            required_victim, required_aggressor, required_parity = self._cell_classes(bank, logical)
            match = (
                eligible
                & (state.bits == required_victim)
                & (aggressor_bits == required_aggressor)
                & ((required_parity == 2) | (self._column_parity == required_parity))
            )
            flip_count = int(match.sum())
            if flip_count:
                state.bits[match] ^= 1
                flips += flip_count
        return flips

    def _base_thresholds(self, bank: int, row: int) -> np.ndarray:
        """Per-cell RowHammer thresholds (exposure units) for a logical row."""
        key = (bank, row)
        cached = self._thresholds.get(key)
        if cached is not None:
            return cached
        rng = make_rng(self.seed, "thresholds", bank, row)
        uniform = rng.random(self.geometry.row_bits)
        # Inverse transform of P(T <= e) = scale * e**slope (capped at 1),
        # floored at the planted weakest cell's threshold.
        thresholds = (uniform / self._threshold_scale) ** (1.0 / self.profile.flip_slope)
        np.maximum(thresholds, self._threshold_floor, out=thresholds)
        planted_bank, planted_row, planted_column = self._planted_cell
        if (bank, row) == (planted_bank, planted_row):
            thresholds[planted_column] = self._threshold_floor
        self._thresholds[key] = thresholds
        return thresholds

    def _effective_thresholds(self, bank: int, row: int, epoch: int) -> np.ndarray:
        """Base thresholds with per-refresh-epoch jitter applied."""
        sigma = self.profile.threshold_noise_sigma
        base = self._base_thresholds(bank, row)
        if sigma <= 0:
            return base
        cached = self._noise_cache.get((bank, row))
        if cached is not None and cached[0] == epoch:
            noise = cached[1]
        else:
            rng = make_rng(self.seed, "noise", bank, row, epoch)
            noise = np.exp(rng.normal(0.0, sigma, self.geometry.row_bits))
            self._noise_cache[(bank, row)] = (epoch, noise)
        return base * noise

    def _cell_classes(self, bank: int, row: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-cell coupling-class requirements for a logical row.

        Returns ``(required_victim_bit, required_aggressor_bit,
        required_parity)`` arrays; ``required_parity`` uses 2 for "any
        column".
        """
        key = (bank, row)
        cached = self._classes.get(key)
        if cached is not None:
            return cached
        rng = make_rng(self.seed, "classes", bank, row)
        probabilities = self.profile.class_probabilities()
        class_indices = rng.choice(len(probabilities), size=self.geometry.row_bits, p=probabilities)
        required_victim = np.empty(self.geometry.row_bits, dtype=np.uint8)
        required_aggressor = np.empty(self.geometry.row_bits, dtype=np.uint8)
        required_parity = np.empty(self.geometry.row_bits, dtype=np.uint8)
        for index, cls in enumerate(self.profile.coupling_classes):
            mask = class_indices == index
            required_victim[mask] = cls.victim_bit
            required_aggressor[mask] = cls.aggressor_bit
            required_parity[mask] = 2 if cls.column_parity is None else cls.column_parity
        planted_bank, planted_row, planted_column = self._planted_cell
        if (bank, row) == (planted_bank, planted_row):
            dominant = self.profile.coupling_classes[0]
            required_victim[planted_column] = dominant.victim_bit
            required_aggressor[planted_column] = dominant.aggressor_bit
            required_parity[planted_column] = (
                2 if dominant.column_parity is None else dominant.column_parity
            )
        result = (required_victim, required_aggressor, required_parity)
        self._classes[key] = result
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DramChip(id={self.chip_id!r}, config={self.profile.type_node.value}/"
            f"{self.profile.manufacturer}, hcfirst_target={self._hcfirst_target:.0f})"
        )
