"""DRAM module (DIMM / package) model: a set of chips tested together.

The paper reports populations both at chip and module granularity
(Table 1, and the per-module inventories in appendix Tables 7 and 8).  A
:class:`DramModule` groups chips that share a type-node configuration and
manufacturer and carries the module-level metadata those tables record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.dram.chip import DramChip
from repro.dram.vulnerability import VulnerabilityProfile


@dataclass
class DramModule:
    """A DRAM module: several chips operating in lockstep.

    Attributes
    ----------
    module_id:
        Identifier such as ``"A17"`` (manufacturer letter + index), matching
        the paper's appendix tables.
    profile:
        Vulnerability profile shared by all chips on the module.
    chips:
        The chips mounted on the module.
    manufacture_date:
        ``"yy-ww"`` manufacture date string when known.
    frequency_mts:
        Data rate in MT/s.
    trc_ns:
        Activate-to-activate time of the module's speed bin.
    size_gb:
        Module capacity in gigabytes.
    pins:
        Chip data width (``"x4"``, ``"x8"`` or ``"x16"``).
    """

    module_id: str
    profile: VulnerabilityProfile
    chips: List[DramChip] = field(default_factory=list)
    manufacture_date: Optional[str] = None
    frequency_mts: Optional[int] = None
    trc_ns: Optional[float] = None
    size_gb: Optional[float] = None
    pins: Optional[str] = None

    @property
    def num_chips(self) -> int:
        """Number of chips on the module."""
        return len(self.chips)

    @property
    def manufacturer(self) -> str:
        """Manufacturer label (A, B or C)."""
        return self.profile.manufacturer

    @property
    def type_node(self) -> str:
        """Type-node configuration string (for example ``"DDR4-new"``)."""
        return self.profile.type_node.value

    def min_hcfirst_target(self) -> Optional[float]:
        """Smallest chip-level ``HC_first`` target on the module.

        Returns ``None`` for an empty module.
        """
        if not self.chips:
            return None
        return min(chip.hcfirst_target for chip in self.chips)

    def rowhammerable_chips(self, hammer_limit: int = DramChip.TEST_LIMIT_HC) -> List[DramChip]:
        """Chips expected to exhibit at least one bit flip within the limit."""
        return [chip for chip in self.chips if chip.is_rowhammerable(hammer_limit)]

    def __iter__(self):
        return iter(self.chips)

    def __len__(self) -> int:
        return len(self.chips)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DramModule(id={self.module_id!r}, config={self.type_node}/"
            f"{self.manufacturer}, chips={self.num_chips})"
        )
