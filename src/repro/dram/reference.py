"""Reference (dict-of-rows) chip backend retained as the bit-identity oracle.

:class:`ReferenceDramChip` is the original object-at-a-time implementation
of the behavioural chip model: per-row ``_RowState`` objects in a dict,
per-wordline exposure floats in a dict, one victim row disturbed at a time.
It is deliberately the *slow, obviously sequential* formulation -- the
differential suite (``tests/dram/test_chip_differential.py``) drives it and
the columnar :class:`~repro.dram.chip.DramChip` through identical operation
soups and requires bit-identical flips, stats, and state digests.

Both backends draw every stochastic stream through the shared
:mod:`repro.dram.columnar` ``sample_*_row`` helpers (one independent
generator per row), so any divergence the suite finds is structural -- an
ordering or accumulation bug in the vectorized kernel -- not a sampling
difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.dram.chip import RowData, _CalibratedChip
from repro.dram.columnar import sample_class_row, sample_noise_row, sample_threshold_row


@dataclass
class _RowState:
    """Mutable per-logical-row storage."""

    bits: np.ndarray
    check_bits: Optional[np.ndarray]
    epoch: int = 0


class ReferenceDramChip(_CalibratedChip):
    """Dict-of-rows chip backend, operation-for-operation sequential.

    Accepts the same construction parameters as
    :class:`~repro.dram.chip.DramChip` and exposes the same operation
    surface (including the batch ``write_rows`` / ``read_rows`` methods,
    implemented as plain loops).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rows: Dict[Tuple[int, int], _RowState] = {}
        self._exposure: Dict[Tuple[int, int], float] = {}
        self._thresholds: Dict[Tuple[int, int], np.ndarray] = {}
        self._classes: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._noise_cache: Dict[Tuple[int, int], Tuple[int, np.ndarray]] = {}

    @property
    def is_pristine(self) -> bool:
        """Whether the chip is still in its as-constructed state."""
        return not self._rows and not self._exposure

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def write_row(self, bank: int, row: int, data: RowData) -> None:
        """Write a full row (see :meth:`repro.dram.chip.DramChip.write_row`)."""
        self.geometry.validate_address(bank, row)
        bits = self._coerce_row_bits(data)
        state = self._rows.get((bank, row))
        check_bits = None
        if self._ondie_ecc is not None:
            check_bits = self._ondie_ecc.encode_row(bits)
        if state is None:
            state = _RowState(bits=bits, check_bits=check_bits, epoch=1)
            self._rows[(bank, row)] = state
        else:
            state.bits = bits
            state.check_bits = check_bits
            state.epoch += 1
        wordline = self.remapper.logical_to_physical(row)
        self._exposure[(bank, wordline)] = 0.0
        self.stats.row_writes += 1

    def write_rows(self, bank: int, rows: Sequence[int], data) -> None:
        """Batch write as a plain loop over :meth:`write_row`."""
        rows = [int(row) for row in rows]
        if isinstance(data, (int, np.integer)):
            data = [data] * len(rows)
        if len(data) != len(rows):
            raise ValueError(f"expected {len(rows)} row payloads, got {len(data)}")
        for row, row_data in zip(rows, data):
            self.write_row(bank, row, row_data)

    def read_row(self, bank: int, row: int) -> np.ndarray:
        """Read a row as bytes, through on-die ECC when the chip has it."""
        self.geometry.validate_address(bank, row)
        self.stats.row_reads += 1
        state = self._rows.get((bank, row))
        if state is None:
            return np.zeros(self.geometry.row_bytes, dtype=np.uint8)
        bits = state.bits
        if self._ondie_ecc is not None and state.check_bits is not None:
            bits, _corrected = self._ondie_ecc.decode_row(bits, state.check_bits)
        return np.packbits(bits)

    def read_rows(self, bank: int, rows: Sequence[int]) -> np.ndarray:
        """Batch read as a plain loop over :meth:`read_row`."""
        if not len(rows):
            return np.zeros((0, self.geometry.row_bytes), dtype=np.uint8)
        return np.stack([self.read_row(bank, int(row)) for row in rows])

    def read_row_raw(self, bank: int, row: int) -> np.ndarray:
        """Read the raw stored bits of a row, bypassing on-die ECC."""
        self.geometry.validate_address(bank, row)
        state = self._rows.get((bank, row))
        if state is None:
            return np.zeros(self.geometry.row_bits, dtype=np.uint8)
        return state.bits.copy()

    def read_rows_raw(self, bank: int, rows: Sequence[int]) -> np.ndarray:
        """Batch raw read as a plain loop over :meth:`read_row_raw`."""
        if not len(rows):
            return np.zeros((0, self.geometry.row_bits), dtype=np.uint8)
        return np.stack([self.read_row_raw(bank, int(row)) for row in rows])

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def refresh_row(self, bank: int, row: int) -> None:
        """Refresh one logical row, clearing its wordline's accumulated exposure."""
        self.geometry.validate_address(bank, row)
        wordline = self.remapper.logical_to_physical(row)
        self._refresh_wordline(bank, wordline)
        self.stats.refreshes += 1

    def refresh_all(self) -> None:
        """Refresh every row in the chip."""
        self._exposure.clear()
        for state in self._rows.values():
            state.epoch += 1
        self._noise_cache.clear()
        self.stats.refreshes += 1

    def _refresh_wordline(self, bank: int, wordline: int) -> None:
        self._exposure.pop((bank, wordline), None)
        for logical in self.remapper.physical_to_logical(wordline):
            if not 0 <= logical < self.geometry.rows_per_bank:
                continue
            state = self._rows.get((bank, logical))
            if state is not None:
                state.epoch += 1
            self._noise_cache.pop((bank, logical), None)

    # ------------------------------------------------------------------
    # Disturbance kernel (sequential)
    # ------------------------------------------------------------------
    def _apply_aggressor(self, bank: int, aggressor_row: int, count: int) -> int:
        """Apply ``count`` activations of one aggressor row and induce flips."""
        aggressor_wordline = self.remapper.logical_to_physical(aggressor_row)
        # Opening the aggressor row restores its own charge.
        self._exposure[(bank, aggressor_wordline)] = 0.0
        aggressor_bits = self._wordline_bits(bank, aggressor_wordline)
        new_flips = 0
        max_wordline = self.remapper.num_wordlines(self.geometry.rows_per_bank)
        for distance, coupling in self.profile.distance_coupling.items():
            for victim_wordline in (aggressor_wordline - distance, aggressor_wordline + distance):
                if not 0 <= victim_wordline < max_wordline:
                    continue
                key = (bank, victim_wordline)
                self._exposure[key] = self._exposure.get(key, 0.0) + coupling * count
                new_flips += self._disturb_wordline(
                    bank, victim_wordline, self._exposure[key], aggressor_bits
                )
        self.stats.bit_flips_induced += new_flips
        return new_flips

    def _wordline_bits(self, bank: int, wordline: int) -> Optional[np.ndarray]:
        """Stored bits of the (first) logical row on a physical wordline."""
        for logical in self.remapper.physical_to_logical(wordline):
            if not 0 <= logical < self.geometry.rows_per_bank:
                continue
            state = self._rows.get((bank, logical))
            if state is not None:
                return state.bits
            return np.zeros(self.geometry.row_bits, dtype=np.uint8)
        return None

    def _disturb_wordline(
        self,
        bank: int,
        victim_wordline: int,
        exposure: float,
        aggressor_bits: Optional[np.ndarray],
    ) -> int:
        """Flip cells on a victim wordline whose thresholds are exceeded."""
        if aggressor_bits is None:
            aggressor_bits = np.zeros(self.geometry.row_bits, dtype=np.uint8)
        flips = 0
        for logical in self.remapper.physical_to_logical(victim_wordline):
            if not 0 <= logical < self.geometry.rows_per_bank:
                continue
            state = self._rows.get((bank, logical))
            if state is None:
                # A row that has never been written holds no meaningful data;
                # flips in it would not be observable, so skip the work.
                continue
            thresholds = self._effective_thresholds(bank, logical, state.epoch)
            eligible = thresholds <= exposure
            if not eligible.any():
                continue
            required_victim, required_aggressor, required_parity = self._cell_classes(bank, logical)
            match = (
                eligible
                & (state.bits == required_victim)
                & (aggressor_bits == required_aggressor)
                & ((required_parity == 2) | (self._column_parity == required_parity))
            )
            flip_count = int(match.sum())
            if flip_count:
                state.bits[match] ^= 1
                flips += flip_count
        return flips

    def _base_thresholds(self, bank: int, row: int) -> np.ndarray:
        """Per-cell RowHammer thresholds (exposure units) for a logical row."""
        key = (bank, row)
        cached = self._thresholds.get(key)
        if cached is not None:
            return cached
        thresholds = sample_threshold_row(
            self.seed,
            bank,
            row,
            self.geometry.row_bits,
            self._threshold_scale,
            self.profile.flip_slope,
            self._threshold_floor,
            self._planted_cell,
        )
        self._thresholds[key] = thresholds
        return thresholds

    def _effective_thresholds(self, bank: int, row: int, epoch: int) -> np.ndarray:
        """Base thresholds with per-refresh-epoch jitter applied."""
        sigma = self.profile.threshold_noise_sigma
        base = self._base_thresholds(bank, row)
        if sigma <= 0:
            return base
        cached = self._noise_cache.get((bank, row))
        if cached is not None and cached[0] == epoch:
            noise = cached[1]
        else:
            noise = sample_noise_row(
                self.seed, bank, row, epoch, self.geometry.row_bits, sigma
            )
            self._noise_cache[(bank, row)] = (epoch, noise)
        return base * noise

    def _cell_classes(self, bank: int, row: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-cell coupling-class requirements for a logical row."""
        key = (bank, row)
        cached = self._classes.get(key)
        if cached is not None:
            return cached
        result = sample_class_row(
            self.seed, bank, row, self.geometry.row_bits, self.profile, self._planted_cell
        )
        self._classes[key] = result
        return result
