"""ProHIT: probabilistic hot/cold history tables [Son+ DAC'17], Section 6.1.

ProHIT tracks potential victim rows in a pair of small tables ("hot" and
"cold") that it manages probabilistically to approximate the most frequently
hammered victims without counting every activation:

* when a row is activated, each adjacent (victim) row is looked up:
  - if it is in the hot table its priority is upgraded;
  - if it is in the cold table it is promoted into the hot table with high
    probability;
  - otherwise it is inserted into the cold table with probability ``pi``
    (evicting probabilistically when the table is full);
* at every periodic refresh command, the top entry of the hot table (the
  most-likely-hammered victim) is refreshed and removed.

The published design is tuned for ``HC_first`` = 2000 and provides no model
for re-tuning the tables and probabilities for other vulnerability levels,
which is why the paper evaluates it only at that point (Section 6.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.mitigations.base import MitigationConfig, MitigationMechanism
from repro.utils.rng import make_rng

#: The HC_first value the published ProHIT design is tuned for.
DESIGN_HCFIRST = 2_000


class ProHIT(MitigationMechanism):
    """Probabilistic history tables for RowHammer victim tracking.

    Parameters
    ----------
    config:
        Shared mitigation configuration.
    hot_entries, cold_entries:
        Table sizes (the published design uses a handful of entries each).
    insert_probability:
        ``pi``: probability of inserting a new victim into the cold table.
    evict_probability:
        ``pe``: probability weight governing which cold entry is evicted.
    promote_probability:
        ``pt``: probability weight governing promotion into the hot table.
    """

    name = "ProHIT"
    #: The paper cannot scale ProHIT to arbitrary HC_first values because the
    #: published work gives no tuning model; it is evaluated at 2000 only.
    scalable = False

    def __init__(
        self,
        config: MitigationConfig,
        hot_entries: int = 4,
        cold_entries: int = 4,
        insert_probability: float = 0.1,
        evict_probability: float = 0.2,
        promote_probability: float = 0.2,
    ) -> None:
        super().__init__(config)
        if hot_entries <= 0 or cold_entries <= 0:
            raise ValueError("table sizes must be positive")
        self.hot_entries = hot_entries
        self.cold_entries = cold_entries
        self.insert_probability = insert_probability
        self.evict_probability = evict_probability
        self.promote_probability = promote_probability
        # Tables are ordered lists of (bank, row); index 0 is highest priority.
        self._hot: List[Tuple[int, int]] = []
        self._cold: List[Tuple[int, int]] = []
        self._rng = make_rng(config.seed, "prohit")

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------
    def _upgrade_hot(self, key: Tuple[int, int]) -> None:
        index = self._hot.index(key)
        if index > 0:
            self._hot[index - 1], self._hot[index] = self._hot[index], self._hot[index - 1]

    def _promote_to_hot(self, key: Tuple[int, int]) -> None:
        self._cold.remove(key)
        pt = self.promote_probability
        top = (1.0 - pt) + pt / max(1, len(self._hot) + 1)
        if self._rng.random() < top or not self._hot:
            position = 0
        else:
            position = int(self._rng.integers(0, len(self._hot)))
        self._hot.insert(position, key)
        if len(self._hot) > self.hot_entries:
            demoted = self._hot.pop()
            self._insert_cold(demoted, force=True)

    def _insert_cold(self, key: Tuple[int, int], force: bool = False) -> None:
        if key in self._cold:
            return
        if not force and self._rng.random() >= self.insert_probability:
            return
        if len(self._cold) >= self.cold_entries:
            pe = self.evict_probability
            least_recent = (1.0 - pe) + pe / len(self._cold)
            if self._rng.random() < least_recent:
                self._cold.pop()  # evict the least recently inserted entry
            else:
                self._cold.pop(int(self._rng.integers(0, len(self._cold))))
        self._cold.insert(0, key)

    # ------------------------------------------------------------------
    # Mechanism hooks
    # ------------------------------------------------------------------
    def on_activate(self, bank: int, row: int, cycle: int) -> List[Tuple[int, int]]:
        for victim in self.config.adjacent_rows(row):
            key = (bank, victim)
            if key in self._hot:
                self._upgrade_hot(key)
            elif key in self._cold:
                self._promote_to_hot(key)
            else:
                self._insert_cold(key)
        return []

    def on_refresh(self, cycle: int) -> List[Tuple[int, int]]:
        """Refresh the highest-priority hot entry alongside the periodic refresh."""
        if not self._hot:
            return []
        victim = self._hot.pop(0)
        return self._request([victim])

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info.update(
            hot_entries=self.hot_entries,
            cold_entries=self.cold_entries,
            insert_probability=self.insert_probability,
        )
        return info
