"""MRLoc: memory-locality-aware probabilistic refresh [You+ DAC'19], Section 6.1.

MRLoc keeps a small queue of recently seen victim-row addresses.  On every
activation it pushes the aggressor's adjacent rows into the queue and, for a
victim that is already present, refreshes it with a probability that grows
the more recently the victim was last seen (strong temporal locality of
hammering means a recently repeated victim is likely under attack).

Like ProHIT, the published design is tuned empirically for ``HC_first`` =
2000 and offers no rule for scaling its queue size or probability curve to
other vulnerability levels, so the paper evaluates it at that single point.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

from repro.mitigations.base import MitigationConfig, MitigationMechanism
from repro.utils.rng import make_rng

#: The HC_first value the published MRLoc design is tuned for.
DESIGN_HCFIRST = 2_000


class MRLoc(MitigationMechanism):
    """Locality-aware probabilistic victim refresh.

    Parameters
    ----------
    config:
        Shared mitigation configuration.
    queue_entries:
        Size of the victim-address queue.
    base_probability:
        Refresh probability for a victim re-seen after the longest interval
        the queue can represent; the probability scales up towards
        ``max_probability`` as the re-reference distance shrinks.
    max_probability:
        Refresh probability for a victim re-seen back to back.
    """

    name = "MRLoc"
    scalable = False

    def __init__(
        self,
        config: MitigationConfig,
        queue_entries: int = 64,
        base_probability: float = 0.001,
        max_probability: float = 0.05,
    ) -> None:
        super().__init__(config)
        if queue_entries <= 0:
            raise ValueError("queue_entries must be positive")
        if not 0.0 < base_probability <= max_probability <= 1.0:
            raise ValueError("probabilities must satisfy 0 < base <= max <= 1")
        self.queue_entries = queue_entries
        self.base_probability = base_probability
        self.max_probability = max_probability
        #: victim -> insertion counter at last sighting (ordered = FIFO queue)
        self._queue: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self._insertions = 0
        self._rng = make_rng(config.seed, "mrloc")

    def _refresh_probability(self, reuse_distance: int) -> float:
        """Probability of refreshing a victim re-seen ``reuse_distance`` insertions ago."""
        if reuse_distance <= 0:
            return self.max_probability
        span = max(1, self.queue_entries)
        closeness = max(0.0, 1.0 - (reuse_distance - 1) / span)
        return self.base_probability + closeness * (self.max_probability - self.base_probability)

    def on_activate(self, bank: int, row: int, cycle: int) -> List[Tuple[int, int]]:
        victims: List[Tuple[int, int]] = []
        for victim_row in self.config.adjacent_rows(row):
            key = (bank, victim_row)
            self._insertions += 1
            if key in self._queue:
                reuse_distance = self._insertions - self._queue[key]
                probability = self._refresh_probability(reuse_distance)
                self._queue.move_to_end(key)
                self._queue[key] = self._insertions
                if self._rng.random() < probability:
                    victims.append(key)
            else:
                self._queue[key] = self._insertions
                if len(self._queue) > self.queue_entries:
                    self._queue.popitem(last=False)
        return self._request(victims)

    def on_victim_refreshed(self, bank: int, row: int, cycle: int) -> None:
        # A refreshed victim is safe again; drop it from the queue so its
        # history does not inflate future refresh probabilities.
        self._queue.pop((bank, row), None)

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info.update(
            queue_entries=self.queue_entries,
            base_probability=self.base_probability,
            max_probability=self.max_probability,
        )
        return info
