"""Common interface between the memory controller and mitigation mechanisms.

A mechanism observes every demand row activation and may request *victim
refreshes*: refreshes of rows adjacent to a heavily activated aggressor, to
restore their charge before a RowHammer bit flip can occur.  It may also
piggyback work on the periodic refresh command, or globally increase the
refresh rate.

Every mechanism is parameterized by the ``HC_first`` it must protect against
(the chip's vulnerability level), which is how the paper studies scalability
to future, more vulnerable chips.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.timing import DDR4_2400, DramTimings


@dataclass(frozen=True)
class MitigationConfig:
    """Parameters shared by all mitigation mechanisms.

    Attributes
    ----------
    hcfirst:
        The hammer count at which the protected chip's weakest cell flips.
        The mechanism must guarantee no row's neighbours accumulate this
        many activations without an intervening refresh of the row.
    banks, rows_per_bank:
        Geometry of the protected memory (sizes the tracking structures).
    timings:
        DRAM timings (used to convert between time and activation budgets).
    blast_radius:
        How many rows on each side of an aggressor the mechanism refreshes;
        the evaluated mechanisms all protect the immediately adjacent rows.
    seed:
        RNG seed for probabilistic mechanisms.
    time_scale:
        Fraction of a refresh window the simulation actually models.  The
        paper simulates hundreds of millions of instructions, long enough
        for per-row activation counters to reach thresholds like
        ``HC_first / 4``; the pure-Python simulator models a much shorter
        window, so counter-based mechanisms (TWiCe, the ideal mechanism)
        scale their thresholds by this factor to preserve the *rate* of
        mitigation refreshes (refreshes per activation), which is what
        determines their bandwidth and performance overhead.  Stateless
        mechanisms (PARA) and rate-based mechanisms (increased refresh rate,
        ProHIT's per-REF refresh) are unaffected.
    """

    hcfirst: int
    banks: int = 16
    rows_per_bank: int = 16384
    timings: DramTimings = field(default_factory=lambda: DDR4_2400)
    blast_radius: int = 1
    seed: int = 0
    time_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.hcfirst <= 0:
            raise ValueError("hcfirst must be positive")
        if self.banks <= 0 or self.rows_per_bank <= 0:
            raise ValueError("banks and rows_per_bank must be positive")
        if self.blast_radius < 1:
            raise ValueError("blast_radius must be at least 1")
        if not 0.0 < self.time_scale <= 1.0:
            raise ValueError("time_scale must be within (0, 1]")

    @property
    def scaled_hcfirst(self) -> float:
        """``HC_first`` scaled to the simulated fraction of a refresh window."""
        return max(1.0, self.hcfirst * self.time_scale)

    @property
    def refresh_window_cycles(self) -> int:
        """Refresh window in DRAM cycles."""
        return self.timings.refresh_window_cycles

    @property
    def refreshes_per_window(self) -> int:
        """Number of refresh intervals per refresh window."""
        return self.timings.refreshes_per_window

    def adjacent_rows(self, row: int) -> List[int]:
        """Rows within the blast radius of an aggressor row (the potential victims)."""
        victims = []
        for distance in range(1, self.blast_radius + 1):
            for victim in (row - distance, row + distance):
                if 0 <= victim < self.rows_per_bank:
                    victims.append(victim)
        return victims


class MitigationMechanism(ABC):
    """Abstract RowHammer mitigation mechanism.

    Subclasses implement :meth:`on_activate` (and optionally
    :meth:`on_refresh` / :meth:`refresh_interval_multiplier`) and report the
    victim rows they want refreshed; the memory controller performs the
    refreshes and charges their cost to the mechanism.
    """

    #: short name used in reports and the registry
    name: str = "abstract"
    #: whether the mechanism's design scales to arbitrarily low HC_first
    #: values (Section 6.1 discusses which mechanisms do not)
    scalable: bool = True

    def __init__(self, config: MitigationConfig) -> None:
        self.config = config
        self.victim_refreshes_requested = 0

    # ------------------------------------------------------------------
    # Hooks called by the memory controller
    # ------------------------------------------------------------------
    @abstractmethod
    def on_activate(self, bank: int, row: int, cycle: int) -> List[Tuple[int, int]]:
        """Called on every demand activation of (bank, row).

        Returns a list of (bank, row) victim rows to refresh now.
        """

    def on_refresh(self, cycle: int) -> List[Tuple[int, int]]:
        """Called at every periodic refresh command; may return victim rows."""
        return []

    def on_victim_refreshed(self, bank: int, row: int, cycle: int) -> None:
        """Called after the controller has refreshed a victim row."""

    def refresh_interval_multiplier(self) -> float:
        """Scaling applied to tREFI (< 1 refreshes more often, 1 = nominal)."""
        return 1.0

    # ------------------------------------------------------------------
    # Autonomous timers (the event-registration API)
    # ------------------------------------------------------------------
    def register_events(self, port) -> None:
        """Called once when the mechanism is attached to a controller.

        ``port`` is a
        :class:`repro.sim.controller.MitigationEventPort`: a mechanism that
        schedules autonomous work (say, a background scrubber) keeps a
        reference and calls ``port.schedule_timer(cycle)``; the controller
        then dispatches :meth:`on_timer` at that cycle in **both** step
        modes and folds the timer into every event horizon, so the
        event-driven fast-forward can never jump over it.  The timer is
        one-shot: re-arm it from inside :meth:`on_timer` for periodic work.

        All evaluated mechanisms act only inside :meth:`on_activate` and
        :meth:`on_refresh` -- both of which fire at controller events that
        are already part of the horizon (PARA draws its RNG per activation,
        TWiCe advances its table epochs and ProHIT/MRLoc pop their queues
        per refresh command) -- so the default registers nothing.
        """

    def on_timer(self, cycle: int) -> List[Tuple[int, int]]:
        """Dispatched when a timer registered through ``register_events``
        fires; may return (bank, row) victim rows to refresh and re-arm the
        timer through the retained port."""
        return []

    def has_autonomous_timer_poll(self) -> bool:
        """Whether the controller must keep polling the legacy
        :meth:`next_event_cycle` hook on every horizon computation.

        This is the compat shim for pre-port mechanisms: overriding
        :meth:`next_event_cycle` is detected here, so such mechanisms keep
        working unchanged, while the (much more common) mechanisms without
        autonomous timers cost nothing on the horizon path.
        """
        return type(self).next_event_cycle is not MitigationMechanism.next_event_cycle

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Legacy polling hook: earliest future cycle at which the mechanism
        acts *on its own*.

        Superseded by the event-registration API (:meth:`register_events` /
        :meth:`on_timer`), which new autonomous mechanisms should prefer --
        a registered timer is dispatched by the controller in both step
        modes, whereas this hook only guarantees the returned cycle is
        *processed* and leaves the dispatch to the mechanism's other hooks.
        Mechanisms that override it are still polled on every horizon
        computation (see :meth:`has_autonomous_timer_poll`), with the same
        contract as before: the event-driven loop will not fast-forward
        past the returned cycle.  The default of ``None`` means "no
        autonomous timer".
        """
        return None

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def _request(self, victims: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
        """Record and return a list of requested victim refreshes."""
        self.victim_refreshes_requested += len(victims)
        return victims

    def describe(self) -> Dict[str, object]:
        """Human-readable description of the mechanism's configuration."""
        return {
            "name": self.name,
            "hcfirst": self.config.hcfirst,
            "scalable": self.scalable,
            "victim_refreshes_requested": self.victim_refreshes_requested,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(hcfirst={self.config.hcfirst})"
