"""Increased refresh rate mitigation [Kim+ ISCA'14], Section 6.1.

The original RowHammer study's simplest mitigation: refresh every row often
enough that no aggressor can accumulate ``HC_first`` activations within one
refresh window.  The refresh window must shrink to ``HC_first * tRC``, which
means the refresh rate grows without bound as chips become more vulnerable;
the paper notes the mechanism cannot scale below ``HC_first`` of roughly 32k
because refreshing all rows faster than that starves demand traffic.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.mitigations.base import MitigationConfig, MitigationMechanism

#: The paper treats the mechanism as non-viable below this HC_first.
MINIMUM_VIABLE_HCFIRST = 32_000


class IncreasedRefreshRate(MitigationMechanism):
    """Globally increase the DRAM refresh rate.

    The mechanism issues no victim refreshes of its own; its entire effect
    comes from shortening the refresh interval, which the controller applies
    through :meth:`refresh_interval_multiplier`.
    """

    name = "IncreasedRefresh"
    scalable = False

    def __init__(self, config: MitigationConfig) -> None:
        super().__init__(config)
        timings = config.timings
        required_window_cycles = config.hcfirst * timings.trc
        nominal_window_cycles = timings.refresh_window_cycles
        self._multiplier = min(1.0, required_window_cycles / nominal_window_cycles)

    @property
    def required_refresh_window_ms(self) -> float:
        """Refresh window (ms) needed to make HC_first activations impossible."""
        return self.config.hcfirst * self.config.timings.trc_ns / 1e6

    @property
    def refresh_rate_multiplier(self) -> float:
        """How many times more often than nominal the chip must be refreshed."""
        if self._multiplier <= 0:
            return float("inf")
        return 1.0 / self._multiplier

    def is_viable(self) -> bool:
        """Whether the paper considers the mechanism applicable at this HC_first."""
        return self.config.hcfirst >= MINIMUM_VIABLE_HCFIRST

    def refresh_interval_multiplier(self) -> float:
        return self._multiplier

    def on_activate(self, bank: int, row: int, cycle: int) -> List[Tuple[int, int]]:
        return []
