"""RowHammer mitigation mechanisms evaluated by the paper (Section 6).

Five state-of-the-art mechanisms plus the ideal refresh-based mechanism:

* :class:`~repro.mitigations.refresh_rate.IncreasedRefreshRate` [Kim+ ISCA'14]
* :class:`~repro.mitigations.para.PARA` [Kim+ ISCA'14]
* :class:`~repro.mitigations.prohit.ProHIT` [Son+ DAC'17]
* :class:`~repro.mitigations.mrloc.MRLoc` [You+ DAC'19]
* :class:`~repro.mitigations.twice.TWiCe` (and TWiCe-ideal) [Lee+ ISCA'19]
* :class:`~repro.mitigations.ideal.IdealRefresh` (oracle selective refresh)

All mechanisms plug into the memory controller through the
:class:`~repro.mitigations.base.MitigationMechanism` interface.
"""

from repro.mitigations.base import MitigationMechanism, MitigationConfig
from repro.mitigations.refresh_rate import IncreasedRefreshRate
from repro.mitigations.para import PARA
from repro.mitigations.prohit import ProHIT
from repro.mitigations.mrloc import MRLoc
from repro.mitigations.twice import TWiCe
from repro.mitigations.ideal import IdealRefresh
from repro.mitigations.registry import (
    MECHANISM_FACTORIES,
    build_mechanism,
    available_mechanisms,
)

__all__ = [
    "MitigationMechanism",
    "MitigationConfig",
    "IncreasedRefreshRate",
    "PARA",
    "ProHIT",
    "MRLoc",
    "TWiCe",
    "IdealRefresh",
    "MECHANISM_FACTORIES",
    "build_mechanism",
    "available_mechanisms",
]
