"""Ideal refresh-based mitigation mechanism (Section 6.1, last paragraph).

The oracle the paper compares everything against: a mechanism that tracks
every activation of every row and refreshes a victim row only at the last
possible moment -- just before one of its aggressors reaches ``HC_first``
activations since the victim was last refreshed.  It issues the minimum
possible number of additional refreshes for a refresh-based approach, so its
overhead is a lower bound for this whole mitigation class.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.mitigations.base import MitigationConfig, MitigationMechanism


class IdealRefresh(MitigationMechanism):
    """Oracle selective-refresh mechanism.

    Implementation note: the mechanism keeps one activation counter per
    potential victim row, counting activations of the victim's adjacent
    rows since the victim was last refreshed (either by the mechanism or by
    the periodic auto-refresh, which sweeps every row once per refresh
    window).  When the counter reaches ``HC_first - 1`` the victim is
    refreshed and the counter reset -- exactly one refresh per ``HC_first``
    aggressor activations, the minimum a refresh-based defense can do.
    """

    name = "Ideal"
    scalable = True

    def __init__(self, config: MitigationConfig) -> None:
        super().__init__(config)
        self._counters: Dict[Tuple[int, int], int] = {}
        self._refresh_window_cycles = config.refresh_window_cycles
        self._last_window_sweep = 0

    def _sweep_if_window_elapsed(self, cycle: int) -> None:
        """Model the periodic auto-refresh restoring every row once per window."""
        if cycle - self._last_window_sweep >= self._refresh_window_cycles:
            self._counters.clear()
            self._last_window_sweep = cycle

    def on_activate(self, bank: int, row: int, cycle: int) -> List[Tuple[int, int]]:
        self._sweep_if_window_elapsed(cycle)
        victims: List[Tuple[int, int]] = []
        threshold = max(1, int(self.config.scaled_hcfirst) - 1)
        for victim_row in self.config.adjacent_rows(row):
            key = (bank, victim_row)
            count = self._counters.get(key, 0) + 1
            if count >= threshold:
                victims.append(key)
                self._counters[key] = 0
            else:
                self._counters[key] = count
        return self._request(victims)

    def on_victim_refreshed(self, bank: int, row: int, cycle: int) -> None:
        self._counters[(bank, row)] = 0

    @property
    def tracked_rows(self) -> int:
        """Number of rows currently holding a non-zero activation count."""
        return len(self._counters)
