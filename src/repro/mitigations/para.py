"""PARA: Probabilistic Adjacent Row Activation [Kim+ ISCA'14], Section 6.1.

Every time a row is opened (and closed), PARA refreshes one of its adjacent
rows with a low probability ``p``.  PARA is stateless, which makes it the
easiest mechanism to scale: protecting a more vulnerable chip only requires
raising ``p``, at the cost of more refresh traffic.

The paper scales ``p`` with ``HC_first`` such that the probability of a
RowHammer failure stays below a target bit error rate of 1e-15 per hour of
continuous hammering, which is the calculation :func:`probability_for` does.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.mitigations.base import MitigationConfig, MitigationMechanism
from repro.utils.rng import make_rng

#: Consumer-memory reliability target the paper adopts (failures per hour).
TARGET_FAILURES_PER_HOUR = 1e-15


def probability_for(
    hcfirst: int,
    trc_ns: float,
    target_failures_per_hour: float = TARGET_FAILURES_PER_HOUR,
) -> float:
    """Adjacent-row refresh probability needed to meet the reliability target.

    A victim experiences a bit flip only if one of its aggressors is
    activated ``HC_first`` times with no intervening PARA refresh of the
    victim, which happens with probability ``(1 - p/2) ** HC_first`` per
    attack attempt (each activation refreshes the victim with probability
    ``p/2`` -- ``p`` to act at all, 1/2 to pick that side).  The number of
    attack attempts per hour is bounded by how many ``HC_first``-activation
    bursts fit in an hour of continuous hammering.

    >>> 0 < probability_for(2000, 46.0) < 1
    True
    """
    if hcfirst <= 0:
        raise ValueError("hcfirst must be positive")
    attack_duration_s = hcfirst * trc_ns * 1e-9
    attacks_per_hour = 3600.0 / attack_duration_s
    per_attack_budget = target_failures_per_hour / attacks_per_hour
    # (1 - p/2) ** hcfirst <= per_attack_budget
    per_activation_survival = per_attack_budget ** (1.0 / hcfirst)
    probability = 2.0 * (1.0 - per_activation_survival)
    return min(1.0, probability)


class PARA(MitigationMechanism):
    """Probabilistic adjacent row activation."""

    name = "PARA"
    scalable = True

    def __init__(
        self,
        config: MitigationConfig,
        target_failures_per_hour: float = TARGET_FAILURES_PER_HOUR,
    ) -> None:
        super().__init__(config)
        self.probability = probability_for(
            config.hcfirst, config.timings.trc_ns, target_failures_per_hour
        )
        self._rng = make_rng(config.seed, "para")

    def on_activate(self, bank: int, row: int, cycle: int) -> List[Tuple[int, int]]:
        if self._rng.random() >= self.probability:
            return []
        # Refresh one neighbour chosen uniformly at random.
        victims = self.config.adjacent_rows(row)
        if not victims:
            return []
        victim = victims[int(self._rng.integers(0, len(victims)))]
        return self._request([(bank, victim)])
