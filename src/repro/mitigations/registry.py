"""Registry of mitigation mechanisms for the evaluation harness.

The Figure 10 benchmark sweeps mechanisms by name; this module maps names to
factories so the harness, examples and tests construct them uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.mitigations.base import MitigationConfig, MitigationMechanism
from repro.mitigations.ideal import IdealRefresh
from repro.mitigations.mrloc import MRLoc
from repro.mitigations.para import PARA
from repro.mitigations.prohit import ProHIT
from repro.mitigations.refresh_rate import IncreasedRefreshRate
from repro.mitigations.twice import TWiCe

MechanismFactory = Callable[[MitigationConfig], MitigationMechanism]

#: Factories for every evaluated mechanism, keyed by the name used in reports.
MECHANISM_FACTORIES: Dict[str, MechanismFactory] = {
    "IncreasedRefresh": IncreasedRefreshRate,
    "PARA": PARA,
    "ProHIT": ProHIT,
    "MRLoc": MRLoc,
    "TWiCe": lambda config: TWiCe(config, ideal=False),
    "TWiCe-ideal": lambda config: TWiCe(config, ideal=True),
    "Ideal": IdealRefresh,
}

#: HC_first ranges over which each mechanism can be meaningfully evaluated
#: (Section 6.1): ProHIT and MRLoc are only tuned for HC_first = 2000; the
#: increased refresh rate and non-ideal TWiCe do not scale below 32k.
EVALUATION_CONSTRAINTS: Dict[str, Callable[[int], bool]] = {
    "IncreasedRefresh": lambda hcfirst: hcfirst >= 32_000,
    "PARA": lambda hcfirst: True,
    "ProHIT": lambda hcfirst: hcfirst == 2_000,
    "MRLoc": lambda hcfirst: hcfirst == 2_000,
    "TWiCe": lambda hcfirst: hcfirst >= 32_000,
    "TWiCe-ideal": lambda hcfirst: True,
    "Ideal": lambda hcfirst: True,
}


def available_mechanisms() -> List[str]:
    """Names of all registered mechanisms."""
    return list(MECHANISM_FACTORIES)


def build_mechanism(name: str, config: MitigationConfig) -> MitigationMechanism:
    """Construct a mechanism by registry name.

    >>> from repro.mitigations.base import MitigationConfig
    >>> build_mechanism("PARA", MitigationConfig(hcfirst=4800)).name
    'PARA'
    """
    try:
        factory = MECHANISM_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown mechanism {name!r}; available: {available_mechanisms()}"
        ) from None
    return factory(config)


def is_evaluable(name: str, hcfirst: int) -> bool:
    """Whether the paper evaluates mechanism ``name`` at this HC_first value."""
    constraint = EVALUATION_CONSTRAINTS.get(name)
    if constraint is None:
        return True
    return constraint(hcfirst)
