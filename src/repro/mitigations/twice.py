"""TWiCe: time-window counters [Lee+ ISCA'19], Section 6.1.

TWiCe keeps a table entry per candidate victim row with two counters: an
*activation* counter (how many times the victim's aggressors have been
activated since the entry was allocated) and a *lifetime* counter (how many
refresh intervals the entry has existed).  A victim whose activation count
reaches the row-hammer threshold ``tRH = HC_first / 4`` is refreshed; during
every periodic refresh the table is pruned of entries whose activation rate
is too low to ever reach the threshold within the refresh window.

TWiCe's pruning rule breaks down once ``tRH`` falls below the number of
refresh intervals per refresh window (about 8k): the pruning threshold
becomes fractional and the table can no longer be kept small, so the paper
deems the mechanism non-scalable below ``HC_first`` of roughly 32k and
evaluates an idealized variant ("TWiCe-ideal") that assumes those issues
away at lower ``HC_first`` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.mitigations.base import MitigationConfig, MitigationMechanism

#: Below this HC_first the published TWiCe design cannot prune its table.
MINIMUM_VIABLE_HCFIRST = 32_000


@dataclass
class _TwiceEntry:
    """Tracking state for one candidate victim row."""

    activation_count: int = 0
    lifetime_intervals: int = 0


class TWiCe(MitigationMechanism):
    """Time-window counter-based victim tracking.

    Parameters
    ----------
    config:
        Shared mitigation configuration.
    ideal:
        When true, models "TWiCe-ideal": the variant the paper evaluates for
        ``HC_first`` below 32k, which assumes the pruning-latency and
        table-size problems of the real design are solved.
    """

    name = "TWiCe"
    scalable = False

    def __init__(self, config: MitigationConfig, ideal: bool = False) -> None:
        super().__init__(config)
        self.ideal = ideal
        if ideal:
            self.name = "TWiCe-ideal"
            self.scalable = True
        self.row_hammer_threshold = max(1, int(config.scaled_hcfirst) // 4)
        refreshes_per_window = config.refreshes_per_window
        #: minimum activations-per-interval rate an entry must sustain to stay
        self.pruning_threshold = self.row_hammer_threshold / refreshes_per_window
        self._table: Dict[Tuple[int, int], _TwiceEntry] = {}

    def is_viable(self) -> bool:
        """Whether the published (non-ideal) design applies at this HC_first."""
        return self.ideal or self.config.hcfirst >= MINIMUM_VIABLE_HCFIRST

    @property
    def table_size(self) -> int:
        """Current number of tracked victim rows."""
        return len(self._table)

    # ------------------------------------------------------------------
    # Mechanism hooks
    # ------------------------------------------------------------------
    def on_activate(self, bank: int, row: int, cycle: int) -> List[Tuple[int, int]]:
        victims: List[Tuple[int, int]] = []
        for victim_row in self.config.adjacent_rows(row):
            key = (bank, victim_row)
            entry = self._table.get(key)
            if entry is None:
                entry = _TwiceEntry()
                self._table[key] = entry
            entry.activation_count += 1
            if entry.activation_count >= self.row_hammer_threshold:
                victims.append(key)
        return self._request(victims)

    def on_victim_refreshed(self, bank: int, row: int, cycle: int) -> None:
        # Refreshing the victim restores its charge; its tracking entry can
        # be retired.
        self._table.pop((bank, row), None)

    def on_refresh(self, cycle: int) -> List[Tuple[int, int]]:
        """Pruning stage, performed under cover of the periodic refresh."""
        to_prune = []
        for key, entry in self._table.items():
            entry.lifetime_intervals += 1
            if entry.activation_count < self.pruning_threshold * entry.lifetime_intervals:
                to_prune.append(key)
        for key in to_prune:
            del self._table[key]
        return []

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info.update(
            ideal=self.ideal,
            row_hammer_threshold=self.row_hammer_threshold,
            pruning_threshold=self.pruning_threshold,
            table_size=self.table_size,
        )
        return info
