"""Reverse engineering of the DRAM-internal row address remapping.

The paper needs to know, for any victim row, which logical row addresses
activate the physically adjacent wordlines.  It discovers this by hammering
individual rows and observing which logical rows collect bit flips
(Section 4.3).  Two behaviours are distinguished:

* the common case, where hammering logical row N produces flips in logical
  rows N-1 and N+1 (identity-like mapping), and
* manufacturer B's LPDDR4-1x behaviour, where hammering row N (with N even)
  produces no flips in N-1/N+1 but near-equal flips in the two preceding
  and two following rows, indicating that consecutive row pairs share a
  wordline ("paired" mapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.data_patterns import DataPattern, worst_case_pattern
from repro.dram.chip import DramChip
from repro.softmc.host import SoftMCHost


@dataclass
class MappingInference:
    """Outcome of a row-mapping inference run."""

    inferred_mapping: str
    flips_by_offset: Dict[int, int] = field(default_factory=dict)
    probe_rows: Tuple[int, ...] = ()

    @property
    def adjacent_offsets(self) -> List[int]:
        """Row offsets (from the hammered row) that collected bit flips."""
        return sorted(offset for offset, count in self.flips_by_offset.items() if count > 0)


def _observe_single_row_hammer(
    host: SoftMCHost,
    bank: int,
    hammered_row: int,
    hammer_count: int,
    pattern: DataPattern,
    window: int,
) -> Dict[int, int]:
    """Hammer one row and count flips per logical-row offset around it."""
    chip = host.chip
    low = max(0, hammered_row - window)
    high = min(chip.geometry.rows_per_bank - 1, hammered_row + window)
    written: Dict[int, int] = {}
    for row in range(low, high + 1):
        byte = pattern.aggressor_byte if row == hammered_row else pattern.victim_byte
        host.write_row(bank, row, byte)
        written[row] = byte
    host.disable_refresh()
    host.activate(bank, hammered_row, hammer_count)
    host.enable_refresh()
    flips_by_offset: Dict[int, int] = {}
    for row, byte in written.items():
        observed = host.read_row(bank, row)
        expected = np.full(chip.geometry.row_bytes, byte, dtype=np.uint8)
        flips = int(np.unpackbits(observed ^ expected).sum())
        if flips:
            flips_by_offset[row - hammered_row] = flips
    return flips_by_offset


def infer_row_mapping(
    chip: DramChip,
    probe_rows: Optional[Sequence[int]] = None,
    hammer_count: int = 300_000,
    bank: int = 0,
    window: int = 4,
) -> MappingInference:
    """Infer whether the chip uses an identity-like or paired row mapping.

    Parameters
    ----------
    chip:
        Chip to probe.
    probe_rows:
        Rows to hammer individually; defaults to a few even rows near the
        middle of the bank (the paired mapping is easiest to recognize from
        an even logical row).
    hammer_count:
        Single-sided activation count per probe; the default is high so that
        even moderately vulnerable chips show flips.
    window:
        Number of rows on each side of the probe to observe.
    """
    host = SoftMCHost(chip)
    pattern = worst_case_pattern(chip.profile)
    if probe_rows is None:
        middle = chip.geometry.rows_per_bank // 2
        middle -= middle % 2  # start from an even logical row
        probe_rows = tuple(middle + 2 * index for index in range(3))

    total_by_offset: Dict[int, int] = {}
    for row in probe_rows:
        observed = _observe_single_row_hammer(host, bank, row, hammer_count, pattern, window)
        for offset, count in observed.items():
            total_by_offset[offset] = total_by_offset.get(offset, 0) + count

    adjacent = sorted(offset for offset, count in total_by_offset.items() if count > 0)
    # With an even hammered row, a paired mapping (consecutive logical rows
    # sharing a wordline) produces flips at offsets {-2, -1, +2, +3} but not
    # at +1 (the row sharing the hammered wordline); an identity-like mapping
    # produces flips at both -1 and +1 and never at +3.
    flips_at_plus_one = 1 in adjacent
    flips_at_plus_three = 3 in adjacent
    if flips_at_plus_three and not flips_at_plus_one:
        inferred = "paired"
    elif flips_at_plus_one or -1 in adjacent:
        inferred = "identity"
    else:
        inferred = "unknown"
    return MappingInference(
        inferred_mapping=inferred,
        flips_by_offset=total_by_offset,
        probe_rows=tuple(probe_rows),
    )
