"""Host-side controller for the SoftMC-like test infrastructure.

The host wraps a :class:`~repro.dram.chip.DramChip` and exposes the
operations the paper's testing methodology needs: fine-grained command
issue, refresh enable/disable, per-row refresh, raw row reads and writes,
bulk hammering, and temperature control.  Every operation is recorded in a
:class:`~repro.softmc.commands.CommandTrace` so the generated command
stream can be inspected.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.dram.chip import DramChip, RowData
from repro.softmc.commands import CommandKind, CommandTrace, DramCommand
from repro.softmc.temperature import TemperatureController


class RefreshEnabledError(RuntimeError):
    """Raised when a hammer routine is attempted with auto-refresh enabled.

    The paper disables all DRAM self-regulation events during the core loop
    of every RowHammer test so the measured effects are purely circuit-level
    (Section 4.3); the host enforces the same discipline.
    """


class SoftMCHost:
    """Command-level host interface to one chip under test.

    Parameters
    ----------
    chip:
        Chip plugged into the test infrastructure.
    temperature:
        Optional temperature controller (defaults to a 50 C chamber).
    record_trace:
        Whether to append every issued command to :attr:`trace`.
    """

    def __init__(
        self,
        chip: DramChip,
        temperature: Optional[TemperatureController] = None,
        record_trace: bool = True,
    ) -> None:
        self.chip = chip
        self.temperature = temperature or TemperatureController()
        self.trace = CommandTrace()
        self.record_trace = record_trace
        self._refresh_enabled = True
        self._open_row: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Trace helpers
    # ------------------------------------------------------------------
    def _record(self, command: DramCommand) -> None:
        if self.record_trace:
            self.trace.append(command)

    # ------------------------------------------------------------------
    # Refresh and temperature control
    # ------------------------------------------------------------------
    @property
    def refresh_enabled(self) -> bool:
        """Whether automatic refresh is currently enabled."""
        return self._refresh_enabled

    def disable_refresh(self) -> None:
        """Disable automatic refresh (Algorithm 1, line 9)."""
        self._refresh_enabled = False
        self._record(DramCommand(CommandKind.REFRESH_DISABLE))

    def enable_refresh(self) -> None:
        """Re-enable automatic refresh (Algorithm 1, line 14).

        Re-enabling refresh refreshes the whole chip, restoring every cell's
        charge so subsequent tests start from a clean state.
        """
        self._refresh_enabled = True
        self.chip.refresh_all()
        self._record(DramCommand(CommandKind.REFRESH_ENABLE))

    def set_temperature(self, celsius: float) -> float:
        """Set the chamber temperature and wait for it to stabilize."""
        self.temperature.set_target(celsius)
        self._record(DramCommand(CommandKind.SET_TEMPERATURE, payload=celsius))
        return self.temperature.stabilize()

    # ------------------------------------------------------------------
    # Row data access
    # ------------------------------------------------------------------
    def write_row(self, bank: int, row: int, data: RowData) -> None:
        """Write a full row (activate, write bursts, precharge)."""
        self._record(DramCommand(CommandKind.ACT, bank=bank, row=row))
        self._record(DramCommand(CommandKind.WR, bank=bank, row=row))
        self._record(DramCommand(CommandKind.PRE, bank=bank, row=row))
        self.chip.write_row(bank, row, data)

    def read_row(self, bank: int, row: int) -> np.ndarray:
        """Read a full row back (activate, read bursts, precharge)."""
        self._record(DramCommand(CommandKind.ACT, bank=bank, row=row))
        self._record(DramCommand(CommandKind.RD, bank=bank, row=row))
        self._record(DramCommand(CommandKind.PRE, bank=bank, row=row))
        return self.chip.read_row(bank, row)

    def refresh_row(self, bank: int, row: int) -> None:
        """Refresh a single row (Algorithm 1, line 10)."""
        self._record(DramCommand(CommandKind.REF, bank=bank, row=row))
        self.chip.refresh_row(bank, row)

    # ------------------------------------------------------------------
    # Hammering
    # ------------------------------------------------------------------
    def activate(self, bank: int, row: int, count: int = 1) -> int:
        """Issue ``count`` back-to-back activations of one row."""
        self._record(DramCommand(CommandKind.ACT, bank=bank, row=row, repeat=count))
        return self.chip.activate(bank, row, count)

    def hammer_pair(self, bank: int, row_a: int, row_b: int, hammer_count: int) -> int:
        """Run the double-sided core hammer loop (Algorithm 1, lines 11-13).

        Raises :class:`RefreshEnabledError` if refresh has not been disabled
        first, mirroring the methodological requirement that nothing may
        interrupt the core loop.
        """
        if self._refresh_enabled:
            raise RefreshEnabledError(
                "disable refresh before running the core hammer loop"
            )
        self._record(
            DramCommand(CommandKind.ACT, bank=bank, row=row_a, repeat=hammer_count)
        )
        self._record(
            DramCommand(CommandKind.ACT, bank=bank, row=row_b, repeat=hammer_count)
        )
        return self.chip.hammer_pair(bank, row_a, row_b, hammer_count)

    # ------------------------------------------------------------------
    # Timing helpers
    # ------------------------------------------------------------------
    def hammer_duration_ms(self, hammer_count: int) -> float:
        """Wall-clock duration of a double-sided hammer loop on real hardware.

        Used to verify the core loop stays under the 32 ms minimum refresh
        window so RowHammer flips are not conflated with retention failures.
        """
        return 2.0 * hammer_count * self.chip.spec.trc_ns / 1e6

    def fits_in_refresh_window(self, hammer_count: int, window_ms: float = 32.0) -> bool:
        """Whether a hammer loop of this length fits within a refresh window."""
        return self.hammer_duration_ms(hammer_count) <= window_ms
