"""Algorithm 1 expressed as SoftMC host commands.

:func:`run_characterization_routine` is a faithful, command-level rendering
of the paper's Algorithm 1 (DRAM RowHammer Characterization): it iterates
data patterns, victim rows, and hammer counts; disables refresh around the
core loop; refreshes the victim before hammering; records the observed bit
flips; and restores flipped rows to their original values.

The higher-level :class:`~repro.core.characterization.RowHammerCharacterizer`
performs the same procedure directly against the chip model and is what the
analysis studies use; this module exists to demonstrate and test the
infrastructure path, including the command stream it produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.data_patterns import DataPattern, STANDARD_PATTERNS
from repro.softmc.host import SoftMCHost


@dataclass(frozen=True)
class RoutineConfig:
    """Configuration of one command-level characterization run."""

    data_patterns: Tuple[DataPattern, ...] = STANDARD_PATTERNS
    hammer_counts: Tuple[int, ...] = (50_000, 150_000)
    bank: int = 0
    victim_rows: Optional[Tuple[int, ...]] = None
    temperature_celsius: float = 50.0


@dataclass
class RoutineObservation:
    """Bit flips recorded for one (pattern, victim, hammer count) step."""

    data_pattern: str
    hammer_count: int
    victim_row: int
    flipped_bits: Tuple[Tuple[int, int], ...]  # (row, bit index)


@dataclass
class RoutineResult:
    """All observations of one routine run."""

    chip_id: str
    observations: List[RoutineObservation] = field(default_factory=list)

    def total_flips(self) -> int:
        return sum(len(obs.flipped_bits) for obs in self.observations)


def _expected_row_bytes(host: SoftMCHost, byte: int) -> np.ndarray:
    return np.full(host.chip.geometry.row_bytes, byte, dtype=np.uint8)


def run_characterization_routine(
    host: SoftMCHost, config: Optional[RoutineConfig] = None
) -> RoutineResult:
    """Run Algorithm 1 against the chip plugged into ``host``."""
    config = config or RoutineConfig()
    chip = host.chip
    result = RoutineResult(chip_id=chip.chip_id)
    host.set_temperature(config.temperature_celsius)

    victims = config.victim_rows
    if victims is None:
        radius = chip.profile.blast_radius + 1
        if chip.remapper.name == "paired":
            radius *= 2
        victims = tuple(range(radius, chip.geometry.rows_per_bank - radius))

    for pattern in config.data_patterns:  # line 2: foreach DP
        # Line 3: write DP into all cells.  Rows alternate between the
        # victim byte and the aggressor byte by physical wordline parity.
        for row in range(chip.geometry.rows_per_bank):
            wordline = chip.remapper.logical_to_physical(row)
            byte = pattern.victim_byte if wordline % 2 == 0 else pattern.aggressor_byte
            host.write_row(config.bank, row, byte)

        for victim in victims:  # line 4: foreach row
            aggressors = chip.remapper.aggressors_for(victim)
            aggressors = [
                row for row in aggressors if 0 <= row < chip.geometry.rows_per_bank
            ]
            if len(aggressors) < 2:
                continue
            victim_wordline = chip.remapper.logical_to_physical(victim)
            victim_byte = (
                pattern.victim_byte if victim_wordline % 2 == 0 else pattern.aggressor_byte
            )
            for hammer_count in config.hammer_counts:  # line 8: foreach HC
                host.disable_refresh()             # line 9
                host.refresh_row(config.bank, victim)  # line 10
                host.hammer_pair(                  # lines 11-13 (core loop)
                    config.bank, aggressors[0], aggressors[-1], hammer_count
                )
                host.enable_refresh()              # line 14

                # Line 15: record bit flips (victim row only here; the
                # neighbourhood-wide analysis lives in repro.core).
                observed = host.read_row(config.bank, victim)
                expected = _expected_row_bytes(host, victim_byte)
                flipped_bits: List[Tuple[int, int]] = []
                if not np.array_equal(observed, expected):
                    expected_bits = np.unpackbits(expected)
                    observed_bits = np.unpackbits(observed)
                    for bit_index in np.nonzero(expected_bits != observed_bits)[0]:
                        flipped_bits.append((victim, int(bit_index)))
                result.observations.append(
                    RoutineObservation(
                        data_pattern=pattern.name,
                        hammer_count=hammer_count,
                        victim_row=victim,
                        flipped_bits=tuple(flipped_bits),
                    )
                )
                # Line 16: restore bit flips to their original values.
                if flipped_bits:
                    host.write_row(config.bank, victim, victim_byte)
    return result
