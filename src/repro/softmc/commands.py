"""DRAM command vocabulary and command traces.

SoftMC exposes DRAM to the host as a stream of low-level commands.  The
test routines in this package record the commands they issue so that tests
and examples can assert properties of the generated command stream (for
example, that the core hammer loop contains only activations and
precharges, with refresh disabled).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional


class CommandKind(enum.Enum):
    """DRAM and infrastructure commands the host can issue."""

    ACT = "ACT"              # activate (open) a row
    PRE = "PRE"              # precharge (close) the open row
    RD = "RD"                # read a column burst
    WR = "WR"                # write a column burst
    REF = "REF"              # refresh command
    REFRESH_DISABLE = "REFRESH_DISABLE"
    REFRESH_ENABLE = "REFRESH_ENABLE"
    SET_TEMPERATURE = "SET_TEMPERATURE"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class DramCommand:
    """One issued command with its arguments.

    ``bank`` and ``row`` are meaningful for ACT/PRE/RD/WR/REF-row commands;
    ``repeat`` compresses bulk hammering (``repeat`` back-to-back issues of
    the same command) so traces of 150k-hammer loops stay small.
    """

    kind: CommandKind
    bank: Optional[int] = None
    row: Optional[int] = None
    repeat: int = 1
    payload: Optional[float] = None

    def __post_init__(self) -> None:
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")


@dataclass
class CommandTrace:
    """An ordered record of issued commands."""

    commands: List[DramCommand] = field(default_factory=list)

    def append(self, command: DramCommand) -> None:
        """Record one command."""
        self.commands.append(command)

    def clear(self) -> None:
        """Drop all recorded commands."""
        self.commands.clear()

    def count(self, kind: CommandKind) -> int:
        """Total number of issues of a command kind (expanding repeats)."""
        return sum(c.repeat for c in self.commands if c.kind == kind)

    def activations_per_row(self) -> Dict[tuple, int]:
        """Activation count per (bank, row) across the trace."""
        counts: Dict[tuple, int] = {}
        for command in self.commands:
            if command.kind is CommandKind.ACT:
                key = (command.bank, command.row)
                counts[key] = counts.get(key, 0) + command.repeat
        return counts

    def __iter__(self) -> Iterator[DramCommand]:
        return iter(self.commands)

    def __len__(self) -> int:
        return len(self.commands)
