"""Temperature-controlled chamber model.

The paper performs all characterization at a stable ambient temperature of
50 degrees Celsius, using rubber heaters with a thermocouple feedback loop
for the SoftMC setups and a chamber with heating and cooling for LPDDR4.
The model here tracks a set point and converges the measured temperature
towards it, exposing the same "wait until stable" workflow the real
infrastructure needs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TemperatureController:
    """A simple first-order thermal model with a set point.

    Attributes
    ----------
    ambient_celsius:
        Temperature the chamber relaxes towards with the heaters off.
    set_point_celsius:
        Target temperature.
    tolerance_celsius:
        Band within which the temperature counts as stable.
    convergence_rate:
        Fraction of the remaining temperature error removed per step.
    """

    ambient_celsius: float = 25.0
    set_point_celsius: float = 50.0
    tolerance_celsius: float = 0.5
    convergence_rate: float = 0.5
    current_celsius: float = 25.0

    def set_target(self, celsius: float) -> None:
        """Change the set point."""
        if not -40.0 <= celsius <= 120.0:
            raise ValueError("set point outside the chamber's supported range")
        self.set_point_celsius = celsius

    def step(self, steps: int = 1) -> float:
        """Advance the thermal model and return the new temperature."""
        for _ in range(steps):
            error = self.set_point_celsius - self.current_celsius
            self.current_celsius += self.convergence_rate * error
        return self.current_celsius

    @property
    def is_stable(self) -> bool:
        """Whether the measured temperature is within tolerance of the set point."""
        return abs(self.current_celsius - self.set_point_celsius) <= self.tolerance_celsius

    def stabilize(self, max_steps: int = 100) -> float:
        """Run the controller until stable (or the step budget runs out)."""
        steps = 0
        while not self.is_stable and steps < max_steps:
            self.step()
            steps += 1
        if not self.is_stable:
            raise RuntimeError(
                f"temperature failed to stabilize at {self.set_point_celsius} C "
                f"within {max_steps} steps"
            )
        return self.current_celsius
