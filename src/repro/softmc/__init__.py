"""SoftMC-like test infrastructure substrate.

The paper drives its DDR3/DDR4 chips with SoftMC, an FPGA-based memory
controller that gives the host precise control over individual DRAM
commands, refresh, and chip temperature, and uses an equivalent in-house
tester for LPDDR4.  This package models that infrastructure at the command
level on top of the behavioural chip model:

* :mod:`repro.softmc.commands` -- the DRAM command vocabulary and traces.
* :mod:`repro.softmc.temperature` -- the temperature-controlled chamber.
* :mod:`repro.softmc.host` -- the host-side controller (refresh control,
  raw row access, bulk hammering).
* :mod:`repro.softmc.routine` -- Algorithm 1 expressed as host commands.
* :mod:`repro.softmc.reverse_engineer` -- discovery of the DRAM-internal
  row address remapping (Section 4.3).
"""

from repro.softmc.commands import CommandKind, DramCommand, CommandTrace
from repro.softmc.host import SoftMCHost, RefreshEnabledError
from repro.softmc.temperature import TemperatureController
from repro.softmc.routine import run_characterization_routine, RoutineConfig
from repro.softmc.reverse_engineer import infer_row_mapping, MappingInference

__all__ = [
    "CommandKind",
    "DramCommand",
    "CommandTrace",
    "SoftMCHost",
    "RefreshEnabledError",
    "TemperatureController",
    "run_characterization_routine",
    "RoutineConfig",
    "infer_row_mapping",
    "MappingInference",
]
