"""Data-pattern coverage study (Figure 4, Table 3, Observations 2-3).

For a fixed hammer count the study runs the characterization once per data
pattern, aggregates the unique bit flips each pattern exposes, and reports
every pattern's *coverage*: the fraction of the union of all observed flips
that the pattern finds on its own.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.characterization import RowHammerCharacterizer
from repro.core.data_patterns import DataPattern, STANDARD_PATTERNS, pattern_by_name
from repro.core.results import CoverageResult
from repro.dram.chip import DramChip
from repro.experiments.study import WorkUnit, register_study


@dataclass(frozen=True)
class CoverageStudyConfig:
    """Parameters of the Figure 4 / Table 3 data-pattern coverage study.

    ``patterns`` holds standard-pattern names; the default is the paper's
    eight patterns in plotting order.
    """

    hammer_count: int = DramChip.TEST_LIMIT_HC
    patterns: Tuple[str, ...] = tuple(p.name for p in STANDARD_PATTERNS)
    iterations: int = 1
    bank: int = 0
    victims: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.hammer_count <= 0:
            raise ValueError("hammer_count must be positive")
        if self.iterations < 1:
            raise ValueError("iterations must be at least 1")
        if not self.patterns:
            raise ValueError("at least one data pattern is required")


# ----------------------------------------------------------------------
# Work-unit decomposition: one unit per data pattern
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PatternCoverageUnit:
    """Payload of one coverage work unit: one pattern's flipped-cell set."""

    pattern: str
    chip_id: str
    type_node: str
    manufacturer: str
    cells: FrozenSet[Tuple[int, int, int]]


def _decompose_coverage(config: CoverageStudyConfig) -> List[WorkUnit]:
    """Shard the coverage study along its data-pattern axis.

    Each unit embeds the single-pattern restriction of the config (per the
    WorkUnit cache contract), so adding a pattern to a sweep replays the
    patterns already measured.
    """
    return [
        WorkUnit(
            study="fig4-coverage",
            unit_id=f"pattern/{name}",
            params={
                "pattern": name,
                "config": dataclasses.replace(config, patterns=(name,)),
            },
        )
        for name in config.patterns
    ]


def _run_coverage_unit(
    chip: DramChip, config: CoverageStudyConfig, unit: WorkUnit
) -> PatternCoverageUnit:
    """Hammer every victim with one pattern and collect its unique flips."""
    pattern = pattern_by_name(unit.param_dict["pattern"])
    characterizer = RowHammerCharacterizer(chip)
    victims = (
        list(config.victims)
        if config.victims is not None
        else characterizer.default_victims(config.bank)
    )
    cells: Set[Tuple[int, int, int]] = set()
    for _iteration in range(config.iterations):
        for result in characterizer.hammer_all_victims(
            config.hammer_count, data_pattern=pattern, bank=config.bank, victims=victims
        ):
            cells.update(flip.cell for flip in result.flips)
    return PatternCoverageUnit(
        pattern=pattern.name,
        chip_id=chip.chip_id,
        type_node=chip.profile.type_node.value,
        manufacturer=chip.profile.manufacturer,
        cells=frozenset(cells),
    )


def _merge_coverage(
    config: CoverageStudyConfig, payloads: Sequence[PatternCoverageUnit]
) -> CoverageResult:
    """Union the per-pattern flip sets and compute coverage fractions."""
    all_cells: Set[Tuple[int, int, int]] = set()
    for payload in payloads:
        all_cells.update(payload.cells)
    first = payloads[0]
    return CoverageResult(
        chip_id=first.chip_id,
        type_node=first.type_node,
        manufacturer=first.manufacturer,
        hammer_count=config.hammer_count,
        unique_flips_total=len(all_cells),
        coverage_by_pattern={
            payload.pattern: (len(payload.cells) / len(all_cells) if all_cells else 0.0)
            for payload in payloads
        },
        flips_by_pattern={payload.pattern: len(payload.cells) for payload in payloads},
    )


@register_study(
    "fig4-coverage",
    config=CoverageStudyConfig,
    decompose=_decompose_coverage,
    unit_runner=_run_coverage_unit,
    merge=_merge_coverage,
)
def run_pattern_coverage(chip: DramChip, config: CoverageStudyConfig) -> CoverageResult:
    """Per-data-pattern bit-flip coverage (Figure 4 / Table 3).

    Through a session this study runs *sharded*: one hermetic work unit per
    data pattern, each against a fresh copy of the chip, so every pattern's
    flip set is measured from the same pristine state (per-write
    refresh-epoch noise does not accumulate across patterns as it does in
    this monolithic reference loop).  Each unit executes on the columnar
    chip core -- pattern writes, disturbs, and read-back diffs are whole-
    neighbourhood vectorized ops -- with results bit-identical to the
    pre-columnar implementation, so cached unit digests replay unchanged.
    """
    return pattern_coverage(
        chip,
        hammer_count=config.hammer_count,
        patterns=tuple(pattern_by_name(name) for name in config.patterns),
        iterations=config.iterations,
        bank=config.bank,
        victims=config.victims,
    )


def pattern_coverage(
    chip: DramChip,
    hammer_count: int = DramChip.TEST_LIMIT_HC,
    patterns: Sequence[DataPattern] = STANDARD_PATTERNS,
    iterations: int = 1,
    bank: int = 0,
    victims: Optional[Sequence[int]] = None,
) -> CoverageResult:
    """Measure per-pattern coverage of all observable RowHammer bit flips.

    Parameters
    ----------
    chip:
        Chip under test.
    hammer_count:
        Hammer count used for every pattern (the paper uses 150k).
    patterns:
        Data patterns to compare (the paper's eight standard patterns).
    iterations:
        How many times to repeat the test per pattern; the paper uses ten
        iterations and aggregates unique flips across them.
    bank, victims:
        Victim rows to test; defaults to every testable row of bank 0.
    """
    characterizer = RowHammerCharacterizer(chip)
    victims = list(victims) if victims is not None else characterizer.default_victims(bank)

    cells_by_pattern: Dict[str, Set[Tuple[int, int, int]]] = {}
    for pattern in patterns:
        cells: Set[Tuple[int, int, int]] = set()
        for _iteration in range(iterations):
            for result in characterizer.hammer_all_victims(
                hammer_count, data_pattern=pattern, bank=bank, victims=victims
            ):
                cells.update(flip.cell for flip in result.flips)
        cells_by_pattern[pattern.name] = cells

    all_cells: Set[Tuple[int, int, int]] = set()
    for cells in cells_by_pattern.values():
        all_cells.update(cells)

    coverage = {
        name: (len(cells) / len(all_cells) if all_cells else 0.0)
        for name, cells in cells_by_pattern.items()
    }
    return CoverageResult(
        chip_id=chip.chip_id,
        type_node=chip.profile.type_node.value,
        manufacturer=chip.profile.manufacturer,
        hammer_count=hammer_count,
        unique_flips_total=len(all_cells),
        coverage_by_pattern=coverage,
        flips_by_pattern={name: len(cells) for name, cells in cells_by_pattern.items()},
    )


def worst_case_patterns_by_configuration(
    coverage_results: Iterable[CoverageResult],
) -> Dict[Tuple[str, str], Optional[str]]:
    """Aggregate Table 3: worst-case pattern per (type-node, manufacturer).

    When multiple chips of the same configuration are present, the pattern
    that wins most often is reported (the paper observes the worst-case
    pattern is consistent within a configuration -- Observation 3).
    """
    votes: Dict[Tuple[str, str], Dict[str, int]] = {}
    for result in coverage_results:
        key = (result.type_node, result.manufacturer)
        winner = result.worst_case_pattern
        if winner is None:
            continue
        votes.setdefault(key, {})
        votes[key][winner] = votes[key].get(winner, 0) + 1
    table: Dict[Tuple[str, str], Optional[str]] = {}
    for key, counts in votes.items():
        table[key] = max(counts, key=counts.get) if counts else None
    return table
