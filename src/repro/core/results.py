"""Shared result containers for characterization studies.

Results are plain dataclasses with dictionary serialization so that
benchmark harnesses can dump them as JSON-compatible structures and the
analysis layer can aggregate them across chips and configurations.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.data_patterns import DataPattern


@dataclass
class ChipSummary:
    """Aggregate characterization summary of one chip."""

    chip_id: str
    type_node: str
    manufacturer: str
    hcfirst: Optional[int] = None
    worst_pattern: Optional[str] = None
    total_flips_at_max_hc: int = 0
    max_hammer_count: int = 0
    rowhammerable: bool = False

    def to_dict(self) -> Dict[str, object]:
        """Serialize to plain Python types."""
        return asdict(self)


@dataclass
class SweepPoint:
    """One point of a hammer-count sweep: HC versus observed flip statistics."""

    hammer_count: int
    bit_flips: int
    cells_tested: int

    @property
    def flip_rate(self) -> float:
        """Observed RowHammer bit-flip rate (flips / cells tested)."""
        if self.cells_tested == 0:
            return 0.0
        return self.bit_flips / self.cells_tested

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["flip_rate"] = self.flip_rate
        return data


@dataclass
class SweepResult:
    """A full hammer-count sweep for one chip (one curve of Figure 5)."""

    chip_id: str
    type_node: str
    manufacturer: str
    data_pattern: str
    points: List[SweepPoint] = field(default_factory=list)

    def hammer_counts(self) -> List[int]:
        return [point.hammer_count for point in self.points]

    def flip_rates(self) -> List[float]:
        return [point.flip_rate for point in self.points]

    def to_dict(self) -> Dict[str, object]:
        return {
            "chip_id": self.chip_id,
            "type_node": self.type_node,
            "manufacturer": self.manufacturer,
            "data_pattern": self.data_pattern,
            "points": [point.to_dict() for point in self.points],
        }


@dataclass
class CoverageResult:
    """Per-data-pattern coverage of all observed bit flips (Figure 4)."""

    chip_id: str
    type_node: str
    manufacturer: str
    hammer_count: int
    unique_flips_total: int
    coverage_by_pattern: Dict[str, float] = field(default_factory=dict)
    flips_by_pattern: Dict[str, int] = field(default_factory=dict)

    @property
    def worst_case_pattern(self) -> Optional[str]:
        """The pattern with the highest coverage (Table 3), if any flips exist."""
        if not self.coverage_by_pattern:
            return None
        return max(self.coverage_by_pattern, key=self.coverage_by_pattern.get)

    def to_dict(self) -> Dict[str, object]:
        return {
            "chip_id": self.chip_id,
            "type_node": self.type_node,
            "manufacturer": self.manufacturer,
            "hammer_count": self.hammer_count,
            "unique_flips_total": self.unique_flips_total,
            "coverage_by_pattern": dict(self.coverage_by_pattern),
            "flips_by_pattern": dict(self.flips_by_pattern),
            "worst_case_pattern": self.worst_case_pattern,
        }


@dataclass
class SpatialResult:
    """Distribution of bit flips by row offset from the victim (Figure 6)."""

    chip_id: str
    type_node: str
    manufacturer: str
    hammer_count: int
    flips_by_offset: Dict[int, int] = field(default_factory=dict)

    @property
    def total_flips(self) -> int:
        return sum(self.flips_by_offset.values())

    def fraction_by_offset(self) -> Dict[int, float]:
        """Fraction of all flips observed at each row offset."""
        total = self.total_flips
        if total == 0:
            return {offset: 0.0 for offset in self.flips_by_offset}
        return {offset: count / total for offset, count in self.flips_by_offset.items()}

    def max_observed_offset(self) -> int:
        """Largest absolute row offset at which any flip was observed."""
        offsets = [abs(o) for o, count in self.flips_by_offset.items() if count > 0]
        return max(offsets) if offsets else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "chip_id": self.chip_id,
            "type_node": self.type_node,
            "manufacturer": self.manufacturer,
            "hammer_count": self.hammer_count,
            "flips_by_offset": {str(k): v for k, v in sorted(self.flips_by_offset.items())},
            "fraction_by_offset": {
                str(k): v for k, v in sorted(self.fraction_by_offset().items())
            },
        }


@dataclass
class WordDensityResult:
    """Distribution of the number of bit flips per 64-bit word (Figure 7)."""

    chip_id: str
    type_node: str
    manufacturer: str
    hammer_count: int
    words_by_flip_count: Dict[int, int] = field(default_factory=dict)

    @property
    def total_words_with_flips(self) -> int:
        return sum(self.words_by_flip_count.values())

    def fraction_by_flip_count(self) -> Dict[int, float]:
        """Fraction of flip-containing words that contain exactly N flips."""
        total = self.total_words_with_flips
        if total == 0:
            return {}
        return {n: count / total for n, count in self.words_by_flip_count.items()}

    def max_flips_in_any_word(self) -> int:
        populated = [n for n, count in self.words_by_flip_count.items() if count > 0]
        return max(populated) if populated else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "chip_id": self.chip_id,
            "type_node": self.type_node,
            "manufacturer": self.manufacturer,
            "hammer_count": self.hammer_count,
            "words_by_flip_count": {str(k): v for k, v in sorted(self.words_by_flip_count.items())},
            "fraction_by_flip_count": {
                str(k): v for k, v in sorted(self.fraction_by_flip_count().items())
            },
        }


@dataclass
class EccWordAnalysis:
    """``HC`` required to find the first word containing 1, 2 and 3 flips (Figure 9)."""

    chip_id: str
    type_node: str
    manufacturer: str
    word_bits: int
    hc_first_word_with: Dict[int, Optional[int]] = field(default_factory=dict)

    def multiplier(self, from_flips: int, to_flips: int) -> Optional[float]:
        """HC multiplier between finding ``from_flips`` and ``to_flips`` per word."""
        low = self.hc_first_word_with.get(from_flips)
        high = self.hc_first_word_with.get(to_flips)
        if low is None or high is None or low == 0:
            return None
        return high / low

    def to_dict(self) -> Dict[str, object]:
        return {
            "chip_id": self.chip_id,
            "type_node": self.type_node,
            "manufacturer": self.manufacturer,
            "word_bits": self.word_bits,
            "hc_first_word_with": {str(k): v for k, v in sorted(self.hc_first_word_with.items())},
            "multiplier_1_to_2": self.multiplier(1, 2),
            "multiplier_2_to_3": self.multiplier(2, 3),
        }


@dataclass
class ProbabilityResult:
    """Single-cell flip-probability monotonicity statistics (Table 5)."""

    chip_id: str
    type_node: str
    manufacturer: str
    hammer_counts: Tuple[int, ...]
    iterations: int
    cells_observed: int
    cells_monotonic: int

    @property
    def monotonic_fraction(self) -> float:
        """Fraction of observed cells with monotonically non-decreasing probability."""
        if self.cells_observed == 0:
            return 0.0
        return self.cells_monotonic / self.cells_observed

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["monotonic_fraction"] = self.monotonic_fraction
        return data
