"""Worst-case double-sided hammering of a single victim row.

This module implements the core loop of Algorithm 1 (lines 9-16) for one
victim row: prepare the data pattern in the victim's neighbourhood, disable
refresh, refresh the victim so that observed flips cannot be retention
failures, hammer the two physically adjacent aggressor rows, and read the
neighbourhood back to record bit flips.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.data_patterns import DataPattern, ROWSTRIPE0, worst_case_pattern
from repro.dram.chip import DramChip


@dataclass(frozen=True)
class BitFlip:
    """One observed RowHammer bit flip.

    Attributes
    ----------
    bank, row:
        Logical location of the flipped cell.
    bit_index:
        Bit position within the row (MSB-first within each byte).
    offset_from_victim:
        Signed logical-row distance from the victim row.
    expected_bit / observed_bit:
        The value written before hammering and the value read back.
    """

    bank: int
    row: int
    bit_index: int
    offset_from_victim: int
    expected_bit: int
    observed_bit: int

    @property
    def word64_index(self) -> int:
        """Index of the 64-bit word within the row containing this flip."""
        return self.bit_index // 64

    @property
    def cell(self) -> Tuple[int, int, int]:
        """Hashable identity of the flipped cell: (bank, row, bit index)."""
        return (self.bank, self.row, self.bit_index)


@dataclass
class HammerResult:
    """Outcome of hammering one victim row at one hammer count."""

    bank: int
    victim_row: int
    aggressor_rows: Tuple[int, ...]
    hammer_count: int
    data_pattern: DataPattern
    flips: List[BitFlip] = field(default_factory=list)

    @property
    def num_bit_flips(self) -> int:
        """Total number of observed bit flips in the victim's neighbourhood."""
        return len(self.flips)

    @property
    def victim_flips(self) -> List[BitFlip]:
        """Bit flips located in the victim row itself."""
        return [flip for flip in self.flips if flip.offset_from_victim == 0]

    def flips_at_offset(self, offset: int) -> List[BitFlip]:
        """Bit flips at a given signed row offset from the victim."""
        return [flip for flip in self.flips if flip.offset_from_victim == offset]

    def flips_per_word64(self) -> Dict[Tuple[int, int, int], int]:
        """Number of flips per 64-bit word, keyed by (bank, row, word index)."""
        return Counter((flip.bank, flip.row, flip.word64_index) for flip in self.flips)


class DoubleSidedHammer:
    """Executes worst-case double-sided RowHammer tests against one chip.

    Parameters
    ----------
    chip:
        The chip under test.
    neighbourhood_margin:
        Extra rows beyond the profile's blast radius to observe, so that the
        analysis can verify no flips occur outside the expected radius.
    """

    def __init__(self, chip: DramChip, neighbourhood_margin: int = 1) -> None:
        self.chip = chip
        self.neighbourhood_margin = neighbourhood_margin

    # ------------------------------------------------------------------
    # Neighbourhood helpers
    # ------------------------------------------------------------------
    def aggressor_rows(self, victim_row: int) -> List[int]:
        """Logical aggressor rows for a worst-case double-sided hammer."""
        rows = [
            row
            for row in self.chip.remapper.aggressors_for(victim_row)
            if 0 <= row < self.chip.geometry.rows_per_bank
        ]
        return rows

    def neighbourhood(self, victim_row: int) -> List[int]:
        """Logical rows observed around the victim (victim included)."""
        radius = self.chip.profile.blast_radius + self.neighbourhood_margin
        if self.chip.remapper.name == "paired":
            radius *= 2
        low = max(0, victim_row - radius)
        high = min(self.chip.geometry.rows_per_bank - 1, victim_row + radius)
        return list(range(low, high + 1))

    def testable_victims(self, bank: int = 0) -> List[int]:
        """Victim rows whose full double-sided neighbourhood is in range."""
        radius = self.chip.profile.blast_radius + self.neighbourhood_margin
        if self.chip.remapper.name == "paired":
            radius *= 2
        return list(range(radius, self.chip.geometry.rows_per_bank - radius))

    # ------------------------------------------------------------------
    # Pattern preparation and observation
    # ------------------------------------------------------------------
    def write_pattern(self, bank: int, victim_row: int, pattern: DataPattern) -> Dict[int, int]:
        """Write the data pattern into the victim's neighbourhood.

        Rows whose physical wordline shares the victim wordline's parity are
        written with the victim byte, others with the aggressor byte
        (Section 4.3, footnote 3).  Returns the byte written to each row so
        the read-back can compute expected data.
        """
        remapper = self.chip.remapper
        victim_wordline = remapper.logical_to_physical(victim_row)
        written: Dict[int, int] = {}
        for row in self.neighbourhood(victim_row):
            wordline = remapper.logical_to_physical(row)
            same_parity = (wordline - victim_wordline) % 2 == 0
            written[row] = pattern.victim_byte if same_parity else pattern.aggressor_byte
        self.chip.write_rows(bank, list(written), list(written.values()))
        return written

    def observe_flips(
        self, bank: int, victim_row: int, written: Dict[int, int]
    ) -> List[BitFlip]:
        """Read back the neighbourhood and diff against the written pattern.

        The whole neighbourhood is read in one batched (ECC-decoded) call
        and diffed as a matrix; flips are emitted in (row, ascending bit)
        order, exactly as the row-at-a-time walk produced them.
        """
        rows = list(written)
        if not rows:
            return []
        expected = np.unpackbits(
            np.repeat(
                np.array([written[row] for row in rows], dtype=np.uint8),
                self.chip.geometry.row_bytes,
            ).reshape(len(rows), self.chip.geometry.row_bytes),
            axis=1,
        )
        observed = np.unpackbits(self.chip.read_rows(bank, rows), axis=1)
        flips: List[BitFlip] = []
        for row_index, bit_index in np.argwhere(expected != observed):
            row = rows[row_index]
            flips.append(
                BitFlip(
                    bank=bank,
                    row=row,
                    bit_index=int(bit_index),
                    offset_from_victim=row - victim_row,
                    expected_bit=int(expected[row_index, bit_index]),
                    observed_bit=int(observed[row_index, bit_index]),
                )
            )
        return flips

    # ------------------------------------------------------------------
    # Hammer execution
    # ------------------------------------------------------------------
    def hammer_victim(
        self,
        bank: int,
        victim_row: int,
        hammer_count: int,
        data_pattern: Optional[DataPattern] = None,
        prepare: bool = True,
        restore: bool = True,
    ) -> HammerResult:
        """Run one double-sided hammer test against a victim row.

        Parameters
        ----------
        bank, victim_row:
            Victim location.
        hammer_count:
            Number of hammers (activations of *each* aggressor row).
        data_pattern:
            Pattern to write before hammering; defaults to the profile's
            worst-case pattern, as the paper does for all studies after
            Section 5.2.
        prepare:
            Whether to (re)write the pattern before hammering.  Disable when
            a caller has already laid out the full bank.
        restore:
            Whether to rewrite rows that experienced flips afterwards
            (Algorithm 1, line 16).
        """
        if data_pattern is None:
            data_pattern = worst_case_pattern(self.chip.profile)
        geometry = self.chip.geometry
        geometry.validate_address(bank, victim_row)

        if prepare:
            written = self.write_pattern(bank, victim_row, data_pattern)
        else:
            written = {
                row: self._expected_byte(victim_row, row, data_pattern)
                for row in self.neighbourhood(victim_row)
            }

        aggressors = self.aggressor_rows(victim_row)
        # Algorithm 1 line 10: refresh the victim so flips are not retention
        # failures.  (Refresh is assumed disabled around the core loop; the
        # chip model has no background refresh, matching that setting.)
        self.chip.refresh_row(bank, victim_row)

        if len(aggressors) >= 2:
            self.chip.hammer_pair(bank, aggressors[0], aggressors[-1], hammer_count)
        elif len(aggressors) == 1:
            self.chip.activate(bank, aggressors[0], hammer_count)

        flips = self.observe_flips(bank, victim_row, written)
        result = HammerResult(
            bank=bank,
            victim_row=victim_row,
            aggressor_rows=tuple(aggressors),
            hammer_count=hammer_count,
            data_pattern=data_pattern,
            flips=flips,
        )
        if restore and flips:
            flipped_rows = sorted({flip.row for flip in flips})
            self.chip.write_rows(bank, flipped_rows, [written[row] for row in flipped_rows])
        return result

    def hammer_single_sided(
        self,
        bank: int,
        victim_row: int,
        hammer_count: int,
        data_pattern: Optional[DataPattern] = None,
    ) -> HammerResult:
        """Run a single-sided hammer (only one aggressor row is activated).

        Used to demonstrate that double-sided hammering is the worst case
        (Section 4.3).
        """
        if data_pattern is None:
            data_pattern = worst_case_pattern(self.chip.profile)
        written = self.write_pattern(bank, victim_row, data_pattern)
        aggressors = self.aggressor_rows(victim_row)
        self.chip.refresh_row(bank, victim_row)
        if aggressors:
            self.chip.activate(bank, aggressors[0], hammer_count)
        flips = self.observe_flips(bank, victim_row, written)
        return HammerResult(
            bank=bank,
            victim_row=victim_row,
            aggressor_rows=tuple(aggressors[:1]),
            hammer_count=hammer_count,
            data_pattern=data_pattern,
            flips=flips,
        )

    def _expected_byte(self, victim_row: int, row: int, pattern: DataPattern) -> int:
        remapper = self.chip.remapper
        victim_wordline = remapper.logical_to_physical(victim_row)
        wordline = remapper.logical_to_physical(row)
        same_parity = (wordline - victim_wordline) % 2 == 0
        return pattern.victim_byte if same_parity else pattern.aggressor_byte
