"""Effect of ECC strength on the effective ``HC_first`` (Figure 9).

A single-error-correcting code masks the first bit flip in every 64-bit
word, so a chip protected by SEC ECC effectively fails only once some word
accumulates *two* flips; a double-error-correcting code pushes that to
three.  The study therefore measures, per chip,

* ``HC_first``  -- hammers until the first word with one flip,
* ``HC_second`` -- hammers until the first word with two flips,
* ``HC_third``  -- hammers until the first word with three flips,

and reports the multiplicative headroom each additional bit of correction
capability buys (Observations 12-13).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.characterization import RowHammerCharacterizer
from repro.core.data_patterns import DataPattern, pattern_by_name, worst_case_pattern
from repro.core.results import EccWordAnalysis
from repro.core.search import descend_and_search
from repro.dram.chip import DramChip
from repro.experiments.study import register_study
from repro.utils.stats import mean, stddev


def _max_flips_in_any_word(outcomes, word_bits: int) -> int:
    """Largest number of flips observed in any single word across outcomes."""
    counts = Counter(
        (flip.bank, flip.row, flip.bit_index // word_bits)
        for outcome in outcomes
        for flip in outcome.flips
    )
    return max(counts.values()) if counts else 0


@dataclass(frozen=True)
class EccWordStudyConfig:
    """Parameters of the Figure 9 ECC-strength analysis."""

    word_bits: int = 64
    flips_per_word: Tuple[int, ...] = (1, 2, 3)
    hammer_limit: int = 300_000
    data_pattern: Optional[str] = None
    bank: int = 0
    victims: Optional[Tuple[int, ...]] = None
    relative_precision: float = 0.03
    max_candidates: int = 8

    def __post_init__(self) -> None:
        if self.word_bits <= 0:
            raise ValueError("word_bits must be positive")
        if self.hammer_limit <= 0:
            raise ValueError("hammer_limit must be positive")
        if not self.flips_per_word or any(n < 1 for n in self.flips_per_word):
            raise ValueError("flips_per_word must hold positive counts")


@register_study("fig9-ecc-words", config=EccWordStudyConfig)
def run_ecc_word_analysis(chip: DramChip, config: EccWordStudyConfig) -> EccWordAnalysis:
    """Hammer count to land 1, 2 and 3 flips in one word (Figure 9)."""
    data_pattern = (
        pattern_by_name(config.data_pattern) if config.data_pattern is not None else None
    )
    return ecc_word_analysis(
        chip,
        word_bits=config.word_bits,
        flips_per_word=config.flips_per_word,
        hammer_limit=config.hammer_limit,
        data_pattern=data_pattern,
        bank=config.bank,
        victims=config.victims,
        relative_precision=config.relative_precision,
        max_candidates=config.max_candidates,
    )


def ecc_word_analysis(
    chip: DramChip,
    word_bits: int = 64,
    flips_per_word: Sequence[int] = (1, 2, 3),
    hammer_limit: int = 300_000,
    data_pattern: Optional[DataPattern] = None,
    bank: int = 0,
    victims: Optional[Sequence[int]] = None,
    relative_precision: float = 0.03,
    max_candidates: int = 8,
) -> EccWordAnalysis:
    """Find the hammer count at which the first word with N flips appears.

    The search screens all victims at the hammer limit, keeps the victims
    whose words accumulate the most flips, and binary-searches the minimal
    hammer count for each requested per-word flip count.

    Note that the paper excludes LPDDR4 chips from this analysis because
    their on-die ECC already obfuscates the visible flips; callers can still
    run it on LPDDR4 chips, in which case the result describes the flips
    visible *after* on-die ECC.
    """
    characterizer = RowHammerCharacterizer(chip)
    hammer = characterizer.hammer
    if data_pattern is None:
        data_pattern = worst_case_pattern(chip.profile)
    victims = list(victims) if victims is not None else characterizer.default_victims(bank)

    analysis = EccWordAnalysis(
        chip_id=chip.chip_id,
        type_node=chip.profile.type_node.value,
        manufacturer=chip.profile.manufacturer,
        word_bits=word_bits,
        hc_first_word_with={},
    )
    for target in flips_per_word:

        def reaches_target(victim: int, hammer_count: int, target=target) -> bool:
            outcome = hammer.hammer_victim(
                bank, victim, hammer_count, data_pattern=data_pattern
            )
            return _max_flips_in_any_word([outcome], word_bits) >= target

        best, _victim, _examined = descend_and_search(
            victims,
            reaches_target,
            hammer_limit=hammer_limit,
            relative_precision=relative_precision,
            max_candidates=max_candidates,
        )
        analysis.hc_first_word_with[int(target)] = best
    return analysis


def aggregate_hc_and_multipliers(
    analyses: Iterable[EccWordAnalysis],
    flips_per_word: Sequence[int] = (1, 2, 3),
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Aggregate Figure 9's two panels across chips of one configuration.

    Returns ``{"hc": {n: {mean, stddev}}, "multiplier": {n: {mean, stddev}}}``
    where the multiplier at ``n`` is the HC increase from ``n-1`` to ``n``
    flips per word.
    """
    analyses = list(analyses)
    hc_values: Dict[int, List[float]] = {n: [] for n in flips_per_word}
    multipliers: Dict[int, List[float]] = {n: [] for n in flips_per_word if n > 1}
    for analysis in analyses:
        for n in flips_per_word:
            value = analysis.hc_first_word_with.get(n)
            if value is not None:
                hc_values[n].append(float(value))
            if n > 1:
                multiplier = analysis.multiplier(n - 1, n)
                if multiplier is not None:
                    multipliers[n].append(multiplier)
    def summarize(series: Dict[int, List[float]]) -> Dict[int, Dict[str, float]]:
        summary: Dict[int, Dict[str, float]] = {}
        for key, values in series.items():
            if values:
                summary[key] = {"mean": mean(values), "stddev": stddev(values)}
            else:
                summary[key] = {"mean": 0.0, "stddev": 0.0}
        return summary

    return {"hc": summarize(hc_values), "multiplier": summarize(multipliers)}
