"""Bit-flip density per data word (Figure 7, Observations 8-9).

ECC protects DRAM at a word granularity (typically 64 or 128 bits), so what
matters for ECC's ability to mask RowHammer is how many flips land in the
*same* word.  This study histograms the number of flips per 64-bit word
across all words that contain at least one flip.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.calibration import resolve_hammer_count
from repro.core.characterization import RowHammerCharacterizer
from repro.core.data_patterns import DataPattern, pattern_by_name, worst_case_pattern
from repro.core.results import WordDensityResult
from repro.dram.chip import DramChip
from repro.experiments.study import register_study
from repro.utils.stats import mean, stddev


@dataclass(frozen=True)
class WordDensityStudyConfig:
    """Parameters of the Figure 7 flips-per-word study.

    As in :class:`repro.core.spatial.SpatialStudyConfig`, setting
    ``target_rate`` rate-normalizes the chip before measuring.
    """

    hammer_count: Optional[int] = None
    target_rate: Optional[float] = None
    word_bits: int = 64
    data_pattern: Optional[str] = None
    bank: int = 0
    victims: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.hammer_count is not None and self.hammer_count <= 0:
            raise ValueError("hammer_count must be positive")
        if self.target_rate is not None and self.target_rate <= 0:
            raise ValueError("target_rate must be positive")
        if self.word_bits <= 0:
            raise ValueError("word_bits must be positive")


@register_study("fig7-word-density", config=WordDensityStudyConfig)
def run_word_density(chip: DramChip, config: WordDensityStudyConfig) -> WordDensityResult:
    """Bit-flip density per data word (Figure 7)."""
    data_pattern = (
        pattern_by_name(config.data_pattern) if config.data_pattern is not None else None
    )
    hammer_count = resolve_hammer_count(
        chip, config.hammer_count, config.target_rate, data_pattern, config.bank, config.victims
    )
    return word_density(
        chip,
        hammer_count=hammer_count,
        word_bits=config.word_bits,
        data_pattern=data_pattern,
        bank=config.bank,
        victims=config.victims,
    )


def word_density(
    chip: DramChip,
    hammer_count: Optional[int] = None,
    word_bits: int = 64,
    data_pattern: Optional[DataPattern] = None,
    bank: int = 0,
    victims: Optional[Sequence[int]] = None,
) -> WordDensityResult:
    """Histogram the number of bit flips per ``word_bits``-bit word."""
    characterizer = RowHammerCharacterizer(chip)
    if data_pattern is None:
        data_pattern = worst_case_pattern(chip.profile)
    if hammer_count is None:
        hammer_count = DramChip.TEST_LIMIT_HC
    victims = list(victims) if victims is not None else characterizer.default_victims(bank)

    outcomes = characterizer.hammer_all_victims(
        hammer_count, data_pattern=data_pattern, bank=bank, victims=victims
    )
    word_counts = Counter(
        (flip.bank, flip.row, flip.bit_index // word_bits)
        for outcome in outcomes
        for flip in outcome.flips
    )
    histogram: Dict[int, int] = dict(Counter(word_counts.values()))
    return WordDensityResult(
        chip_id=chip.chip_id,
        type_node=chip.profile.type_node.value,
        manufacturer=chip.profile.manufacturer,
        hammer_count=hammer_count,
        words_by_flip_count=histogram,
    )


def aggregate_fraction_by_flip_count(
    results: Iterable[WordDensityResult],
    max_flips: int = 5,
) -> Dict[int, Dict[str, float]]:
    """Mean / stddev fraction of words with N flips across chips (Figure 7 bars)."""
    per_count: Dict[int, List[float]] = {n: [] for n in range(1, max_flips + 1)}
    for result in results:
        fractions = result.fraction_by_flip_count()
        for n in range(1, max_flips + 1):
            per_count[n].append(fractions.get(n, 0.0))
    aggregated: Dict[int, Dict[str, float]] = {}
    for n, values in per_count.items():
        if values:
            aggregated[n] = {"mean": mean(values), "stddev": stddev(values)}
        else:
            aggregated[n] = {"mean": 0.0, "stddev": 0.0}
    return aggregated


def single_flip_fraction(result: WordDensityResult) -> float:
    """Fraction of flip-containing words that hold exactly one flip.

    DDR3/DDR4 chips show an exponential-decay distribution dominated by
    single-flip words; LPDDR4 chips (whose on-die ECC hides most single-bit
    errors) show a much smaller single-flip fraction (Observation 9).
    """
    return result.fraction_by_flip_count().get(1, 0.0)
