"""Data patterns used by the RowHammer characterization (Section 4.3).

Each pattern is described by the byte written into the victim row (and every
row at an even offset from it) and the byte written into the aggressor rows
(and every row at an odd offset).  The paper tests eight patterns:

==============  ====  ===========  ==============
Pattern         Abbr  Victim byte  Aggressor byte
==============  ====  ===========  ==============
Solid0          SO0   0x00         0x00
Solid1          SO1   0xFF         0xFF
ColStripe0      CS0   0x55         0x55
ColStripe1      CS1   0xAA         0xAA
Checkered0      CH0   0x55         0xAA
Checkered1      CH1   0xAA         0x55
RowStripe0      RS0   0x00         0xFF
RowStripe1      RS1   0xFF         0x00
==============  ====  ===========  ==============
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.dram.vulnerability import VulnerabilityProfile


@dataclass(frozen=True)
class DataPattern:
    """A repeated-byte data pattern written before hammering.

    ``victim_byte`` fills the victim row and every row at an even offset
    from it; ``aggressor_byte`` fills the aggressor rows and every row at an
    odd offset (footnote 3 of the paper).
    """

    name: str
    abbreviation: str
    victim_byte: int
    aggressor_byte: int

    def __post_init__(self) -> None:
        for byte in (self.victim_byte, self.aggressor_byte):
            if not 0 <= byte <= 0xFF:
                raise ValueError(f"pattern byte {byte:#x} out of range")

    @property
    def is_uniform(self) -> bool:
        """Whether victim and aggressor rows store the same byte."""
        return self.victim_byte == self.aggressor_byte

    def inverse(self) -> "DataPattern":
        """The pattern with victim and aggressor bytes bit-inverted."""
        return DataPattern(
            name=f"{self.name}-inverse",
            abbreviation=f"~{self.abbreviation}",
            victim_byte=self.victim_byte ^ 0xFF,
            aggressor_byte=self.aggressor_byte ^ 0xFF,
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.abbreviation


SOLID0 = DataPattern("Solid0", "SO0", 0x00, 0x00)
SOLID1 = DataPattern("Solid1", "SO1", 0xFF, 0xFF)
COLSTRIPE0 = DataPattern("ColStripe0", "CS0", 0x55, 0x55)
COLSTRIPE1 = DataPattern("ColStripe1", "CS1", 0xAA, 0xAA)
CHECKERED0 = DataPattern("Checkered0", "CH0", 0x55, 0xAA)
CHECKERED1 = DataPattern("Checkered1", "CH1", 0xAA, 0x55)
ROWSTRIPE0 = DataPattern("RowStripe0", "RS0", 0x00, 0xFF)
ROWSTRIPE1 = DataPattern("RowStripe1", "RS1", 0xFF, 0x00)

#: The eight standard patterns in the order the paper plots them (Figure 4).
STANDARD_PATTERNS: Tuple[DataPattern, ...] = (
    ROWSTRIPE0,
    ROWSTRIPE1,
    COLSTRIPE0,
    COLSTRIPE1,
    CHECKERED0,
    CHECKERED1,
    SOLID0,
    SOLID1,
)

_BY_NAME: Dict[str, DataPattern] = {}
for _pattern in STANDARD_PATTERNS:
    _BY_NAME[_pattern.name] = _pattern
    _BY_NAME[_pattern.abbreviation] = _pattern


def pattern_by_name(name: str) -> DataPattern:
    """Look up a standard pattern by full name or abbreviation.

    >>> pattern_by_name("RS1").name
    'RowStripe1'
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown data pattern {name!r}; known: {sorted(set(_BY_NAME))}"
        ) from None


#: Worst-case pattern per coupling-class mix.  Every study that defaults its
#: data pattern calls :func:`worst_case_pattern` once per hammered victim;
#: caching by the coupling classes (the only profile state the coverage
#: evaluation reads, and a hashable tuple of frozen dataclasses) turns the
#: per-victim recomputation in sweeps into a dictionary lookup.
_WORST_CASE_CACHE: Dict[tuple, DataPattern] = {}


def worst_case_pattern(profile: VulnerabilityProfile) -> DataPattern:
    """The standard pattern expected to expose the most flips for a profile.

    The paper characterizes each chip with its worst-case pattern
    (Section 5.2); this helper evaluates the profile's coupling-class mix
    against every standard pattern and returns the most effective one.
    """
    key = profile.coupling_classes
    cached = _WORST_CASE_CACHE.get(key)
    if cached is None:
        cached = max(
            STANDARD_PATTERNS,
            key=lambda dp: profile.coverage_for_bytes(dp.victim_byte, dp.aggressor_byte),
        )
        _WORST_CASE_CACHE[key] = cached
    return cached
