"""Algorithm 1: the general RowHammer characterization routine.

:class:`RowHammerCharacterizer` drives a :class:`~repro.dram.chip.DramChip`
through the paper's test procedure: for each data pattern, for each victim
row, for each hammer count, run a worst-case double-sided hammer and record
every observed bit flip.  The narrower studies in the sibling modules
(coverage, sweeps, spatial, first-flip, ...) are built on top of this class.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.data_patterns import DataPattern, STANDARD_PATTERNS, worst_case_pattern
from repro.core.hammer import BitFlip, DoubleSidedHammer, HammerResult
from repro.dram.chip import DramChip
from repro.experiments.study import WorkUnit, register_study


@dataclass(frozen=True)
class CharacterizationConfig:
    """Parameters of a characterization run.

    Attributes
    ----------
    hammer_counts:
        Hammer counts to sweep (Algorithm 1 line 8).  The paper sweeps
        2k-150k; the default covers the same range more coarsely.
    data_patterns:
        Data patterns to test (Algorithm 1 line 2); ``None`` means only the
        chip's worst-case pattern.
    banks:
        Banks to test; ``None`` means bank 0 only (chips behave identically
        across banks in the model, as the paper's analyses are bank-agnostic).
    victim_rows:
        Victim rows to test; ``None`` means every row whose double-sided
        neighbourhood fits in the bank.
    max_test_hammers:
        Safety limit corresponding to the paper's 150k-hammer ceiling, which
        keeps the core loop within a refresh window.
    """

    hammer_counts: Tuple[int, ...] = (10_000, 25_000, 50_000, 100_000, 150_000)
    data_patterns: Optional[Tuple[DataPattern, ...]] = None
    banks: Optional[Tuple[int, ...]] = None
    victim_rows: Optional[Tuple[int, ...]] = None
    max_test_hammers: int = 150_000

    def __post_init__(self) -> None:
        if not self.hammer_counts:
            raise ValueError("at least one hammer count is required")
        if any(hc <= 0 for hc in self.hammer_counts):
            raise ValueError("hammer counts must be positive")
        if max(self.hammer_counts) > self.max_test_hammers:
            raise ValueError(
                f"hammer counts exceed the test limit of {self.max_test_hammers}"
            )


@dataclass
class CharacterizationRecord:
    """Flips observed for one (pattern, hammer count, victim) combination."""

    data_pattern: str
    hammer_count: int
    bank: int
    victim_row: int
    flips: Tuple[BitFlip, ...]


@dataclass
class CharacterizationResult:
    """All records produced by one characterization run on one chip."""

    chip_id: str
    type_node: str
    manufacturer: str
    config: CharacterizationConfig
    records: List[CharacterizationRecord] = field(default_factory=list)
    cells_tested_per_victim: int = 0

    def records_for(
        self,
        data_pattern: Optional[str] = None,
        hammer_count: Optional[int] = None,
    ) -> List[CharacterizationRecord]:
        """Filter records by pattern name and/or hammer count."""
        selected = self.records
        if data_pattern is not None:
            selected = [r for r in selected if r.data_pattern == data_pattern]
        if hammer_count is not None:
            selected = [r for r in selected if r.hammer_count == hammer_count]
        return selected

    def unique_flipped_cells(
        self,
        data_pattern: Optional[str] = None,
        hammer_count: Optional[int] = None,
    ) -> set:
        """Set of unique flipped cells across the selected records."""
        cells = set()
        for record in self.records_for(data_pattern, hammer_count):
            for flip in record.flips:
                cells.add(flip.cell)
        return cells

    def total_flips(
        self,
        data_pattern: Optional[str] = None,
        hammer_count: Optional[int] = None,
    ) -> int:
        """Total number of flip observations across the selected records."""
        return sum(
            len(record.flips) for record in self.records_for(data_pattern, hammer_count)
        )


# ----------------------------------------------------------------------
# Work-unit decomposition: one unit per hammer count of the grid
# ----------------------------------------------------------------------
def _decompose_characterization(config: CharacterizationConfig) -> List[WorkUnit]:
    """Shard Algorithm 1 along its hammer-count axis.

    The hammer counts are the one grid axis always enumerable from the
    config alone (patterns and victims may default from the chip), and each
    count is by far the most expensive dimension of the loop.
    """
    # Embedding the single-count restriction of the config satisfies the
    # WorkUnit cache contract by construction: every other config field
    # (patterns, banks, victims, test limit) rides along in the params, so
    # adding a hammer count to a sweep leaves the existing counts' cache
    # entries valid.
    return [
        WorkUnit(
            study="alg1-characterization",
            unit_id=f"hc{hammer_count}",
            params={
                "hammer_count": hammer_count,
                "config": dataclasses.replace(config, hammer_counts=(hammer_count,)),
            },
        )
        for hammer_count in config.hammer_counts
    ]


def _run_characterization_unit(
    chip: DramChip, config: CharacterizationConfig, unit: WorkUnit
) -> "CharacterizationResult":
    """Run the full pattern/bank/victim loop at one hammer count."""
    return RowHammerCharacterizer(chip).run(unit.param_dict["config"])


def _merge_characterization(
    config: CharacterizationConfig, payloads: Sequence["CharacterizationResult"]
) -> "CharacterizationResult":
    """Interleave per-hammer-count records back into Algorithm 1's order.

    Each unit's records are ordered pattern -> bank -> victim for its fixed
    hammer count; the monolithic loop iterates hammer counts innermost, so
    the merged record list takes one record per unit per (pattern, bank,
    victim) position.
    """
    first = payloads[0]
    record_counts = {len(payload.records) for payload in payloads}
    if len(record_counts) != 1:
        raise ValueError(
            f"characterization units disagree on grid size: {sorted(record_counts)}"
        )
    merged = CharacterizationResult(
        chip_id=first.chip_id,
        type_node=first.type_node,
        manufacturer=first.manufacturer,
        config=config,
        cells_tested_per_victim=first.cells_tested_per_victim,
    )
    for position in range(len(first.records)):
        for payload in payloads:
            merged.records.append(payload.records[position])
    return merged


@register_study(
    "alg1-characterization",
    config=CharacterizationConfig,
    decompose=_decompose_characterization,
    unit_runner=_run_characterization_unit,
    merge=_merge_characterization,
)
def run_characterization(
    chip: DramChip, config: CharacterizationConfig
) -> "CharacterizationResult":
    """Algorithm 1: the full characterization loop over one chip.

    Through a session this study runs *sharded*: one hermetic work unit per
    hammer count, each against a fresh copy of the chip.  Because per-write
    refresh-epoch noise then restarts per unit instead of accumulating
    across the sweep, the sharded payload is not bit-identical to this
    monolithic reference -- each hammer count is instead measured from the
    same pristine state, which is the semantics the sharded study defines.
    Each unit executes on the columnar chip core (vectorized pattern
    writes, disturbs, and read-back diffs), bit-identical per unit to the
    pre-columnar implementation, so cached unit digests replay unchanged.
    """
    return RowHammerCharacterizer(chip).run(config)


class RowHammerCharacterizer:
    """Runs Algorithm 1 against one chip.

    The characterizer hammers each victim row individually with its
    worst-case access sequence, exactly as the paper's methodology requires
    for comparability across testing infrastructures (Section 4.3).
    """

    def __init__(self, chip: DramChip, hammer: Optional[DoubleSidedHammer] = None) -> None:
        self.chip = chip
        self.hammer = hammer or DoubleSidedHammer(chip)

    # ------------------------------------------------------------------
    # Victim selection
    # ------------------------------------------------------------------
    def default_victims(self, bank: int = 0) -> List[int]:
        """All victim rows whose neighbourhood fits entirely in the bank."""
        return self.hammer.testable_victims(bank)

    def _resolve(self, config: CharacterizationConfig) -> Tuple[
        Tuple[DataPattern, ...], Tuple[int, ...], Tuple[int, ...]
    ]:
        patterns = config.data_patterns or (worst_case_pattern(self.chip.profile),)
        banks = config.banks or (0,)
        victims = config.victim_rows or tuple(self.default_victims(banks[0]))
        return tuple(patterns), tuple(banks), tuple(victims)

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def run(self, config: Optional[CharacterizationConfig] = None) -> CharacterizationResult:
        """Execute the full characterization loop and collect every record."""
        config = config or CharacterizationConfig()
        patterns, banks, victims = self._resolve(config)
        result = CharacterizationResult(
            chip_id=self.chip.chip_id,
            type_node=self.chip.profile.type_node.value,
            manufacturer=self.chip.profile.manufacturer,
            config=config,
            cells_tested_per_victim=self.chip.geometry.row_bits,
        )
        for pattern in patterns:
            for bank in banks:
                for victim in victims:
                    for hammer_count in config.hammer_counts:
                        outcome = self.hammer.hammer_victim(
                            bank, victim, hammer_count, data_pattern=pattern
                        )
                        result.records.append(
                            CharacterizationRecord(
                                data_pattern=pattern.name,
                                hammer_count=hammer_count,
                                bank=bank,
                                victim_row=victim,
                                flips=tuple(outcome.flips),
                            )
                        )
        return result

    # ------------------------------------------------------------------
    # Convenience primitives used by the focused studies
    # ------------------------------------------------------------------
    def hammer_all_victims(
        self,
        hammer_count: int,
        data_pattern: Optional[DataPattern] = None,
        bank: int = 0,
        victims: Optional[Sequence[int]] = None,
    ) -> List[HammerResult]:
        """Hammer every victim row once at a fixed hammer count."""
        if data_pattern is None:
            data_pattern = worst_case_pattern(self.chip.profile)
        victims = victims if victims is not None else self.default_victims(bank)
        return [
            self.hammer.hammer_victim(bank, victim, hammer_count, data_pattern=data_pattern)
            for victim in victims
        ]

    def cells_tested(self, victims: Sequence[int]) -> int:
        """Number of distinct victim-row cells covered by a set of victims."""
        return len(victims) * self.chip.geometry.row_bits
