"""Hammer-count sweep study (Figure 5, Observations 4-5).

Sweeping the hammer count and recording the aggregate bit-flip rate shows
the log-log-linear relationship between hammers and flips, and the clear
shift of the curve up and to the left for newer technology nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.characterization import RowHammerCharacterizer
from repro.core.data_patterns import DataPattern, pattern_by_name, worst_case_pattern
from repro.core.results import SweepPoint, SweepResult
from repro.dram.chip import DramChip
from repro.experiments.study import register_study

#: Default sweep mirroring the paper's 10k-150k range (Section 5.3).
DEFAULT_HAMMER_COUNTS: Tuple[int, ...] = (
    10_000,
    15_000,
    25_000,
    40_000,
    65_000,
    100_000,
    150_000,
)


@dataclass(frozen=True)
class SweepStudyConfig:
    """Parameters of the Figure 5 hammer-count sweep.

    ``data_pattern`` names a standard pattern; ``None`` means the chip's
    worst-case pattern.  ``victims`` of ``None`` means every testable row.
    """

    hammer_counts: Tuple[int, ...] = DEFAULT_HAMMER_COUNTS
    data_pattern: Optional[str] = None
    bank: int = 0
    victims: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.hammer_counts:
            raise ValueError("at least one hammer count is required")
        if any(hc <= 0 for hc in self.hammer_counts):
            raise ValueError("hammer counts must be positive")


@register_study("fig5-hc-sweep", config=SweepStudyConfig)
def run_hammer_count_sweep(chip: DramChip, config: SweepStudyConfig) -> SweepResult:
    """Hammer-count versus bit-flip-rate sweep (Figure 5, Observations 4-5).

    Runs as one whole-study work unit (the sweep's points share mutated
    chip state, so the hammer-count axis must stay sequential); within it
    every per-victim hammer executes on the columnar chip core as
    vectorized whole-neighbourhood ops, bit-identical to the pre-columnar
    implementation, so cached study digests replay unchanged.
    """
    data_pattern = (
        pattern_by_name(config.data_pattern) if config.data_pattern is not None else None
    )
    return _sweep(chip, config.hammer_counts, data_pattern, config.bank, config.victims)


def _sweep(
    chip: DramChip,
    hammer_counts: Sequence[int],
    data_pattern: Optional[DataPattern],
    bank: int,
    victims: Optional[Sequence[int]],
) -> SweepResult:
    characterizer = RowHammerCharacterizer(chip)
    if data_pattern is None:
        data_pattern = worst_case_pattern(chip.profile)
    victims = list(victims) if victims is not None else characterizer.default_victims(bank)
    cells_tested = characterizer.cells_tested(victims)

    result = SweepResult(
        chip_id=chip.chip_id,
        type_node=chip.profile.type_node.value,
        manufacturer=chip.profile.manufacturer,
        data_pattern=data_pattern.name,
    )
    for hammer_count in sorted(hammer_counts):
        outcomes = characterizer.hammer_all_victims(
            hammer_count, data_pattern=data_pattern, bank=bank, victims=victims
        )
        flips = sum(outcome.num_bit_flips for outcome in outcomes)
        result.points.append(
            SweepPoint(hammer_count=hammer_count, bit_flips=flips, cells_tested=cells_tested)
        )
    return result


def hammer_count_sweep(
    chip: DramChip,
    hammer_counts: Sequence[int] = DEFAULT_HAMMER_COUNTS,
    data_pattern: Optional[DataPattern] = None,
    bank: int = 0,
    victims: Optional[Sequence[int]] = None,
) -> SweepResult:
    """Sweep the hammer count and record the aggregate bit-flip rate.

    The flip rate is the number of observed bit flips divided by the number
    of bits in the tested victim rows, matching the paper's definition
    (footnote 6).  Backward-compatible wrapper sharing its implementation
    with the registered ``"fig5-hc-sweep"`` study; unlike the config-driven
    study it accepts arbitrary (non-standard) :class:`DataPattern` objects.
    """
    return _sweep(chip, hammer_counts, data_pattern, bank, victims)


def loglog_slope(sweep: SweepResult) -> Optional[float]:
    """Least-squares slope of log10(flip rate) versus log10(hammer count).

    Only points with a non-zero flip rate participate; ``None`` is returned
    when fewer than two such points exist.  Observation 4 states this
    relationship is linear.
    """
    points = [(p.hammer_count, p.flip_rate) for p in sweep.points if p.flip_rate > 0]
    if len(points) < 2:
        return None
    xs = [math.log10(hc) for hc, _rate in points]
    ys = [math.log10(rate) for _hc, rate in points]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        return None
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return numerator / denominator


def average_flip_rates(
    sweeps: Iterable[SweepResult],
) -> Dict[int, float]:
    """Average flip rate per hammer count across several chips' sweeps.

    This is how Figure 5 aggregates chips of one type-node configuration.
    """
    totals: Dict[int, List[float]] = {}
    for sweep in sweeps:
        for point in sweep.points:
            totals.setdefault(point.hammer_count, []).append(point.flip_rate)
    return {hc: sum(rates) / len(rates) for hc, rates in sorted(totals.items())}
