"""Technology-scaling projection of ``HC_first`` (Section 6 motivation).

The paper's mitigation study sweeps ``HC_first`` far below today's observed
minimum (4.8k) because the characterization shows a clear downward trend
from older to newer technology nodes.  This module fits that trend and
produces the projected ``HC_first`` values the mitigation evaluation uses
(Figure 10's x-axis, 200k down to 64).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: The HC_first values at which the paper evaluates mitigation mechanisms
#: (Figure 10 sweeps from 200k down to 64 hammers).
MITIGATION_EVALUATION_HCFIRST: Tuple[int, ...] = (
    200_000,
    100_000,
    50_000,
    25_600,
    12_800,
    6_400,
    3_200,
    2_000,
    1_600,
    1_024,
    512,
    256,
    128,
    64,
)

#: Observed minimum HC_first per generation ordered oldest to newest, taken
#: from Table 4 (the smallest value across manufacturers per type-node).
OBSERVED_GENERATION_MINIMA: Tuple[Tuple[str, float], ...] = (
    ("DDR3-old", 69_200.0),
    ("DDR3-new", 22_400.0),
    ("DDR4-old", 17_500.0),
    ("DDR4-new", 10_000.0),
    ("LPDDR4-1x", 16_800.0),
    ("LPDDR4-1y", 4_800.0),
)


@dataclass(frozen=True)
class ScalingProjection:
    """An exponential fit of ``HC_first`` versus generation index."""

    intercept_log10: float
    slope_log10_per_generation: float
    generations: Tuple[str, ...]

    def hcfirst_at(self, generation_index: float) -> float:
        """Projected ``HC_first`` at a (possibly fractional/future) generation index."""
        return 10 ** (self.intercept_log10 + self.slope_log10_per_generation * generation_index)

    def generations_until(self, target_hcfirst: float) -> Optional[float]:
        """How many generations beyond the last observed one until the target.

        Returns ``None`` if the fitted trend is not decreasing.
        """
        if self.slope_log10_per_generation >= 0:
            return None
        last_index = len(self.generations) - 1
        target_index = (math.log10(target_hcfirst) - self.intercept_log10) / (
            self.slope_log10_per_generation
        )
        return target_index - last_index


def fit_scaling_trend(
    observations: Sequence[Tuple[str, float]] = OBSERVED_GENERATION_MINIMA,
) -> ScalingProjection:
    """Least-squares fit of log10(HC_first) against generation index.

    >>> projection = fit_scaling_trend()
    >>> projection.slope_log10_per_generation < 0
    True
    """
    if len(observations) < 2:
        raise ValueError("at least two generations are needed to fit a trend")
    xs = list(range(len(observations)))
    ys = [math.log10(value) for _label, value in observations]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denominator = sum((x - mean_x) ** 2 for x in xs)
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / denominator
    intercept = mean_y - slope * mean_x
    return ScalingProjection(
        intercept_log10=intercept,
        slope_log10_per_generation=slope,
        generations=tuple(label for label, _value in observations),
    )


def project_future_hcfirst(
    future_generations: Sequence[str] = ("1z", "1a"),
    observations: Sequence[Tuple[str, float]] = OBSERVED_GENERATION_MINIMA,
) -> Dict[str, float]:
    """Project the minimum ``HC_first`` of future technology nodes.

    The paper names 1z and 1a as the nodes manufacturers are forecast to
    reach next (Section 6.3); the projection extrapolates the fitted
    generation-over-generation decline.
    """
    projection = fit_scaling_trend(observations)
    last_index = len(observations) - 1
    projected: Dict[str, float] = {}
    for offset, label in enumerate(future_generations, start=1):
        projected[label] = projection.hcfirst_at(last_index + offset)
    return projected
