"""The paper's primary contribution: the RowHammer characterization pipeline.

Modules map to the paper's experimental sections:

* :mod:`repro.core.data_patterns` -- the data patterns of Section 4.3.
* :mod:`repro.core.hammer` -- worst-case double-sided hammering of one victim.
* :mod:`repro.core.characterization` -- Algorithm 1, the general test routine.
* :mod:`repro.core.coverage` -- data-pattern coverage (Figure 4, Table 3).
* :mod:`repro.core.sweeps` -- hammer-count sweeps (Figure 5).
* :mod:`repro.core.spatial` -- spatial distribution of bit flips (Figure 6).
* :mod:`repro.core.word_density` -- bit flips per 64-bit word (Figure 7).
* :mod:`repro.core.first_flip` -- ``HC_first`` search (Figure 8, Table 4).
* :mod:`repro.core.ecc_analysis` -- ``HC_first/second/third`` (Figure 9).
* :mod:`repro.core.probability` -- single-cell flip probability (Table 5).
* :mod:`repro.core.scaling` -- projection of ``HC_first`` for future nodes.

Each study module registers itself with the :mod:`repro.experiments`
registry (``fig4-coverage``, ``fig5-hc-sweep``, ``fig6-spatial``,
``fig7-word-density``, ``fig8-hcfirst``, ``fig9-ecc-words``,
``table5-flip-probability``, ``alg1-characterization``) so a whole
population can be driven through one
:class:`~repro.experiments.session.ExperimentSession`; the free functions
remain as thin compatibility wrappers.
"""

from repro.core.data_patterns import DataPattern, STANDARD_PATTERNS, pattern_by_name
from repro.core.hammer import BitFlip, DoubleSidedHammer, HammerResult
from repro.core.characterization import RowHammerCharacterizer, CharacterizationConfig
from repro.core.coverage import CoverageStudyConfig, pattern_coverage
from repro.core.sweeps import SweepStudyConfig, hammer_count_sweep
from repro.core.spatial import SpatialStudyConfig, spatial_distribution
from repro.core.word_density import WordDensityStudyConfig, word_density
from repro.core.first_flip import HCFirstResult, HCFirstStudyConfig, find_hcfirst
from repro.core.ecc_analysis import EccWordStudyConfig, ecc_word_analysis
from repro.core.probability import ProbabilityStudyConfig, flip_probability_study
from repro.core.results import ChipSummary

__all__ = [
    "DataPattern",
    "STANDARD_PATTERNS",
    "pattern_by_name",
    "BitFlip",
    "DoubleSidedHammer",
    "HammerResult",
    "RowHammerCharacterizer",
    "CharacterizationConfig",
    "CoverageStudyConfig",
    "pattern_coverage",
    "SweepStudyConfig",
    "hammer_count_sweep",
    "SpatialStudyConfig",
    "spatial_distribution",
    "WordDensityStudyConfig",
    "word_density",
    "HCFirstResult",
    "HCFirstStudyConfig",
    "find_hcfirst",
    "EccWordStudyConfig",
    "ecc_word_analysis",
    "ProbabilityStudyConfig",
    "flip_probability_study",
    "ChipSummary",
]
