"""Single-cell RowHammer bit-flip probability study (Table 5, Observation 14).

For each hammer count in a sweep the study hammers each victim row several
times (iterations) and records, per cell, how often it flipped.  A cell with
a *monotonically non-decreasing* empirical flip probability behaves the way
the underlying circuit mechanism predicts: more hammers mean more charge
loss and a higher chance of flipping.  The paper finds more than 97% of
DDR3/DDR4 cells behave monotonically while only about half of LPDDR4 cells
do -- because on-die ECC masks and un-masks flips as neighbouring cells in
the same ECC word start failing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.characterization import RowHammerCharacterizer
from repro.core.data_patterns import DataPattern, pattern_by_name, worst_case_pattern
from repro.core.results import ProbabilityResult
from repro.dram.chip import DramChip
from repro.experiments.study import register_study

#: Default hammer counts: a coarse version of the paper's 25k-150k sweep.
DEFAULT_PROBABILITY_HC_SWEEP: Tuple[int, ...] = (25_000, 50_000, 75_000, 100_000, 125_000, 150_000)


@dataclass(frozen=True)
class ProbabilityStudyConfig:
    """Parameters of the Table 5 flip-probability monotonicity study."""

    hammer_counts: Tuple[int, ...] = DEFAULT_PROBABILITY_HC_SWEEP
    iterations: int = 10
    data_pattern: Optional[str] = None
    bank: int = 0
    victims: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.hammer_counts or any(hc <= 0 for hc in self.hammer_counts):
            raise ValueError("hammer_counts must hold positive values")
        if self.iterations < 1:
            raise ValueError("iterations must be at least 1")


@register_study("table5-flip-probability", config=ProbabilityStudyConfig)
def run_flip_probability_study(
    chip: DramChip, config: ProbabilityStudyConfig
) -> ProbabilityResult:
    """Single-cell flip-probability monotonicity (Table 5)."""
    data_pattern = (
        pattern_by_name(config.data_pattern) if config.data_pattern is not None else None
    )
    return flip_probability_study(
        chip,
        hammer_counts=config.hammer_counts,
        iterations=config.iterations,
        data_pattern=data_pattern,
        bank=config.bank,
        victims=config.victims,
    )


def flip_probability_study(
    chip: DramChip,
    hammer_counts: Sequence[int] = DEFAULT_PROBABILITY_HC_SWEEP,
    iterations: int = 10,
    data_pattern: Optional[DataPattern] = None,
    bank: int = 0,
    victims: Optional[Sequence[int]] = None,
) -> ProbabilityResult:
    """Measure per-cell flip probabilities across a hammer-count sweep.

    Parameters
    ----------
    chip:
        Chip under test.
    hammer_counts:
        Hammer counts to sweep (ascending); the paper sweeps 25k-150k in 5k
        steps.
    iterations:
        Hammer repetitions per hammer count used to estimate each cell's
        flip probability (the paper uses 20).
    data_pattern, bank, victims:
        As in the other studies.
    """
    characterizer = RowHammerCharacterizer(chip)
    hammer = characterizer.hammer
    if data_pattern is None:
        data_pattern = worst_case_pattern(chip.profile)
    victims = list(victims) if victims is not None else characterizer.default_victims(bank)
    hammer_counts = tuple(sorted(hammer_counts))

    # flip_counts[cell][hc_index] = number of iterations in which the cell flipped
    flip_counts: Dict[Tuple[int, int, int], List[int]] = {}
    for hc_index, hammer_count in enumerate(hammer_counts):
        for _iteration in range(iterations):
            for victim in victims:
                outcome = hammer.hammer_victim(
                    bank, victim, hammer_count, data_pattern=data_pattern
                )
                for flip in outcome.flips:
                    counts = flip_counts.setdefault(flip.cell, [0] * len(hammer_counts))
                    counts[hc_index] += 1

    cells_observed = len(flip_counts)
    cells_monotonic = 0
    for counts in flip_counts.values():
        probabilities = [count / iterations for count in counts]
        if all(b >= a for a, b in zip(probabilities, probabilities[1:])):
            cells_monotonic += 1

    return ProbabilityResult(
        chip_id=chip.chip_id,
        type_node=chip.profile.type_node.value,
        manufacturer=chip.profile.manufacturer,
        hammer_counts=hammer_counts,
        iterations=iterations,
        cells_observed=cells_observed,
        cells_monotonic=cells_monotonic,
    )


def monotonic_fraction_summary(
    results: Iterable[ProbabilityResult],
) -> Dict[Tuple[str, str], float]:
    """Average monotonic fraction per (type-node, manufacturer) -- Table 5 cells."""
    grouped: Dict[Tuple[str, str], List[float]] = {}
    for result in results:
        grouped.setdefault((result.type_node, result.manufacturer), []).append(
            result.monotonic_fraction
        )
    return {key: sum(values) / len(values) for key, values in grouped.items()}
