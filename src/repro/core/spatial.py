"""Spatial distribution of RowHammer bit flips (Figure 6, Observations 6-7).

The study hammers every victim row and histograms the observed bit flips by
their signed row offset from the victim.  The paper's key findings are that
flips concentrate on the victim row, appear only at even offsets, never
appear in the aggressor rows themselves, and extend farther from the victim
in newer (LPDDR4) technology nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.calibration import resolve_hammer_count
from repro.core.characterization import RowHammerCharacterizer
from repro.core.data_patterns import DataPattern, pattern_by_name, worst_case_pattern
from repro.core.results import SpatialResult
from repro.dram.chip import DramChip
from repro.experiments.study import register_study
from repro.utils.stats import mean, stddev


@dataclass(frozen=True)
class SpatialStudyConfig:
    """Parameters of the Figure 6 spatial-distribution study.

    ``target_rate`` enables the paper's rate normalization: when set, the
    study first calibrates a chip-specific hammer count producing that
    aggregate flip rate and uses it instead of ``hammer_count`` (falling
    back to the 150k test ceiling when the rate is unreachable).
    """

    hammer_count: Optional[int] = None
    target_rate: Optional[float] = None
    data_pattern: Optional[str] = None
    bank: int = 0
    victims: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.hammer_count is not None and self.hammer_count <= 0:
            raise ValueError("hammer_count must be positive")
        if self.target_rate is not None and self.target_rate <= 0:
            raise ValueError("target_rate must be positive")


@register_study("fig6-spatial", config=SpatialStudyConfig)
def run_spatial_distribution(chip: DramChip, config: SpatialStudyConfig) -> SpatialResult:
    """Spatial distribution of bit flips around the victim (Figure 6)."""
    data_pattern = (
        pattern_by_name(config.data_pattern) if config.data_pattern is not None else None
    )
    hammer_count = resolve_hammer_count(
        chip, config.hammer_count, config.target_rate, data_pattern, config.bank, config.victims
    )
    return spatial_distribution(
        chip,
        hammer_count=hammer_count,
        data_pattern=data_pattern,
        bank=config.bank,
        victims=config.victims,
    )


def spatial_distribution(
    chip: DramChip,
    hammer_count: Optional[int] = None,
    data_pattern: Optional[DataPattern] = None,
    bank: int = 0,
    victims: Optional[Sequence[int]] = None,
) -> SpatialResult:
    """Histogram observed bit flips by row offset from the victim.

    The paper normalizes chips to a common bit-flip rate of 1e-6 by picking
    a chip-specific hammer count; with the simulator's (much smaller) chips
    the default instead uses the 150k test ceiling, which yields enough
    flips for a stable histogram.  Pass ``hammer_count`` to override.
    """
    characterizer = RowHammerCharacterizer(chip)
    if data_pattern is None:
        data_pattern = worst_case_pattern(chip.profile)
    if hammer_count is None:
        hammer_count = DramChip.TEST_LIMIT_HC
    victims = list(victims) if victims is not None else characterizer.default_victims(bank)

    flips_by_offset: Dict[int, int] = {}
    max_offset = chip.profile.blast_radius + 1
    if chip.remapper.name == "paired":
        max_offset *= 2
    for offset in range(-max_offset, max_offset + 1):
        flips_by_offset[offset] = 0

    outcomes = characterizer.hammer_all_victims(
        hammer_count, data_pattern=data_pattern, bank=bank, victims=victims
    )
    for outcome in outcomes:
        for flip in outcome.flips:
            flips_by_offset[flip.offset_from_victim] = (
                flips_by_offset.get(flip.offset_from_victim, 0) + 1
            )
    return SpatialResult(
        chip_id=chip.chip_id,
        type_node=chip.profile.type_node.value,
        manufacturer=chip.profile.manufacturer,
        hammer_count=hammer_count,
        flips_by_offset=flips_by_offset,
    )


def aggregate_fraction_by_offset(
    results: Iterable[SpatialResult],
) -> Dict[int, Dict[str, float]]:
    """Mean and standard deviation of the per-offset flip fraction across chips.

    Matches how Figure 6 reports each configuration: one bar (mean) with an
    error bar (standard deviation) per row offset.
    """
    per_offset: Dict[int, List[float]] = {}
    for result in results:
        fractions = result.fraction_by_offset()
        for offset, fraction in fractions.items():
            per_offset.setdefault(offset, []).append(fraction)
    aggregated: Dict[int, Dict[str, float]] = {}
    for offset, values in sorted(per_offset.items()):
        aggregated[offset] = {"mean": mean(values), "stddev": stddev(values)}
    return aggregated


def flips_in_aggressor_rows(result: SpatialResult, aggressor_offsets: Sequence[int] = (-1, 1)) -> int:
    """Number of flips observed in the aggressor rows (expected to be zero).

    Repeatedly activating a row refreshes it, so the paper observes no flips
    at the aggressor offsets; this helper lets tests and reports verify the
    same invariant.
    """
    return sum(result.flips_by_offset.get(offset, 0) for offset in aggressor_offsets)
