"""``HC_first`` search: the minimum hammer count causing the first bit flip.

``HC_first`` is the paper's headline vulnerability metric (Figure 8,
Table 4): the smallest number of double-sided hammers that induces any bit
flip anywhere in a chip.  Finding it naively requires a fine hammer-count
sweep over every row; this module implements the practical strategy a
characterization engineer would use:

1. hammer every candidate victim once at the test ceiling to find the rows
   containing the chip's weakest cells, then
2. binary-search the per-victim minimal hammer count over those candidates,
   pruning candidates that cannot beat the best value found so far.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.characterization import RowHammerCharacterizer
from repro.core.data_patterns import DataPattern, pattern_by_name, worst_case_pattern
from repro.core.hammer import DoubleSidedHammer
from repro.core.search import descend_and_search
from repro.dram.chip import DramChip
from repro.experiments.study import register_study


@dataclass(frozen=True)
class HCFirstStudyConfig:
    """Parameters of the ``HC_first`` search (Figure 8 / Tables 2 and 4)."""

    hammer_limit: int = DramChip.TEST_LIMIT_HC
    data_pattern: Optional[str] = None
    bank: int = 0
    victims: Optional[Tuple[int, ...]] = None
    relative_precision: float = 0.02
    max_candidates: int = 16

    def __post_init__(self) -> None:
        if self.hammer_limit <= 0:
            raise ValueError("hammer_limit must be positive")
        if not 0 < self.relative_precision < 1:
            raise ValueError("relative_precision must be within (0, 1)")
        if self.max_candidates < 1:
            raise ValueError("max_candidates must be at least 1")


@dataclass
class HCFirstResult:
    """Result of an ``HC_first`` search on one chip."""

    chip_id: str
    type_node: str
    manufacturer: str
    hcfirst: Optional[int]
    victim_row: Optional[int]
    hammer_limit: int
    data_pattern: str
    candidates_examined: int = 0

    @property
    def rowhammerable(self) -> bool:
        """Whether any bit flip was induced within the hammer limit."""
        return self.hcfirst is not None

    def to_dict(self) -> Dict[str, object]:
        return {
            "chip_id": self.chip_id,
            "type_node": self.type_node,
            "manufacturer": self.manufacturer,
            "hcfirst": self.hcfirst,
            "victim_row": self.victim_row,
            "hammer_limit": self.hammer_limit,
            "data_pattern": self.data_pattern,
            "rowhammerable": self.rowhammerable,
            "candidates_examined": self.candidates_examined,
        }


@register_study("fig8-hcfirst", config=HCFirstStudyConfig)
def run_hcfirst_search(chip: DramChip, config: HCFirstStudyConfig) -> HCFirstResult:
    """Minimum hammer count causing the first bit flip (Figure 8 / Table 4)."""
    data_pattern = (
        pattern_by_name(config.data_pattern) if config.data_pattern is not None else None
    )
    return find_hcfirst(
        chip,
        hammer_limit=config.hammer_limit,
        data_pattern=data_pattern,
        bank=config.bank,
        victims=config.victims,
        relative_precision=config.relative_precision,
        max_candidates=config.max_candidates,
    )


def find_hcfirst(
    chip: DramChip,
    hammer_limit: int = DramChip.TEST_LIMIT_HC,
    data_pattern: Optional[DataPattern] = None,
    bank: int = 0,
    victims: Optional[Sequence[int]] = None,
    relative_precision: float = 0.02,
    max_candidates: int = 16,
) -> HCFirstResult:
    """Find the chip's ``HC_first`` (Section 5.5).

    Parameters
    ----------
    chip:
        Chip under test.
    hammer_limit:
        Maximum hammer count to try (the paper's limit is 150k so the core
        loop stays within one refresh window).
    data_pattern:
        Data pattern to use; defaults to the chip's worst-case pattern.
    bank, victims:
        Victim rows to examine; defaults to every testable row of bank 0.
    relative_precision:
        Precision of the per-victim binary search.
    max_candidates:
        Cap on how many surviving victim rows are binary-searched after the
        geometric descent (see
        :func:`repro.core.search.descend_and_search`).
    """
    characterizer = RowHammerCharacterizer(chip)
    hammer = characterizer.hammer
    if data_pattern is None:
        data_pattern = worst_case_pattern(chip.profile)
    victims = list(victims) if victims is not None else characterizer.default_victims(bank)

    def any_flip(victim: int, hammer_count: int) -> bool:
        result = hammer.hammer_victim(bank, victim, hammer_count, data_pattern=data_pattern)
        return result.num_bit_flips > 0

    best_hc, best_victim, examined = descend_and_search(
        victims,
        any_flip,
        hammer_limit=hammer_limit,
        relative_precision=relative_precision,
        max_candidates=max_candidates,
    )
    return HCFirstResult(
        chip_id=chip.chip_id,
        type_node=chip.profile.type_node.value,
        manufacturer=chip.profile.manufacturer,
        hcfirst=best_hc,
        victim_row=best_victim,
        hammer_limit=hammer_limit,
        data_pattern=data_pattern.name,
        candidates_examined=examined,
    )


def population_hcfirst(
    chips: Iterable[DramChip],
    hammer_limit: int = DramChip.TEST_LIMIT_HC,
    **kwargs,
) -> List[HCFirstResult]:
    """Run the ``HC_first`` search over a population of chips."""
    return [find_hcfirst(chip, hammer_limit=hammer_limit, **kwargs) for chip in chips]


def minimum_hcfirst(results: Sequence[HCFirstResult]) -> Optional[int]:
    """Smallest ``HC_first`` across a set of results (Table 4 cells)."""
    values = [r.hcfirst for r in results if r.hcfirst is not None]
    return min(values) if values else None
