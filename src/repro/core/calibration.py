"""Per-chip hammer-count calibration for rate-normalized studies.

The paper's spatial-distribution and word-density studies (Figures 6 and 7)
normalize chips to a common RowHammer bit-flip rate by choosing a
chip-specific hammer count.  This module measures a chip's flip rate at a
couple of hammer counts and exploits the log-log-linear relationship between
hammer count and flip rate (Observation 4) to find the hammer count that
produces a requested rate.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.core.characterization import RowHammerCharacterizer
from repro.core.data_patterns import DataPattern, worst_case_pattern
from repro.dram.chip import DramChip


def measure_flip_rate(
    chip: DramChip,
    hammer_count: int,
    data_pattern: Optional[DataPattern] = None,
    bank: int = 0,
    victims: Optional[Sequence[int]] = None,
) -> float:
    """Measure the chip's aggregate flip rate at one hammer count."""
    characterizer = RowHammerCharacterizer(chip)
    if data_pattern is None:
        data_pattern = worst_case_pattern(chip.profile)
    victims = list(victims) if victims is not None else characterizer.default_victims(bank)
    outcomes = characterizer.hammer_all_victims(
        hammer_count, data_pattern=data_pattern, bank=bank, victims=victims
    )
    flips = sum(outcome.num_bit_flips for outcome in outcomes)
    return flips / characterizer.cells_tested(victims)


def resolve_hammer_count(
    chip: DramChip,
    hammer_count: Optional[int],
    target_rate: Optional[float],
    data_pattern: Optional[DataPattern] = None,
    bank: int = 0,
    victims: Optional[Sequence[int]] = None,
) -> int:
    """Hammer count for a (possibly rate-normalized) per-chip study.

    This is the shared normalization policy of the Figure 6 / Figure 7
    studies: calibrate a chip-specific hammer count when ``target_rate`` is
    set, otherwise use the explicit ``hammer_count``, otherwise fall back
    to the 150k test ceiling (also used when the rate is unreachable).
    """
    if target_rate is not None:
        calibrated = hammer_count_for_flip_rate(
            chip,
            target_rate=target_rate,
            data_pattern=data_pattern,
            bank=bank,
            victims=victims,
        )
        if calibrated is not None:
            return calibrated
    if hammer_count is not None:
        return hammer_count
    return DramChip.TEST_LIMIT_HC


def hammer_count_for_flip_rate(
    chip: DramChip,
    target_rate: float,
    hammer_limit: int = DramChip.TEST_LIMIT_HC,
    data_pattern: Optional[DataPattern] = None,
    bank: int = 0,
    victims: Optional[Sequence[int]] = None,
    max_iterations: int = 6,
    tolerance: float = 0.5,
) -> Optional[int]:
    """Find a hammer count producing roughly ``target_rate`` bit flips per cell.

    Returns ``None`` when even the hammer limit cannot reach the target rate.
    The search exploits the power-law relationship between hammer count and
    flip rate: each iteration fits the local slope from the two most recent
    measurements and extrapolates towards the target.

    Parameters
    ----------
    tolerance:
        Relative tolerance on the achieved rate: the search stops once the
        measured rate is within ``[target * (1 - tolerance), target / (1 -
        tolerance)]``.
    """
    if target_rate <= 0:
        raise ValueError("target_rate must be positive")
    rate_at_limit = measure_flip_rate(chip, hammer_limit, data_pattern, bank, victims)
    if rate_at_limit < target_rate:
        return None
    current_hc = hammer_limit
    current_rate = rate_at_limit
    previous = (hammer_limit // 2, measure_flip_rate(chip, hammer_limit // 2, data_pattern, bank, victims))
    for _ in range(max_iterations):
        if target_rate * (1 - tolerance) <= current_rate <= target_rate / (1 - tolerance):
            return current_hc
        prev_hc, prev_rate = previous
        if prev_rate > 0 and prev_rate != current_rate and prev_hc != current_hc:
            slope = (math.log(current_rate) - math.log(prev_rate)) / (
                math.log(current_hc) - math.log(prev_hc)
            )
        else:
            slope = 4.0  # sensible default when the lower point saw no flips
        slope = max(1.0, slope)
        guess = int(current_hc * (target_rate / current_rate) ** (1.0 / slope))
        guess = max(1, min(hammer_limit, guess))
        if guess == current_hc:
            return current_hc
        previous = (current_hc, current_rate)
        current_hc = guess
        current_rate = measure_flip_rate(chip, current_hc, data_pattern, bank, victims)
        if current_rate == 0.0:
            # Undershot below the first flip; step back towards the previous point.
            current_hc = (current_hc + previous[0]) // 2
            current_rate = measure_flip_rate(chip, current_hc, data_pattern, bank, victims)
    return current_hc if current_rate > 0 else None
