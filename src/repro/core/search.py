"""Binary search helpers for minimum-hammer-count style queries.

Several studies need "the smallest hammer count at which some condition
first holds" (the first bit flip anywhere, the first 64-bit word with two
flips, ...).  Because the disturbance model is monotone in hammer count --
more hammers only ever add exposure -- a binary search over HC is sound.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple


def minimal_hammer_count(
    condition: Callable[[int], bool],
    hc_max: int,
    hc_min: int = 1,
    relative_precision: float = 0.02,
) -> Optional[int]:
    """Find the smallest hammer count for which ``condition`` holds.

    Parameters
    ----------
    condition:
        Monotone predicate over hammer count (False below some threshold,
        True at and above it).  It is evaluated lazily; each evaluation
        typically runs a full hammer test.
    hc_max:
        Upper limit of the search (the paper's 150k-hammer test ceiling for
        most studies).
    hc_min:
        Lower limit of the search.
    relative_precision:
        Stop once the bracket is within this relative width; the returned
        value is the smallest hammer count confirmed to satisfy the
        condition.

    Returns
    -------
    The minimal satisfying hammer count, or ``None`` if the condition does
    not hold even at ``hc_max``.
    """
    if hc_max < hc_min:
        raise ValueError("hc_max must be >= hc_min")
    if not 0 < relative_precision < 1:
        raise ValueError("relative_precision must be in (0, 1)")
    if not condition(hc_max):
        return None
    low = hc_min
    high = hc_max
    if condition(hc_min):
        return hc_min
    # Invariant: condition(low) is False, condition(high) is True.
    while high - low > max(1, int(relative_precision * high)):
        mid = (low + high) // 2
        if condition(mid):
            high = mid
        else:
            low = mid
    return high


def descend_and_search(
    victims: Sequence[int],
    evaluate: Callable[[int, int], bool],
    hammer_limit: int,
    relative_precision: float = 0.02,
    max_candidates: int = 32,
    descent_factor: float = 2.0,
) -> Tuple[Optional[int], Optional[int], int]:
    """Find the smallest hammer count at which *any* victim satisfies a predicate.

    The naive approach -- binary-searching every victim row -- is wasteful:
    at high hammer counts every row satisfies the predicate and gives no
    information about which row contains the weakest cell.  Instead the
    search first performs a *geometric descent*: starting at the hammer
    limit it repeatedly divides the hammer count by ``descent_factor``,
    keeping only the victims that still satisfy the predicate (monotonicity
    guarantees the globally weakest victim is always retained).  Once a
    level produces no satisfying victim, the surviving candidates from the
    previous level are binary-searched within the final bracket.

    Parameters
    ----------
    victims:
        Candidate victim rows.
    evaluate:
        ``evaluate(victim, hammer_count) -> bool`` monotone predicate.
    hammer_limit:
        Upper bound of the search.
    relative_precision:
        Precision of the final per-victim binary search.
    max_candidates:
        Cap on how many surviving victims are binary-searched.
    descent_factor:
        Ratio between consecutive descent levels (> 1).

    Returns
    -------
    ``(best_hc, best_victim, candidates_examined)`` where ``best_hc`` is
    ``None`` if no victim satisfies the predicate even at the limit.
    """
    if descent_factor <= 1.0:
        raise ValueError("descent_factor must be greater than 1")
    level = hammer_limit
    satisfied = [victim for victim in victims if evaluate(victim, level)]
    if not satisfied:
        return None, None, 0

    lower_bound = 1
    while level > 1:
        next_level = max(1, int(level / descent_factor))
        if next_level == level:
            break
        still_satisfied = [victim for victim in satisfied if evaluate(victim, next_level)]
        if still_satisfied:
            satisfied = still_satisfied
            level = next_level
        else:
            lower_bound = next_level
            break
        if level == 1:
            break

    candidates = satisfied[:max_candidates]
    best_hc: Optional[int] = None
    best_victim: Optional[int] = None
    for victim in candidates:
        upper = level if best_hc is None else min(level, best_hc)
        if best_hc is not None and not evaluate(victim, best_hc):
            continue
        found = minimal_hammer_count(
            lambda hc, victim=victim: evaluate(victim, hc),
            hc_max=upper,
            hc_min=lower_bound,
            relative_precision=relative_precision,
        )
        if found is not None and (best_hc is None or found < best_hc):
            best_hc = found
            best_victim = victim
    return best_hc, best_victim, len(candidates)
