"""Pluggable execution backends for fanning studies out across chips.

An :class:`Executor` turns a batch of :class:`StudyTask` items -- whole
studies or individual :class:`~repro.experiments.study.WorkUnit` shards of a
decomposed study -- into :class:`TaskOutcome` items, in task order.  Two
backends are provided:

* :class:`SerialExecutor` runs tasks one after another in-process -- the
  reference behaviour every other backend must reproduce bit-identically.
* :class:`ParallelExecutor` fans tasks out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.

Determinism
-----------
Both executors run every task against a *copy* of the task's chip taken at
submission time (hermetic execution).  Because a simulated chip derives all
of its stochastic state (cell thresholds, coupling classes, noise epochs)
on demand from its own seed via :func:`repro.utils.rng.derive_seed`, a copy
behaves bit-identically to the original, whether it is deep-copied in
process or pickled into a worker.  Task order is preserved by both
backends, so a parallel run produces exactly the serial run's results.

Hermetic execution also keeps the cache sound: a study's result depends
only on the chip's construction parameters and the study config, never on
residue left behind by an earlier study.

The chip's operation counters are not lost: each outcome carries the
:class:`~repro.dram.chip.ChipStats` accrued by the copy, which the session
merges back into the original chip.
"""

from __future__ import annotations

import copy
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence

from repro.dram.chip import ChipStats, DramChip
from repro.experiments.study import StudyResult, WorkUnit, config_digest, get_study


@dataclass
class StudyTask:
    """One unit of executor work: run ``study`` with ``config`` on ``chip``.

    ``seed`` is the per-task stream derived by the session from its own
    seed, the study name and the chip identity; it is recorded on the
    resulting :class:`~repro.experiments.study.StudyResult` so downstream
    consumers can reproduce any task in isolation.

    ``unit`` selects one shard of a decomposed study (see
    :class:`~repro.experiments.study.WorkUnit`); ``None`` runs the whole
    study, which keeps direct executor users working unchanged.
    """

    study: str
    config: Any
    chip: Optional[DramChip]
    seed: int
    unit: Optional[WorkUnit] = None


@dataclass
class TaskOutcome:
    """Executor output for one task: the result plus the work performed.

    ``attempts`` / ``requeues`` record recovery behaviour for backends that
    can lose workers mid-task (``attempts`` = times the task was dispatched
    until this result, ``requeues`` = leases reclaimed from dead or hung
    workers; see :class:`repro.experiments.remote.ServiceExecutor`).  Local
    executors always report the defaults: one attempt, no requeues.
    """

    result: StudyResult
    stats: Optional[ChipStats]
    attempts: int = 1
    requeues: int = 0


def execute_task(task: StudyTask) -> TaskOutcome:
    """Execute one study task (a whole study or one work unit) hermetically.

    Module-level so :class:`ParallelExecutor` can ship it to worker
    processes; the registry lookup re-imports the built-in study modules
    inside spawn-based workers.
    """
    spec = get_study(task.study)
    chip = copy.deepcopy(task.chip) if task.chip is not None else None
    if chip is not None:
        chip.stats.reset()
    started = time.perf_counter()
    if task.unit is not None:
        payload = spec.run_unit(chip, task.config, task.unit)
    else:
        payload = spec.run(chip, task.config)
    elapsed = time.perf_counter() - started
    result = StudyResult(
        study=task.study,
        config_digest=config_digest(task.config),
        chip_id=chip.chip_id if chip is not None else None,
        type_node=chip.profile.type_node.value if chip is not None else None,
        manufacturer=chip.profile.manufacturer if chip is not None else None,
        seed=task.seed,
        payload=payload,
        elapsed_s=elapsed,
        unit_id=task.unit.unit_id if task.unit is not None else None,
        unit_digest=task.unit.digest if task.unit is not None else None,
    )
    return TaskOutcome(result=result, stats=chip.stats if chip is not None else None)


class Executor:
    """Base class of execution backends.

    Subclasses implement :meth:`run_tasks`, which must return one outcome
    per task *in task order* -- the session relies on this to keep results
    aligned with chips and to make parallel runs reproduce serial runs.

    :meth:`iter_outcomes` is the streaming form of the same contract: it
    yields outcomes in task order *as they complete*, which is what lets
    the session checkpoint every finished work unit into the result store
    before the batch is done (a killed run then resumes from the units that
    made it to disk).  The base implementation degrades to the batch call;
    the built-in backends stream for real.
    """

    name = "base"

    def run_tasks(self, tasks: Sequence[StudyTask]) -> List[TaskOutcome]:
        raise NotImplementedError

    def iter_outcomes(self, tasks: Sequence[StudyTask]) -> Iterator[TaskOutcome]:
        """Yield one outcome per task in task order, eagerly as available."""
        yield from self.run_tasks(tasks)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """Runs every task sequentially in the calling process."""

    name = "serial"

    def run_tasks(self, tasks: Sequence[StudyTask]) -> List[TaskOutcome]:
        return list(self.iter_outcomes(tasks))

    def iter_outcomes(self, tasks: Sequence[StudyTask]) -> Iterator[TaskOutcome]:
        for task in tasks:
            yield execute_task(task)


class ParallelExecutor(Executor):
    """Fans tasks out across a process pool.

    Parameters
    ----------
    max_workers:
        Worker process count; defaults to ``os.cpu_count()`` capped at the
        number of tasks per batch.
    chunksize:
        Tasks shipped to a worker per round trip.  The default of 1 gives
        the best load balance for the coarse-grained tasks studies produce.
    """

    name = "parallel"

    def __init__(self, max_workers: Optional[int] = None, chunksize: int = 1) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if chunksize < 1:
            raise ValueError("chunksize must be at least 1")
        self.max_workers = max_workers
        self.chunksize = chunksize

    def run_tasks(self, tasks: Sequence[StudyTask]) -> List[TaskOutcome]:
        return list(self.iter_outcomes(tasks))

    def iter_outcomes(self, tasks: Sequence[StudyTask]) -> Iterator[TaskOutcome]:
        tasks = list(tasks)
        if not tasks:
            return
        workers = self.max_workers or os.cpu_count() or 1
        workers = max(1, min(workers, len(tasks)))
        if workers == 1:
            for task in tasks:
                yield execute_task(task)
            return
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Executor.map preserves input order, which keeps parallel output
            # bit-identical (and identically ordered) to SerialExecutor, and
            # yields each outcome as soon as its in-order turn completes, so
            # the consuming session can checkpoint units while others run.
            yield from pool.map(execute_task, tasks, chunksize=self.chunksize)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ParallelExecutor(max_workers={self.max_workers})"
