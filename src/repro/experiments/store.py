"""Disk-backed cache of study results keyed by everything that determines them.

For a pristine chip (one never written to or hammered outside a session --
see :attr:`repro.dram.chip.DramChip.is_pristine`), a study result is a pure
function of (study name, config, chip construction parameters), because
sessions execute studies hermetically against a copy of the chip (see
:mod:`repro.experiments.executors`) and the copies of a pristine chip are
themselves pristine.  Sessions bypass the store for non-pristine chips.  The
:class:`ResultStore` exploits that: results are pickled on disk keyed by a
digest of (study name, config digest, profile, geometry, seed, HC_first
target, remapper), so benchmarks that share a chip population -- for
example Table 4 and Figure 8, or Table 2's DDR3 subset -- stop recomputing
each other's work, across processes and across runs.

Decomposed studies are cached at *work-unit* granularity: every shard of
the grid gets its own entry (the key gains the unit's digest), so a sweep
killed halfway resumes from its completed units, and editing one axis of a
config invalidates only the entries whose unit parameters changed.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import os
import pickle
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

try:  # POSIX advisory locking; absent on some platforms (e.g. Windows)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.dram.chip import DramChip
from repro.experiments.study import StudyResult, WorkUnit


@dataclass(frozen=True)
class CacheKey:
    """Identity of one cached study result.

    ``unit_digest`` distinguishes the shards of a decomposed study; the
    empty string means a whole-study result, whose filename matches the
    pre-unit-layer layout so existing caches stay valid.  Unit entries
    carry no config digest: a work unit's parameters must embed every
    config field its payload depends on (see
    :class:`~repro.experiments.study.WorkUnit`), so its digest *is* its
    config scope -- which is what lets an edited config replay every unit
    it did not touch.
    """

    study: str
    config_digest: str
    chip_digest: str
    unit_digest: str = ""

    @property
    def filename(self) -> str:
        if self.unit_digest:
            return f"{self.chip_digest}-u{self.unit_digest}.pkl"
        return f"{self.config_digest}-{self.chip_digest}.pkl"


def chip_digest(chip: Optional[DramChip]) -> str:
    """Digest of everything that determines a chip's initial state.

    A :class:`~repro.dram.chip.DramChip` is rebuilt deterministically from
    its profile, geometry, seed and HC_first target, so those (plus the
    chip id, which seeds nothing but keeps reports unambiguous) fully
    identify the state a hermetic study observes.  ``None`` (system-level
    studies with no chip) digests to a fixed marker.
    """
    if chip is None:
        return "population"
    geometry = chip.geometry
    parts = (
        chip.chip_id,
        chip.profile.type_node.value,
        chip.profile.manufacturer,
        chip.seed,
        chip.hcfirst_target,
        geometry.banks,
        geometry.rows_per_bank,
        geometry.row_bytes,
        chip.remapper.name,
    )
    text = "\x1f".join(repr(part) for part in parts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass
class StoreStats:
    """Hit/miss counters of one :class:`ResultStore`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.puts = 0


class ResultStore:
    """Caches :class:`~repro.experiments.study.StudyResult` objects.

    Parameters
    ----------
    root:
        Directory for the on-disk pickle cache (created on first write).
        ``None`` keeps the cache purely in memory -- useful for sharing
        results between studies of one process without touching disk.

    Results served from the store are marked ``from_cache=True`` so callers
    (and the zero-activation acceptance check) can tell replays from fresh
    executions.
    """

    #: Name of the advisory lock file kept at the store root.
    LOCK_FILENAME = ".lock"

    def __init__(self, root: Optional[Union[str, os.PathLike]] = None) -> None:
        self.root = Path(root) if root is not None else None
        self.stats = StoreStats()
        self._memory: Dict[CacheKey, StudyResult] = {}

    @contextlib.contextmanager
    def _write_lock(self) -> Iterator[None]:
        """Advisory exclusive lock over the store root for mutating operations.

        Individual entry writes are already crash-safe (unique temp file +
        atomic rename), but a scheduler checkpointing service results and a
        local session can share one store directory; the ``flock`` on
        ``<root>/.lock`` serializes their mutations so concurrent writers
        never interleave a write with a ``clear()`` half-way through.  On
        platforms without ``fcntl`` the store falls back to the (still
        atomic-rename-safe) unlocked behaviour.
        """
        if self.root is None or fcntl is None:
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with (self.root / self.LOCK_FILENAME).open("a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # ------------------------------------------------------------------
    # Key construction
    # ------------------------------------------------------------------
    def key_for(
        self,
        study: str,
        config_digest: str,
        chip: Optional[DramChip],
        unit: Optional[WorkUnit] = None,
    ) -> CacheKey:
        """Cache key for one study result (optionally one work unit of it).

        The implicit whole-study unit maps to the unit-less key, so
        undecomposed studies hit the same cache entries they always did.
        Real units drop the config digest from the key (their own digest
        embeds the unit-relevant config scope), so two configs sharing a
        grid cell share its cache entry.
        """
        if unit is None or unit.is_whole_study:
            return CacheKey(
                study=study, config_digest=config_digest, chip_digest=chip_digest(chip)
            )
        return CacheKey(
            study=study,
            config_digest="",
            chip_digest=chip_digest(chip),
            unit_digest=unit.digest,
        )

    def _path(self, key: CacheKey) -> Optional[Path]:
        if self.root is None:
            return None
        return self.root / key.study / key.filename

    # ------------------------------------------------------------------
    # Cache operations
    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[StudyResult]:
        """Fetch a cached result, or ``None`` on a miss."""
        result = self._memory.get(key)
        if result is None:
            path = self._path(key)
            if path is not None and path.exists():
                with path.open("rb") as handle:
                    result = pickle.load(handle)
                self._memory[key] = result
        if result is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return dataclasses.replace(result, from_cache=True)

    def put(self, key: CacheKey, result: StudyResult) -> None:
        """Store a freshly executed result in memory and (if rooted) on disk."""
        stored = dataclasses.replace(result, from_cache=False)
        self._memory[key] = stored
        path = self._path(key)
        if path is not None:
            with self._write_lock():
                path.parent.mkdir(parents=True, exist_ok=True)
                # Per-writer unique temp name: concurrent processes sharing
                # one store root each publish their own complete pickle
                # atomically even if the advisory lock is unavailable.
                tmp = path.with_name(
                    f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
                )
                try:
                    with tmp.open("wb") as handle:
                        pickle.dump(stored, handle)
                    tmp.replace(path)
                finally:
                    # Cleanup only matters on a failed dump/replace, and must
                    # never mask the original exception: the temp file may be
                    # gone already (replace succeeded) or undeletable.
                    with contextlib.suppress(OSError):
                        tmp.unlink(missing_ok=True)
        self.stats.puts += 1

    def contains(self, key: CacheKey) -> bool:
        """Whether a result is cached (without counting a hit or a miss)."""
        if key in self._memory:
            return True
        path = self._path(key)
        return path is not None and path.exists()

    def drop(self, key: CacheKey) -> bool:
        """Evict one cached result (memory and disk); ``True`` if anything was.

        The programmatic way to knock individual work units out of an
        otherwise complete cache (crash simulations that model *external*
        file loss delete the on-disk entries directly instead).
        """
        dropped = self._memory.pop(key, None) is not None
        path = self._path(key)
        if path is not None and path.exists():
            with self._write_lock():
                if path.exists():
                    path.unlink()
                    dropped = True
        return dropped

    def entry_paths(self, study: Optional[str] = None, units_only: bool = False) -> list:
        """Sorted on-disk cache files, optionally restricted to one study.

        ``units_only`` keeps only per-unit entries (shards of decomposed
        studies), whose filenames carry a unit-digest suffix.  Memory-only
        stores have no entry paths.
        """
        if self.root is None or not self.root.exists():
            return []
        pattern = f"{study}/*.pkl" if study is not None else "*/*.pkl"
        paths = sorted(self.root.glob(pattern))
        if units_only:
            # Unit entries are "<chip>-u<unit>.pkl"; digests are hex, so a
            # final dash-separated segment starting with "u" is unambiguous.
            paths = [
                path for path in paths if path.stem.rsplit("-", 1)[-1].startswith("u")
            ]
        return paths

    def clear(self) -> None:
        """Drop every cached result, in memory and on disk."""
        self._memory.clear()
        if self.root is not None and self.root.exists():
            with self._write_lock():
                for study_dir in self.root.iterdir():
                    if not study_dir.is_dir():
                        continue
                    for entry in study_dir.glob("*.pkl"):
                        entry.unlink()

    def __len__(self) -> int:
        if self.root is None:
            return len(self._memory)
        if not self.root.exists():
            return len(self._memory)
        on_disk = sum(1 for _ in self.root.glob("*/*.pkl"))
        return max(on_disk, len(self._memory))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        where = str(self.root) if self.root is not None else "memory"
        return f"ResultStore({where!r}, hits={self.stats.hits}, misses={self.stats.misses})"
