"""`ServiceExecutor`: run a session's work units on a remote worker fleet.

Drop-in :class:`~repro.experiments.executors.Executor` backend that ships
every :class:`~repro.experiments.executors.StudyTask` to a
:mod:`repro.service` scheduler instead of running it locally.  The session
layer is untouched: units are still decomposed, cached and merged exactly
as with :class:`~repro.experiments.executors.SerialExecutor`, so a service
run's merged payloads are bit-identical to a serial run's -- for any worker
count, any completion order, and across worker deaths mid-sweep (the
scheduler re-leases and retries lost units; see
:mod:`repro.service.leases`).

Outcomes stream back in task order as their in-order turn completes --
the same contract ``ParallelExecutor`` gets from ``pool.map`` -- so the
session checkpoints finished units into its store while later units are
still executing remotely.  Each outcome additionally carries the
scheduler's recovery record (``attempts``/``requeues``), which the session
surfaces as :attr:`SessionRunResult.retries` / ``requeues``.

Tasks whose chip is pristine (or absent) also ship *cache metadata* -- the
exact :class:`~repro.experiments.store.CacheKey` fields the session would
use locally -- so a scheduler configured with its own result store
checkpoints completed units server-side; a local session pointed at the
same (advisory-locked) store directory then replays the service run from
cache.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.experiments.executors import Executor, StudyTask, TaskOutcome
from repro.experiments.store import chip_digest
from repro.experiments.study import config_digest
from repro.service.client import PoisonedUnitError, ServiceClient
from repro.service.protocol import pack_blob, unpack_blob


class ServiceExecutor(Executor):
    """Executes task batches through a ``repro.service`` scheduler.

    Parameters
    ----------
    host, port:
        Scheduler endpoint (see ``python -m repro.service scheduler``).
    label:
        Submission label shown by the ``status`` endpoint; defaults to the
        first task's study name.
    client_name:
        Client identity in scheduler telemetry.
    """

    name = "service"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7075,
        *,
        label: Optional[str] = None,
        client_name: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.label = label
        self.client_name = client_name

    def run_tasks(self, tasks: Sequence[StudyTask]) -> List[TaskOutcome]:
        return list(self.iter_outcomes(tasks))

    def iter_outcomes(self, tasks: Sequence[StudyTask]) -> Iterator[TaskOutcome]:
        tasks = list(tasks)
        if not tasks:
            return
        label = self.label or tasks[0].study
        units = [self._unit_spec(index, task) for index, task in enumerate(tasks)]
        with ServiceClient(self.host, self.port, name=self.client_name) as client:
            client.submit_units(units, label=label)
            buffered: Dict[int, TaskOutcome] = {}
            next_index = 0
            for event in client.events():
                kind = event.get("type")
                if kind == "unit_complete":
                    outcome: TaskOutcome = unpack_blob(event["outcome"])
                    outcome.attempts = int(event.get("attempts") or 1)
                    outcome.requeues = int(event.get("requeues") or 0)
                    buffered[int(event["index"])] = outcome
                    while next_index in buffered:
                        yield buffered.pop(next_index)
                        next_index += 1
                elif kind == "unit_quarantined":
                    # A poisoned unit can never complete, so the study
                    # cannot be merged: fail fast with the recorded errors.
                    # Closing the connection cancels the submission, so the
                    # scheduler stops dispatching its remaining units.
                    raise PoisonedUnitError(label, [event])
                elif kind == "submission_done":
                    quarantined = event.get("quarantined") or []
                    if quarantined:  # pragma: no cover - covered by the branch above
                        raise PoisonedUnitError(
                            label, [{"key": key} for key in quarantined]
                        )

    @staticmethod
    def _unit_spec(index: int, task: StudyTask) -> dict:
        """The JSON unit dict shipped in a submit message for one task."""
        unit = task.unit
        if unit is None or unit.is_whole_study:
            digest = "whole-study"
            unit_digest_key = ""
        else:
            digest = unit.digest
            unit_digest_key = unit.digest
        cache = None
        if task.chip is None or task.chip.is_pristine:
            # Mirror of ResultStore.key_for: lets the scheduler checkpoint
            # this unit's result server-side under the exact key a local
            # session would use.
            cache = {
                "study": task.study,
                "config_digest": "" if unit_digest_key else config_digest(task.config),
                "chip_digest": chip_digest(task.chip),
                "unit_digest": unit_digest_key,
            }
        return {
            "key": f"{index:06d}-{digest}",
            "index": index,
            "unit_digest": digest,
            "task": pack_blob(task),
            "cache": cache,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ServiceExecutor({self.host!r}, {self.port})"
