"""Study registry: named, config-driven experiment units.

Every analysis in the paper is one instance of the same shape -- run a study
over a population of chips and aggregate -- so the library exposes each one
as a *study*: a named unit with a frozen config dataclass and a uniform
``run(chip, config) -> payload`` contract.  Studies are registered with
:func:`register_study` and discovered by name through :func:`get_study` /
:func:`list_studies`; :class:`~repro.experiments.session.ExperimentSession`
fans registered studies out over chip populations.

The registry deliberately knows nothing about chips or executors, so study
implementations (which live next to the measurement code they wrap, for
example :mod:`repro.core.sweeps`) can import it without cycles.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple, runtime_checkable


class UnknownStudyError(KeyError):
    """Raised when a study name is not present in the registry."""


class DuplicateStudyError(ValueError):
    """Raised when two studies are registered under the same name."""


@runtime_checkable
class Study(Protocol):
    """Protocol every registered study satisfies.

    A study has a unique ``name``, an optional frozen config dataclass
    (``config_cls``) and a ``run(chip, config)`` method returning the
    study's domain-specific payload (for example a
    :class:`~repro.core.results.SweepResult`).  Population-level studies
    (``requires_chip`` false) receive ``chip=None``.
    """

    name: str
    config_cls: Optional[type]
    requires_chip: bool

    def run(self, chip: Any, config: Any = None) -> Any: ...


@dataclass(frozen=True)
class RegisteredStudy:
    """A study registered under a unique name.

    Wraps a plain function ``fn(chip, config) -> payload`` together with the
    metadata the session layer needs: the config dataclass used when no
    config is supplied, whether the study runs per chip or once per
    population, and a human-readable description.
    """

    name: str
    fn: Callable[[Any, Any], Any]
    config_cls: Optional[type] = None
    requires_chip: bool = True
    description: str = ""

    def default_config(self) -> Any:
        """A default-constructed config, or ``None`` for config-less studies."""
        return self.config_cls() if self.config_cls is not None else None

    def run(self, chip: Any, config: Any = None) -> Any:
        """Execute the study against one chip (or ``None`` for system studies)."""
        if config is None:
            config = self.default_config()
        return self.fn(chip, config)


@dataclass
class StudyResult:
    """Uniform envelope around one study execution on one chip.

    ``payload`` is the study's domain result (sweep, HC_first, coverage,
    ...).  The envelope adds the identity needed to aggregate, cache and
    compare results across chips and sessions.  ``elapsed_s`` and
    ``from_cache`` are bookkeeping and excluded from equality so a cached
    result compares equal to the run that produced it.
    """

    study: str
    config_digest: str
    chip_id: Optional[str]
    type_node: Optional[str]
    manufacturer: Optional[str]
    seed: Optional[int]
    payload: Any
    elapsed_s: float = field(default=0.0, compare=False)
    from_cache: bool = field(default=False, compare=False)

    @property
    def configuration(self) -> Optional[Tuple[str, str]]:
        """(type-node, manufacturer) key used by population aggregations."""
        if self.type_node is None or self.manufacturer is None:
            return None
        return (self.type_node, self.manufacturer)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, RegisteredStudy] = {}

#: Modules whose import registers the library's built-in studies.  Loaded
#: lazily (first registry lookup) to avoid import cycles: these modules
#: import :func:`register_study` from here at their own import time.
_BUILTIN_STUDY_MODULES: Tuple[str, ...] = (
    "repro.core.characterization",
    "repro.core.coverage",
    "repro.core.sweeps",
    "repro.core.spatial",
    "repro.core.word_density",
    "repro.core.first_flip",
    "repro.core.ecc_analysis",
    "repro.core.probability",
    "repro.analysis.mitigation_study",
)
_builtins_loaded = False


def _ensure_builtin_studies() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    for module in _BUILTIN_STUDY_MODULES:
        importlib.import_module(module)


def register_study(
    name: str,
    config: Optional[type] = None,
    requires_chip: bool = True,
    description: str = "",
) -> Callable[[Callable[[Any, Any], Any]], Callable[[Any, Any], Any]]:
    """Decorator registering ``fn(chip, config) -> payload`` as a named study.

    >>> @register_study("demo-noop")
    ... def run_noop(chip, config):
    ...     return None

    Parameters
    ----------
    name:
        Unique registry name (convention: ``<artefact>-<topic>``, for
        example ``"fig5-hc-sweep"``).
    config:
        Frozen dataclass type describing the study's parameters; default
        constructed when a session runs the study without an explicit
        config.  ``None`` for studies without parameters.
    requires_chip:
        ``False`` for population/system-level studies (for example the
        Figure 10 mitigation study) that are executed once per session
        rather than once per chip; their ``chip`` argument is ``None``.
    description:
        One-line human-readable summary; defaults to the first line of the
        function's docstring.
    """

    def decorator(fn: Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
        if name in _REGISTRY:
            raise DuplicateStudyError(
                f"study {name!r} is already registered (by "
                f"{_REGISTRY[name].fn.__module__}.{_REGISTRY[name].fn.__qualname__})"
            )
        summary = description
        if not summary and fn.__doc__:
            summary = fn.__doc__.strip().splitlines()[0].strip()
        _REGISTRY[name] = RegisteredStudy(
            name=name,
            fn=fn,
            config_cls=config,
            requires_chip=requires_chip,
            description=summary,
        )
        return fn

    return decorator


def unregister_study(name: str) -> None:
    """Remove a study from the registry (primarily for tests and plugins)."""
    _REGISTRY.pop(name, None)


def get_study(name: str) -> RegisteredStudy:
    """Look up a registered study by name.

    Raises :class:`UnknownStudyError` (a ``KeyError``) listing the known
    study names when the name is absent.
    """
    _ensure_builtin_studies()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownStudyError(
            f"unknown study {name!r}; registered studies: {sorted(_REGISTRY)}"
        ) from None


def list_studies() -> List[str]:
    """Sorted names of every registered study (built-ins included)."""
    _ensure_builtin_studies()
    return sorted(_REGISTRY)


def describe_studies() -> Dict[str, str]:
    """Mapping of study name to its one-line description."""
    _ensure_builtin_studies()
    return {name: _REGISTRY[name].description for name in sorted(_REGISTRY)}


# ----------------------------------------------------------------------
# Config digests
# ----------------------------------------------------------------------
def _canonical(value: Any) -> str:
    """Deterministic string form of a (possibly nested) config value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: getattr(value, f.name) for f in dataclasses.fields(value)}
        inner = ",".join(f"{key}={_canonical(fields[key])}" for key in sorted(fields))
        return f"{type(value).__name__}({inner})"
    if isinstance(value, dict):
        inner = ",".join(
            f"{_canonical(key)}:{_canonical(value[key])}" for key in sorted(value, key=repr)
        )
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "(" + ",".join(_canonical(item) for item in value) + ")"
    return repr(value)


def config_digest(config: Any) -> str:
    """Stable hex digest of a study config, used in cache keys.

    The digest is computed over a canonical textual form (dataclass fields
    sorted by name, mappings sorted by key) so two structurally equal
    configs always share a digest, across processes and sessions.
    """
    return hashlib.sha256(_canonical(config).encode("utf-8")).hexdigest()[:16]
