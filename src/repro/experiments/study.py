"""Study registry: named, config-driven experiment units.

Every analysis in the paper is one instance of the same shape -- run a study
over a population of chips and aggregate -- so the library exposes each one
as a *study*: a named unit with a frozen config dataclass and a uniform
``run(chip, config) -> payload`` contract.  Studies are registered with
:func:`register_study` and discovered by name through :func:`get_study` /
:func:`list_studies`; :class:`~repro.experiments.session.ExperimentSession`
fans registered studies out over chip populations.

Work units
----------
Long grid-shaped studies may additionally declare a *decomposition*: a
``decompose(config) -> [WorkUnit]`` enumerating independent shards of the
grid, a ``unit_runner(chip, config, unit)`` executing one shard
hermetically, and a deterministic ``merge(config, payloads)`` reassembling
the study payload from shard payloads *in decomposition order*.  Sessions
then fan the units -- not the whole study -- through the executor and cache
each unit individually, so a killed sweep resumes from its completed units
and a config edit invalidates only the units it touches.  Studies without a
decomposition run as a single implicit whole-study unit.

The registry deliberately knows nothing about chips or executors, so study
implementations (which live next to the measurement code they wrap, for
example :mod:`repro.core.sweeps`) can import it without cycles.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)


class UnknownStudyError(KeyError):
    """Raised when a study name is not present in the registry."""


class DuplicateStudyError(ValueError):
    """Raised when two studies are registered under the same name."""


class DecompositionError(ValueError):
    """Raised when a study's declared decomposition is inconsistent."""


#: ``unit_id`` of the implicit single unit wrapping an undecomposed study.
#: Stores key such units exactly like the pre-unit-layer whole-study
#: results, so existing caches stay valid.
WHOLE_STUDY_UNIT = "whole-study"


@dataclass(frozen=True)
class WorkUnit:
    """One independently executable, independently cacheable shard of a study.

    A unit is pure data (it must pickle into worker processes): the study it
    belongs to, a human-readable ``unit_id`` unique within one decomposition,
    the shard parameters, and its position in decomposition order (``index``,
    which fixes merge order).  ``params`` accepts any mapping or iterable of
    ``(key, value)`` pairs and is normalised to a key-sorted tuple, so two
    units built from differently-ordered dicts compare, hash and digest
    identically.

    **Cache contract:** ``params`` must embed *every* config field the
    unit's payload depends on (embedding a restricted copy of the config is
    the easy way), because stores key unit results by the unit digest alone,
    with no full-config component.  That is what makes the cache surgical:
    dropping one mechanism from a sweep's config leaves every other
    mechanism's units replayable, and two configs sharing a grid cell share
    its cache entry.
    """

    study: str
    unit_id: str
    params: Any = ()
    index: int = 0

    def __post_init__(self) -> None:
        params = self.params
        if isinstance(params, Mapping):
            items = params.items()
        else:
            items = tuple(params)
        normalized = tuple(
            sorted(((str(key), value) for key, value in items), key=lambda kv: kv[0])
        )
        object.__setattr__(self, "params", normalized)

    @property
    def param_dict(self) -> Dict[str, Any]:
        """The unit's parameters as a plain dict."""
        return dict(self.params)

    @property
    def digest(self) -> str:
        """Stable hex digest identifying this unit's content.

        Computed over the study name, the unit id and the canonical textual
        form of the parameters (keys sorted), so the digest is invariant
        under parameter-dict key order and across process restarts, and two
        units with different parameters never share a digest.  ``index`` is
        excluded: reordering a decomposition re-orders the merge, not the
        units' cache identities.
        """
        text = "\x1f".join((self.study, self.unit_id, _canonical(self.param_dict)))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    @property
    def is_whole_study(self) -> bool:
        """Whether this is the implicit unit of an undecomposed study."""
        return self.unit_id == WHOLE_STUDY_UNIT


@runtime_checkable
class Study(Protocol):
    """Protocol every registered study satisfies.

    A study has a unique ``name``, an optional frozen config dataclass
    (``config_cls``) and a ``run(chip, config)`` method returning the
    study's domain-specific payload (for example a
    :class:`~repro.core.results.SweepResult`).  Population-level studies
    (``requires_chip`` false) receive ``chip=None``.
    """

    name: str
    config_cls: Optional[type]
    requires_chip: bool

    def run(self, chip: Any, config: Any = None) -> Any: ...


@dataclass(frozen=True)
class RegisteredStudy:
    """A study registered under a unique name.

    Wraps a plain function ``fn(chip, config) -> payload`` together with the
    metadata the session layer needs: the config dataclass used when no
    config is supplied, whether the study runs per chip or once per
    population, and a human-readable description.

    A study may also declare a work-unit decomposition (``decompose_fn`` /
    ``unit_runner_fn`` / ``merge_fn``, see the module docstring); sessions
    then execute and cache the study shard by shard.  ``fn`` remains the
    monolithic reference implementation, callable directly.
    """

    name: str
    fn: Callable[[Any, Any], Any]
    config_cls: Optional[type] = None
    requires_chip: bool = True
    description: str = ""
    decompose_fn: Optional[Callable[[Any], Sequence["WorkUnit"]]] = None
    unit_runner_fn: Optional[Callable[[Any, Any, "WorkUnit"], Any]] = None
    merge_fn: Optional[Callable[[Any, List[Any]], Any]] = None

    def default_config(self) -> Any:
        """A default-constructed config, or ``None`` for config-less studies."""
        return self.config_cls() if self.config_cls is not None else None

    def run(self, chip: Any, config: Any = None) -> Any:
        """Execute the study against one chip (or ``None`` for system studies)."""
        if config is None:
            config = self.default_config()
        return self.fn(chip, config)

    # ------------------------------------------------------------------
    # Work-unit decomposition
    # ------------------------------------------------------------------
    @property
    def is_decomposable(self) -> bool:
        """Whether the study declares a work-unit decomposition."""
        return self.decompose_fn is not None

    def units_for(self, config: Any = None) -> List["WorkUnit"]:
        """The study's work units for one config, in merge order.

        Undecomposed studies return a single implicit whole-study unit.
        Unit ids must be unique within a decomposition (they key the cache);
        ``index`` is normalised to the decomposition position.
        """
        if config is None:
            config = self.default_config()
        if not self.is_decomposable:
            return [WorkUnit(study=self.name, unit_id=WHOLE_STUDY_UNIT)]
        units: List[WorkUnit] = []
        seen_ids: set = set()
        for position, unit in enumerate(self.decompose_fn(config)):
            if unit.study != self.name:
                raise DecompositionError(
                    f"study {self.name!r} produced a unit for {unit.study!r}"
                )
            if unit.unit_id in seen_ids:
                raise DecompositionError(
                    f"study {self.name!r} produced duplicate unit id {unit.unit_id!r}"
                )
            seen_ids.add(unit.unit_id)
            if unit.index != position:
                unit = dataclasses.replace(unit, index=position)
            units.append(unit)
        if not units:
            raise DecompositionError(f"study {self.name!r} decomposed into zero units")
        return units

    def run_unit(self, chip: Any, config: Any, unit: "WorkUnit") -> Any:
        """Execute one work unit hermetically, returning the unit payload.

        The implicit whole-study unit falls through to :meth:`run`, so every
        execution path -- decomposed or not -- goes through one method.
        """
        if config is None:
            config = self.default_config()
        if not self.is_decomposable or unit.is_whole_study:
            return self.fn(chip, config)
        return self.unit_runner_fn(chip, config, unit)

    def merge_units(self, config: Any, payloads: Sequence[Any]) -> Any:
        """Merge unit payloads (in decomposition order) into the study payload.

        Merging is pure data assembly -- no chip access, no randomness -- so
        the merged payload is bit-identical regardless of which executor ran
        the units, how many workers it used, or in what order units finished.
        """
        if config is None:
            config = self.default_config()
        if not self.is_decomposable:
            if len(payloads) != 1:
                raise DecompositionError(
                    f"undecomposed study {self.name!r} expects exactly one unit "
                    f"payload, got {len(payloads)}"
                )
            return payloads[0]
        return self.merge_fn(config, list(payloads))


@dataclass
class StudyResult:
    """Uniform envelope around one study execution on one chip.

    ``payload`` is the study's domain result (sweep, HC_first, coverage,
    ...).  The envelope adds the identity needed to aggregate, cache and
    compare results across chips and sessions.  ``elapsed_s`` and
    ``from_cache`` are bookkeeping and excluded from equality so a cached
    result compares equal to the run that produced it.

    The same envelope carries both granularities of the unit layer: a
    *unit-level* result (``unit_id``/``unit_digest`` set, ``payload`` is one
    shard's payload) is what executors produce and stores cache, while a
    *study-level* result (``unit_id`` ``None``, ``payload`` merged) is what
    sessions return.  ``units_total`` / ``units_from_cache`` record, on a
    study-level result, how many units the payload was merged from and how
    many of those were replayed from the store.
    """

    study: str
    config_digest: str
    chip_id: Optional[str]
    type_node: Optional[str]
    manufacturer: Optional[str]
    seed: Optional[int]
    payload: Any
    elapsed_s: float = field(default=0.0, compare=False)
    from_cache: bool = field(default=False, compare=False)
    unit_id: Optional[str] = None
    unit_digest: Optional[str] = None
    units_total: int = field(default=1, compare=False)
    units_from_cache: int = field(default=0, compare=False)
    #: Recovery bookkeeping on a study-level result: extra dispatch attempts
    #: beyond the first across the merged units (``units_retries``) and
    #: leases reclaimed from dead/hung workers (``units_requeued``).  Local
    #: executors leave both at zero; service runs report real recovery.
    units_retries: int = field(default=0, compare=False)
    units_requeued: int = field(default=0, compare=False)

    @property
    def configuration(self) -> Optional[Tuple[str, str]]:
        """(type-node, manufacturer) key used by population aggregations."""
        if self.type_node is None or self.manufacturer is None:
            return None
        return (self.type_node, self.manufacturer)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, RegisteredStudy] = {}

#: Modules whose import registers the library's built-in studies.  Loaded
#: lazily (first registry lookup) to avoid import cycles: these modules
#: import :func:`register_study` from here at their own import time.
_BUILTIN_STUDY_MODULES: Tuple[str, ...] = (
    "repro.core.characterization",
    "repro.core.coverage",
    "repro.core.sweeps",
    "repro.core.spatial",
    "repro.core.word_density",
    "repro.core.first_flip",
    "repro.core.ecc_analysis",
    "repro.core.probability",
    "repro.analysis.mitigation_study",
    "repro.service.selftest",
)
_builtins_loaded = False


def _ensure_builtin_studies() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    for module in _BUILTIN_STUDY_MODULES:
        importlib.import_module(module)


def register_study(
    name: str,
    config: Optional[type] = None,
    requires_chip: bool = True,
    description: str = "",
    decompose: Optional[Callable[[Any], Sequence[WorkUnit]]] = None,
    unit_runner: Optional[Callable[[Any, Any, WorkUnit], Any]] = None,
    merge: Optional[Callable[[Any, List[Any]], Any]] = None,
) -> Callable[[Callable[[Any, Any], Any]], Callable[[Any, Any], Any]]:
    """Decorator registering ``fn(chip, config) -> payload`` as a named study.

    >>> @register_study("demo-noop")
    ... def run_noop(chip, config):
    ...     return None

    Parameters
    ----------
    name:
        Unique registry name (convention: ``<artefact>-<topic>``, for
        example ``"fig5-hc-sweep"``).
    config:
        Frozen dataclass type describing the study's parameters; default
        constructed when a session runs the study without an explicit
        config.  ``None`` for studies without parameters.
    requires_chip:
        ``False`` for population/system-level studies (for example the
        Figure 10 mitigation study) that are executed once per session
        rather than once per chip; their ``chip`` argument is ``None``.
    description:
        One-line human-readable summary; defaults to the first line of the
        function's docstring.
    decompose, unit_runner, merge:
        Optional work-unit decomposition (see the module docstring): all
        three must be given together.  ``decompose(config)`` enumerates the
        study's :class:`WorkUnit` shards, ``unit_runner(chip, config, unit)``
        executes one shard hermetically, and ``merge(config, payloads)``
        deterministically reassembles the study payload from shard payloads
        in decomposition order.  The decorated ``fn`` stays registered as
        the monolithic reference implementation.
    """
    provided = (decompose is not None, unit_runner is not None, merge is not None)
    if any(provided) and not all(provided):
        raise DecompositionError(
            f"study {name!r}: decompose, unit_runner and merge must be "
            "declared together"
        )

    def decorator(fn: Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
        if name in _REGISTRY:
            raise DuplicateStudyError(
                f"study {name!r} is already registered (by "
                f"{_REGISTRY[name].fn.__module__}.{_REGISTRY[name].fn.__qualname__})"
            )
        summary = description
        if not summary and fn.__doc__:
            summary = fn.__doc__.strip().splitlines()[0].strip()
        _REGISTRY[name] = RegisteredStudy(
            name=name,
            fn=fn,
            config_cls=config,
            requires_chip=requires_chip,
            description=summary,
            decompose_fn=decompose,
            unit_runner_fn=unit_runner,
            merge_fn=merge,
        )
        return fn

    return decorator


def unregister_study(name: str) -> None:
    """Remove a study from the registry (primarily for tests and plugins)."""
    _REGISTRY.pop(name, None)


def get_study(name: str) -> RegisteredStudy:
    """Look up a registered study by name.

    Raises :class:`UnknownStudyError` (a ``KeyError``) listing the known
    study names when the name is absent.
    """
    _ensure_builtin_studies()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownStudyError(
            f"unknown study {name!r}; registered studies: {sorted(_REGISTRY)}"
        ) from None


def list_studies() -> List[str]:
    """Sorted names of every registered study (built-ins included)."""
    _ensure_builtin_studies()
    return sorted(_REGISTRY)


def describe_studies() -> Dict[str, str]:
    """Mapping of study name to its one-line description."""
    _ensure_builtin_studies()
    return {name: _REGISTRY[name].description for name in sorted(_REGISTRY)}


# ----------------------------------------------------------------------
# Config digests
# ----------------------------------------------------------------------
def _canonical(value: Any) -> str:
    """Deterministic string form of a (possibly nested) config value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: getattr(value, f.name) for f in dataclasses.fields(value)}
        inner = ",".join(f"{key}={_canonical(fields[key])}" for key in sorted(fields))
        return f"{type(value).__name__}({inner})"
    if isinstance(value, dict):
        inner = ",".join(
            f"{_canonical(key)}:{_canonical(value[key])}" for key in sorted(value, key=repr)
        )
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "(" + ",".join(_canonical(item) for item in value) + ")"
    return repr(value)


def config_digest(config: Any) -> str:
    """Stable hex digest of a study config, used in cache keys.

    The digest is computed over a canonical textual form (dataclass fields
    sorted by name, mappings sorted by key) so two structurally equal
    configs always share a digest, across processes and sessions.
    """
    return hashlib.sha256(_canonical(config).encode("utf-8")).hexdigest()[:16]
