"""The session API: one orchestration layer for every paper study.

:class:`ExperimentSession` owns a chip population, fans registered studies
out across it through a pluggable executor, caches per-chip results in a
:class:`~repro.experiments.store.ResultStore`, and aggregates per-chip
results into population-level views.

>>> from repro.experiments import ExperimentSession
>>> session = ExperimentSession.from_table1(chips_per_config=1, seed=7)
>>> outcome = session.run("fig8-hcfirst")
>>> len(outcome.results) == len(session.chips)
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.dram.chip import DramChip
from repro.dram.geometry import ChipGeometry
from repro.dram.module import DramModule
from repro.dram.population import flatten_population, make_population
from repro.experiments.executors import Executor, SerialExecutor, StudyTask
from repro.experiments.store import ResultStore
from repro.experiments.study import (
    RegisteredStudy,
    StudyResult,
    WorkUnit,
    config_digest,
    get_study,
)
from repro.utils.rng import derive_seed

#: Anything a session accepts as its chip population: a single chip, a
#: module, an iterable of chips, or the configuration-keyed dict produced
#: by :func:`repro.dram.population.make_population`.
PopulationLike = Union[
    DramChip,
    DramModule,
    Iterable[DramChip],
    Mapping[Any, Sequence[DramChip]],
]


@dataclass
class SessionRunResult:
    """Outcome of one :meth:`ExperimentSession.run` call.

    Holds one :class:`~repro.experiments.study.StudyResult` per chip (or a
    single result for population-level studies), in chip order, plus
    aggregation conveniences mirroring how the paper rolls chips up into
    per-configuration figures and tables.
    """

    study: str
    config: Any
    results: List[StudyResult] = field(default_factory=list)
    elapsed_s: float = 0.0

    def payloads(self) -> List[Any]:
        """The domain result of every chip, in chip order."""
        return [result.payload for result in self.results]

    def single(self) -> Any:
        """The payload of a single-result run (one chip or a system study)."""
        if len(self.results) != 1:
            raise ValueError(
                f"run produced {len(self.results)} results; single() needs exactly one"
            )
        return self.results[0].payload

    def by_configuration(self) -> Dict[Tuple[str, str], List[Any]]:
        """Payloads grouped by (type-node, manufacturer), preserving chip order."""
        grouped: Dict[Tuple[str, str], List[Any]] = {}
        for result in self.results:
            if result.configuration is None:
                continue
            grouped.setdefault(result.configuration, []).append(result.payload)
        return grouped

    def for_chip(self, chip_id: str) -> Optional[Any]:
        """Payload of one chip, or ``None`` if the chip was not part of the run."""
        for result in self.results:
            if result.chip_id == chip_id:
                return result.payload
        return None

    @property
    def cache_hits(self) -> int:
        """How many *work units* were replayed from the store.

        Counts at unit granularity so progress reporting stays truthful for
        decomposed studies: a 2000-unit sweep resumed with 3 missing units
        reports 1997 hits, not 0.  Undecomposed studies run as one implicit
        unit per chip, so the count matches the old per-task meaning there.
        """
        return sum(result.units_from_cache for result in self.results)

    @property
    def executed(self) -> int:
        """How many *work units* were freshly computed (see ``cache_hits``)."""
        return sum(result.units_total - result.units_from_cache for result in self.results)

    @property
    def units_total(self) -> int:
        """Total work units behind this run's results."""
        return sum(result.units_total for result in self.results)

    @property
    def retries(self) -> int:
        """Extra dispatch attempts beyond the first, summed over all units.

        Always zero for local executors; for service runs (see
        :class:`~repro.experiments.remote.ServiceExecutor`) this counts
        every re-execution caused by worker deaths, expired leases or
        worker-reported failures -- the recovery work behind the result.
        """
        return sum(result.units_retries for result in self.results)

    @property
    def requeues(self) -> int:
        """Leases reclaimed from dead or hung workers, summed over all units."""
        return sum(result.units_requeued for result in self.results)


class ExperimentSession:
    """Runs registered studies over a chip population.

    Parameters
    ----------
    population:
        The chips to study -- a single chip, a module, a chip list, or the
        dict :func:`repro.dram.population.make_population` returns.  More
        chips can be added later with :meth:`add_chips`.
    executor:
        Execution backend; defaults to
        :class:`~repro.experiments.executors.SerialExecutor`.  Swapping in
        a :class:`~repro.experiments.executors.ParallelExecutor` changes
        wall-clock time, never results (see the executor module docs).
    store:
        Optional :class:`~repro.experiments.store.ResultStore`; when given,
        per-chip results are cached and replayed instead of recomputed.
    seed:
        Session seed from which every task derives an independent stream
        (recorded on each result for standalone reproduction).
    """

    def __init__(
        self,
        population: Optional[PopulationLike] = None,
        executor: Optional[Executor] = None,
        store: Optional[ResultStore] = None,
        seed: int = 0,
    ) -> None:
        self.executor = executor or SerialExecutor()
        self.store = store
        self.seed = seed
        self._chips: List[DramChip] = []
        if population is not None:
            self.add_chips(population)

    # ------------------------------------------------------------------
    # Population management
    # ------------------------------------------------------------------
    @classmethod
    def from_table1(
        cls,
        chips_per_config: Optional[int] = None,
        seed: int = 0,
        geometry: Optional[ChipGeometry] = None,
        configurations: Optional[Sequence[Tuple[Any, str]]] = None,
        executor: Optional[Executor] = None,
        store: Optional[ResultStore] = None,
    ) -> "ExperimentSession":
        """Build a session over a Table 1 population (see ``make_population``)."""
        population = make_population(
            chips_per_config=chips_per_config,
            seed=seed,
            geometry=geometry,
            configurations=configurations,
        )
        return cls(population, executor=executor, store=store, seed=seed)

    def add_chips(self, population: PopulationLike) -> None:
        """Add chips to the session's population (duplicates by identity skipped)."""
        known = {id(chip) for chip in self._chips}
        for chip in self._coerce_chips(population):
            if id(chip) not in known:
                known.add(id(chip))
                self._chips.append(chip)

    @staticmethod
    def _coerce_chips(population: PopulationLike) -> List[DramChip]:
        if isinstance(population, DramChip):
            return [population]
        if isinstance(population, DramModule):
            return list(population.chips)
        if isinstance(population, Mapping):
            return flatten_population(population)
        return list(population)

    @property
    def chips(self) -> List[DramChip]:
        """The session's chip population, in insertion order."""
        return list(self._chips)

    def chips_for(self, type_node: Any, manufacturer: Optional[str] = None) -> List[DramChip]:
        """Chips of one type-node (and optionally one manufacturer)."""
        wanted = str(type_node)
        return [
            chip
            for chip in self._chips
            if chip.profile.type_node.value == wanted
            and (manufacturer is None or chip.profile.manufacturer == manufacturer)
        ]

    def configurations(self) -> List[Tuple[str, str]]:
        """Distinct (type-node, manufacturer) pairs present, in insertion order."""
        seen: List[Tuple[str, str]] = []
        for chip in self._chips:
            key = (chip.profile.type_node.value, chip.profile.manufacturer)
            if key not in seen:
                seen.append(key)
        return seen

    # ------------------------------------------------------------------
    # Study execution
    # ------------------------------------------------------------------
    def run(
        self,
        study: Union[str, RegisteredStudy],
        config: Any = None,
        chips: Optional[Sequence[DramChip]] = None,
    ) -> SessionRunResult:
        """Run one registered study over the population (or a chip subset).

        The study is first decomposed into work units (one implicit unit for
        undecomposed studies; see :meth:`RegisteredStudy.units_for`).  Units
        already in the store are replayed without touching the chips; the
        remaining units go through the executor at unit granularity, and
        each freshly computed unit is written back to the store
        individually -- so a killed run resumes from its completed units.
        Unit payloads are then merged *in decomposition order*, which makes
        the returned payloads bit-identical regardless of cache state,
        executor backend, worker count or unit completion order.  The
        results are in chip order.
        """
        spec = study if isinstance(study, RegisteredStudy) else get_study(study)
        if config is None:
            config = spec.default_config()
        digest = config_digest(config)
        units = spec.units_for(config)

        if spec.requires_chip:
            targets: List[Optional[DramChip]] = list(chips) if chips is not None else list(self._chips)
            if not targets:
                raise ValueError(
                    f"study {spec.name!r} runs per chip but the session population is empty"
                )
        else:
            targets = [None]

        started = time.perf_counter()
        # Per target: the payload of every unit (filled from cache or the
        # executor), how many came from the cache, and the executed seconds.
        unit_payloads: List[List[Any]] = [[None] * len(units) for _ in targets]
        units_cached: List[int] = [0] * len(targets)
        unit_elapsed: List[float] = [0.0] * len(targets)
        units_retries: List[int] = [0] * len(targets)
        units_requeued: List[int] = [0] * len(targets)
        pending_slots: List[Tuple[int, int]] = []
        pending_tasks: List[StudyTask] = []
        for t_index, chip in enumerate(targets):
            # The store keys results by chip *construction* parameters, which
            # only describe a chip nobody has written to or hammered outside
            # the session.  A chip mutated directly by the caller bypasses
            # the cache entirely (results stay correct, just uncached).
            cacheable = chip is None or chip.is_pristine
            for u_index, unit in enumerate(units):
                if self.store is not None and cacheable:
                    cached = self.store.get(self.store.key_for(spec.name, digest, chip, unit))
                    if cached is not None:
                        unit_payloads[t_index][u_index] = cached.payload
                        units_cached[t_index] += 1
                        continue
                pending_slots.append((t_index, u_index))
                pending_tasks.append(
                    StudyTask(
                        study=spec.name,
                        config=config,
                        chip=chip,
                        seed=self._unit_seed(spec, digest, chip, unit),
                        unit=unit,
                    )
                )

        # iter_outcomes streams completed units in task order, so every
        # finished unit is checkpointed into the store *before* the batch is
        # done -- a run killed mid-sweep resumes from the units on disk.
        outcomes = self.executor.iter_outcomes(pending_tasks)
        try:
            for (t_index, u_index), outcome in zip(pending_slots, outcomes):
                unit_payloads[t_index][u_index] = outcome.result.payload
                unit_elapsed[t_index] += outcome.result.elapsed_s
                units_retries[t_index] += max(0, outcome.attempts - 1)
                units_requeued[t_index] += outcome.requeues
                chip = targets[t_index]
                if chip is not None and outcome.stats is not None:
                    # The executor ran against a copy; fold the copy's
                    # operation counters back so ChipStats reflects all work
                    # done on a chip.
                    chip.stats.merge(outcome.stats)
                if self.store is not None and (chip is None or chip.is_pristine):
                    self.store.put(
                        self.store.key_for(spec.name, digest, chip, units[u_index]),
                        outcome.result,
                    )
        finally:
            # zip() stops at the last slot without advancing the generator
            # past its final yield; closing it releases executor resources
            # (e.g. the process pool) before the merge phase instead of at GC.
            close = getattr(outcomes, "close", None)
            if close is not None:
                close()

        results: List[StudyResult] = []
        for t_index, chip in enumerate(targets):
            payload = spec.merge_units(config, unit_payloads[t_index])
            results.append(
                StudyResult(
                    study=spec.name,
                    config_digest=digest,
                    chip_id=chip.chip_id if chip is not None else None,
                    type_node=chip.profile.type_node.value if chip is not None else None,
                    manufacturer=chip.profile.manufacturer if chip is not None else None,
                    seed=derive_seed(self.seed, spec.name, digest, self._chip_label(chip)),
                    payload=payload,
                    elapsed_s=unit_elapsed[t_index],
                    from_cache=units_cached[t_index] == len(units),
                    units_total=len(units),
                    units_from_cache=units_cached[t_index],
                    units_retries=units_retries[t_index],
                    units_requeued=units_requeued[t_index],
                )
            )

        return SessionRunResult(
            study=spec.name,
            config=config,
            results=results,
            elapsed_s=time.perf_counter() - started,
        )

    @staticmethod
    def _chip_label(chip: Optional[DramChip]) -> str:
        return chip.chip_id if chip is not None else "population"

    def _unit_seed(
        self, spec: RegisteredStudy, digest: str, chip: Optional[DramChip], unit: WorkUnit
    ) -> int:
        """Independent, reproducible stream for one (chip, unit) task.

        The implicit whole-study unit keeps the historical derivation (no
        unit component), so undecomposed studies record the same seeds --
        and produce byte-identical cached envelopes -- as before the unit
        layer existed.
        """
        if unit.is_whole_study:
            return derive_seed(self.seed, spec.name, digest, self._chip_label(chip))
        return derive_seed(self.seed, spec.name, digest, self._chip_label(chip), unit.unit_id)

    def run_all(
        self,
        studies: Sequence[Union[str, RegisteredStudy]],
        configs: Optional[Mapping[str, Any]] = None,
        chips: Optional[Sequence[DramChip]] = None,
    ) -> Dict[str, SessionRunResult]:
        """Run several studies in order, returning results keyed by study name."""
        configs = configs or {}
        outcomes: Dict[str, SessionRunResult] = {}
        for study in studies:
            name = study if isinstance(study, str) else study.name
            outcomes[name] = self.run(study, config=configs.get(name), chips=chips)
        return outcomes

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ExperimentSession(chips={len(self._chips)}, executor={self.executor!r}, "
            f"store={'yes' if self.store is not None else 'no'}, seed={self.seed})"
        )
