"""Unified experiment orchestration: study registry, executors, result cache.

Every paper analysis is exposed as a named *study* (see
:func:`list_studies`) with a frozen config dataclass and a uniform
``run(chip) -> payload`` contract.  An :class:`ExperimentSession` owns a
chip population, fans studies out across it via pluggable executors
(:class:`SerialExecutor`, process-pool :class:`ParallelExecutor` with
bit-identical results), and caches per-chip results in a
:class:`ResultStore` keyed by (study, config, chip identity) so work is
never repeated across benchmarks or runs.

Quickstart
----------
>>> from repro.experiments import ExperimentSession
>>> session = ExperimentSession.from_table1(chips_per_config=1, seed=1)
>>> sweep = session.run("fig5-hc-sweep")
>>> len(sweep.results) == len(session.chips)
True
"""

from repro.experiments.study import (
    DuplicateStudyError,
    RegisteredStudy,
    Study,
    StudyResult,
    UnknownStudyError,
    config_digest,
    describe_studies,
    get_study,
    list_studies,
    register_study,
    unregister_study,
)
from repro.experiments.executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    StudyTask,
    TaskOutcome,
)
from repro.experiments.store import CacheKey, ResultStore, chip_digest
from repro.experiments.session import ExperimentSession, SessionRunResult

__all__ = [
    "CacheKey",
    "DuplicateStudyError",
    "Executor",
    "ExperimentSession",
    "ParallelExecutor",
    "RegisteredStudy",
    "ResultStore",
    "SerialExecutor",
    "SessionRunResult",
    "Study",
    "StudyResult",
    "StudyTask",
    "TaskOutcome",
    "UnknownStudyError",
    "chip_digest",
    "config_digest",
    "describe_studies",
    "get_study",
    "list_studies",
    "register_study",
    "unregister_study",
]
