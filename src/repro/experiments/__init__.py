"""Unified experiment orchestration: studies, work units, executors, cache.

Every paper analysis is exposed as a named *study* (see
:func:`list_studies`) with a frozen config dataclass and a uniform
``run(chip) -> payload`` contract.  An :class:`ExperimentSession` owns a
chip population, fans studies out across it via pluggable executors
(:class:`SerialExecutor`, process-pool :class:`ParallelExecutor` with
bit-identical results), and caches results in a :class:`ResultStore` so
work is never repeated across benchmarks or runs.

Work units: sharded execution and crash resume
----------------------------------------------
Grid-shaped studies additionally declare a *decomposition* at registration
time -- ``decompose(config)`` enumerating independent :class:`WorkUnit`
shards, ``unit_runner(chip, config, unit)`` executing one shard
hermetically, and a deterministic ``merge(config, payloads)`` reassembling
the study payload in decomposition order::

    @register_study("my-sweep", config=SweepConfig,
                    decompose=my_decompose, unit_runner=my_unit_runner,
                    merge=my_merge)
    def run_my_sweep(chip, config):
        ...  # monolithic reference implementation

Sessions then fan the *units* (not whole studies) through the executor and
cache each unit individually, keyed by the unit's content digest.  That
buys three things at once:

* **sharding** -- a process pool parallelizes across grid cells even for
  population-level (simulator-backed) studies that have no chips to shard
  over; results stay bit-identical to serial execution regardless of
  worker count or completion order, because the merge runs in
  decomposition order over pure data;
* **resume** -- a killed sweep replays its completed units from the store
  and re-executes exactly the missing ones (see
  ``benchmarks/smoke_sharded_resume.py``);
* **surgical invalidation** -- a unit's params embed every config field
  its payload depends on, so editing one axis of a sweep (say, adding a
  mechanism to the Figure 10 grid) re-executes only the units the edit
  created.

The Figure 10 studies (``fig10-mitigations``, ``fig10-mitigations-full``)
shard into one baseline unit per workload mix plus one cell unit per
evaluable (mechanism, HC_first, mix) grid point -- 48 + 47 x 48 units at
paper scale -- and merge bit-identically to the monolithic
:func:`~repro.analysis.mitigation_study.run_mitigation_study`.  The
chip-grid characterization studies shard along their grid axes
(``alg1-characterization`` per hammer count, ``fig4-coverage`` per data
pattern), each unit measuring a fresh hermetic chip copy.
``SessionRunResult.cache_hits`` / ``executed`` count at unit granularity,
so progress reporting stays truthful for decomposed studies.

Beyond one host, :class:`ServiceExecutor` ships the same work units to a
:mod:`repro.service` scheduler, which leases them out to a multi-host
worker fleet with retry/quarantine fault tolerance -- still bit-identical
to :class:`SerialExecutor`, with recovery behaviour surfaced as
``SessionRunResult.retries`` / ``requeues``.

Quickstart
----------
>>> from repro.experiments import ExperimentSession
>>> session = ExperimentSession.from_table1(chips_per_config=1, seed=1)
>>> sweep = session.run("fig5-hc-sweep")
>>> len(sweep.results) == len(session.chips)
True
"""

from repro.experiments.study import (
    WHOLE_STUDY_UNIT,
    DecompositionError,
    DuplicateStudyError,
    RegisteredStudy,
    Study,
    StudyResult,
    UnknownStudyError,
    WorkUnit,
    config_digest,
    describe_studies,
    get_study,
    list_studies,
    register_study,
    unregister_study,
)
from repro.experiments.executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    StudyTask,
    TaskOutcome,
)
from repro.experiments.store import CacheKey, ResultStore, chip_digest
from repro.experiments.session import ExperimentSession, SessionRunResult
from repro.experiments.remote import ServiceExecutor

__all__ = [
    "CacheKey",
    "DecompositionError",
    "DuplicateStudyError",
    "Executor",
    "ExperimentSession",
    "ParallelExecutor",
    "RegisteredStudy",
    "ResultStore",
    "SerialExecutor",
    "ServiceExecutor",
    "SessionRunResult",
    "Study",
    "StudyResult",
    "StudyTask",
    "TaskOutcome",
    "UnknownStudyError",
    "WHOLE_STUDY_UNIT",
    "WorkUnit",
    "chip_digest",
    "config_digest",
    "describe_studies",
    "get_study",
    "list_studies",
    "register_study",
    "unregister_study",
]
