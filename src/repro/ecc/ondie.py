"""On-die ECC model for LPDDR4 chips.

The paper's LPDDR4-1x and LPDDR4-1y chips all employ a 128-bit single-error
correcting on-die ECC that cannot be disabled (Section 4.3).  Its effect on
RowHammer characterization is twofold:

* true single-bit errors inside an ECC word are invisible to the system, so
  the observed per-word bit-flip density shifts towards multi-bit words
  (Observation 9), and
* when a word accumulates more flips than the code can correct, the decoder
  behaves in an undefined way and may even *miscorrect* a clean bit, which
  breaks single-cell flip-probability monotonicity (Table 5).

The model keeps the check bits per DRAM row alongside the data bits.  Check
bits live in spare columns of the same physical row, so they accumulate
RowHammer exposure like data bits; the chip model exposes hooks to flip
check bits as well.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ecc.hamming import HammingCode


class OnDieEcc:
    """Row-granularity on-die ECC using a Hamming SEC code.

    Parameters
    ----------
    word_data_bits:
        Data bits per ECC word (128 for the paper's LPDDR4 chips).
    """

    def __init__(self, word_data_bits: int = 128) -> None:
        self.code = HammingCode(word_data_bits)
        self.word_data_bits = word_data_bits

    @property
    def check_bits_per_word(self) -> int:
        """Number of redundant (parity-check) bits stored per ECC word."""
        return self.code.parity_bits

    def words_per_row(self, row_bits: int) -> int:
        """Number of ECC words covering a row of ``row_bits`` data bits."""
        if row_bits % self.word_data_bits != 0:
            raise ValueError(
                f"row size {row_bits} bits is not a multiple of the "
                f"{self.word_data_bits}-bit ECC word"
            )
        return row_bits // self.word_data_bits

    def check_bits_per_row(self, row_bits: int) -> int:
        """Total check bits stored alongside a row of ``row_bits`` data bits."""
        return self.words_per_row(row_bits) * self.check_bits_per_word

    # ------------------------------------------------------------------
    # Encode / decode whole rows
    # ------------------------------------------------------------------
    def encode_row(self, data_bits: np.ndarray) -> np.ndarray:
        """Compute the check bits for a row of data bits.

        Returns a flat uint8 bit array of length
        ``check_bits_per_row(len(data_bits))``.
        """
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        words = data_bits.reshape(-1, self.word_data_bits)
        codewords = self.code.encode_many(words)
        return codewords[:, self.code.parity_columns].reshape(-1)

    def decode_row(
        self, data_bits: np.ndarray, check_bits: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Decode a row through the on-die ECC.

        Parameters
        ----------
        data_bits:
            Flat bit array of the (possibly corrupted) stored data bits.
        check_bits:
            Flat bit array of the (possibly corrupted) stored check bits.

        Returns
        -------
        (decoded_bits, corrected_mask):
            ``decoded_bits`` is the flat bit array the chip returns to the
            system; ``corrected_mask`` is a boolean array marking data bits
            the decoder modified (for diagnostics).
        """
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        check_bits = np.asarray(check_bits, dtype=np.uint8)
        words = data_bits.reshape(-1, self.word_data_bits)
        checks = check_bits.reshape(-1, self.check_bits_per_word)
        codewords = np.zeros((words.shape[0], self.code.codeword_bits), dtype=np.uint8)
        codewords[:, self.code.data_columns] = words
        codewords[:, self.code.parity_columns] = checks
        decoded_words, _detected, _positions = self.code.decode_many(codewords)
        decoded = decoded_words.reshape(-1)
        corrected_mask = decoded != data_bits
        return decoded, corrected_mask

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"OnDieEcc(word_data_bits={self.word_data_bits})"
