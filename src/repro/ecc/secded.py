"""SECDED (single-error-correcting, double-error-detecting) extended Hamming code.

The paper's Figure 9 analysis asks how much stronger ECC would have to be to
keep up with RowHammer (``HC_first`` versus ``HC_second`` versus
``HC_third``).  Rank-level server ECC is typically SECDED at a 64-bit
granularity, so this codec is provided both for completeness of the ECC
substrate and for the ECC-oriented example application.

The construction extends :class:`~repro.ecc.hamming.HammingCode` with one
overall parity bit: single errors are corrected, double errors are detected
(non-zero overall parity mismatch pattern) but not corrected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ecc.hamming import HammingCode


@dataclass(frozen=True)
class SecDedResult:
    """Outcome of a SECDED decode."""

    data: np.ndarray
    corrected: bool
    uncorrectable: bool


class SecDedCode:
    """Extended Hamming SECDED code for ``data_bits`` data bits.

    >>> code = SecDedCode(64)
    >>> code.codeword_bits
    72
    """

    def __init__(self, data_bits: int = 64) -> None:
        self._inner = HammingCode(data_bits)
        self.data_bits = data_bits
        self.codeword_bits = self._inner.codeword_bits + 1

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode data bits into a SECDED codeword (inner codeword + overall parity)."""
        inner = self._inner.encode(np.asarray(data, dtype=np.uint8))
        overall = np.array([inner.sum() % 2], dtype=np.uint8)
        return np.concatenate([inner, overall])

    def decode(self, codeword: np.ndarray) -> SecDedResult:
        """Decode a SECDED codeword.

        Single-bit errors (in data, check, or overall parity bits) are
        corrected.  Double-bit errors are flagged ``uncorrectable`` and the
        data bits are returned as stored.
        """
        codeword = np.asarray(codeword, dtype=np.uint8)
        if codeword.size != self.codeword_bits:
            raise ValueError(
                f"expected {self.codeword_bits} bits, got {codeword.size}"
            )
        inner, overall = codeword[:-1], int(codeword[-1])
        result = self._inner.decode(inner)
        parity_mismatch = (int(inner.sum()) % 2) != overall
        syndrome_nonzero = result.detected
        if not syndrome_nonzero and not parity_mismatch:
            return SecDedResult(data=result.data, corrected=False, uncorrectable=False)
        if syndrome_nonzero and parity_mismatch:
            # Odd number of errors; assume one and accept the inner correction.
            return SecDedResult(data=result.data, corrected=True, uncorrectable=False)
        if not syndrome_nonzero and parity_mismatch:
            # The overall parity bit itself flipped; data is intact.
            return SecDedResult(
                data=self._inner.extract_data(inner), corrected=True, uncorrectable=False
            )
        # Non-zero syndrome with matching overall parity: an even number of
        # errors -- detected but not correctable.  Return the raw data bits.
        return SecDedResult(
            data=self._inner.extract_data(inner), corrected=False, uncorrectable=True
        )
