"""Single-error-correcting Hamming codes over bit arrays.

The code construction follows the classic Hamming layout: codeword positions
are numbered from 1, positions that are powers of two hold parity bits, and
parity bit ``p_i`` covers every position whose index has bit ``i`` set.  A
single-bit error therefore produces a syndrome equal to the (1-based)
position of the flipped bit.

When a word contains more errors than the code can correct the decoder's
behaviour is *undefined* in exactly the way the paper describes for on-die
ECC: the syndrome may be zero (errors cancel), may point at one of the
actual error positions (one error is masked), or may point at a clean bit
(a new error is introduced by miscorrection).  This emergent behaviour is
what shifts the per-word bit-flip density of LPDDR4 chips (Observation 9)
and breaks single-cell flip-probability monotonicity (Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding a single codeword.

    Attributes
    ----------
    data:
        The decoded data bits (after any correction the decoder applied).
    detected:
        Whether the decoder saw a non-zero syndrome.
    corrected_position:
        The 1-based codeword position the decoder corrected, or ``None`` if
        it corrected nothing (zero syndrome or invalid syndrome).
    """

    data: np.ndarray
    detected: bool
    corrected_position: int


def _parity_bit_count(data_bits: int) -> int:
    """Smallest ``r`` with ``2**r >= data_bits + r + 1``."""
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r


class HammingCode:
    """A single-error-correcting Hamming code for ``data_bits`` data bits.

    The public interface operates on numpy bit arrays (dtype uint8, values
    0/1).  Batch variants (``encode_many`` / ``decode_many``) operate on 2-D
    arrays with one word per row and are used on the chip's read path where
    an entire DRAM row is decoded at once.

    >>> code = HammingCode(64)
    >>> code.parity_bits
    7
    >>> code.codeword_bits
    71
    """

    def __init__(self, data_bits: int) -> None:
        if data_bits <= 0:
            raise ValueError("data_bits must be positive")
        self.data_bits = data_bits
        self.parity_bits = _parity_bit_count(data_bits)
        self.codeword_bits = data_bits + self.parity_bits
        # Codeword positions 1..n; parity positions are powers of two.
        positions = np.arange(1, self.codeword_bits + 1)
        self._parity_positions = np.array(
            [p for p in positions if (p & (p - 1)) == 0], dtype=np.int64
        )
        self._data_positions = np.array(
            [p for p in positions if (p & (p - 1)) != 0], dtype=np.int64
        )
        assert self._data_positions.size == data_bits
        # Parity-check matrix H: row i is the i-th bit of each position index,
        # so syndrome = H @ codeword equals the error position for single errors.
        self._check_matrix = np.array(
            [[(p >> i) & 1 for p in positions] for i in range(self.parity_bits)],
            dtype=np.uint8,
        )
        self._syndrome_weights = (1 << np.arange(self.parity_bits)).astype(np.int64)

    @property
    def data_positions(self) -> np.ndarray:
        """1-based codeword positions that hold data bits."""
        return self._data_positions

    @property
    def parity_positions(self) -> np.ndarray:
        """1-based codeword positions that hold parity bits."""
        return self._parity_positions

    @property
    def data_columns(self) -> np.ndarray:
        """0-based codeword column indices that hold data bits."""
        return self._data_positions - 1

    @property
    def parity_columns(self) -> np.ndarray:
        """0-based codeword column indices that hold parity bits."""
        return self._parity_positions - 1

    # ------------------------------------------------------------------
    # Single-word interface
    # ------------------------------------------------------------------
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode one data word into a codeword bit array."""
        return self.encode_many(np.asarray(data, dtype=np.uint8).reshape(1, -1))[0]

    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Decode one codeword, applying at most one bit correction."""
        data, detected, corrected = self.decode_many(
            np.asarray(codeword, dtype=np.uint8).reshape(1, -1)
        )
        position = int(corrected[0])
        return DecodeResult(data=data[0], detected=bool(detected[0]), corrected_position=position)

    def extract_data(self, codeword: np.ndarray) -> np.ndarray:
        """Return the data bits of a codeword without decoding."""
        codeword = np.asarray(codeword, dtype=np.uint8)
        return codeword[self._data_positions - 1]

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------
    def encode_many(self, data_words: np.ndarray) -> np.ndarray:
        """Encode a batch of data words (one word per row) into codewords."""
        data_words = np.asarray(data_words, dtype=np.uint8)
        if data_words.ndim != 2 or data_words.shape[1] != self.data_bits:
            raise ValueError(
                f"expected shape (n, {self.data_bits}), got {data_words.shape}"
            )
        codewords = np.zeros((data_words.shape[0], self.codeword_bits), dtype=np.uint8)
        codewords[:, self._data_positions - 1] = data_words
        # Solve for parity bits: syndrome of the final codeword must be zero,
        # and each parity position appears in exactly one check equation.
        partial_syndrome = (codewords @ self._check_matrix.T) % 2
        for index, position in enumerate(self._parity_positions):
            codewords[:, position - 1] = partial_syndrome[:, index]
        return codewords

    def decode_many(
        self, codewords: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decode a batch of codewords.

        Returns ``(data_words, detected, corrected_positions)`` where
        ``corrected_positions[i]`` is the 1-based position corrected in word
        ``i`` (0 if nothing was corrected).
        """
        codewords = np.asarray(codewords, dtype=np.uint8)
        if codewords.ndim != 2 or codewords.shape[1] != self.codeword_bits:
            raise ValueError(
                f"expected shape (n, {self.codeword_bits}), got {codewords.shape}"
            )
        corrected = codewords.copy()
        syndrome_bits = (codewords @ self._check_matrix.T) % 2
        syndromes = syndrome_bits.astype(np.int64) @ self._syndrome_weights
        detected = syndromes != 0
        correctable = detected & (syndromes <= self.codeword_bits)
        rows = np.nonzero(correctable)[0]
        columns = syndromes[correctable] - 1
        corrected[rows, columns] ^= 1
        corrected_positions = np.where(correctable, syndromes, 0)
        data_words = corrected[:, self._data_positions - 1]
        return data_words, detected, corrected_positions

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"HammingCode(data_bits={self.data_bits}, parity_bits={self.parity_bits})"
