"""Error-correcting-code substrate.

Two roles in the reproduction:

* :class:`~repro.ecc.hamming.HammingCode` implements single-error-correcting
  Hamming codes of arbitrary data width, including the undefined behaviour a
  real SEC decoder exhibits when a word contains more errors than the code
  can correct (it may correct nothing, mask one error, or *miscorrect* a
  clean bit -- paper Section 5.4).
* :class:`~repro.ecc.ondie.OnDieEcc` wraps a Hamming(136, 128) code as the
  on-die ECC the paper's LPDDR4 chips ship with and that cannot be disabled.
"""

from repro.ecc.hamming import HammingCode, DecodeResult
from repro.ecc.ondie import OnDieEcc
from repro.ecc.secded import SecDedCode

__all__ = ["HammingCode", "DecodeResult", "OnDieEcc", "SecDedCode"]
