"""repro: reproduction of "Revisiting RowHammer" (ISCA 2020).

The package is organized into the paper's primary contribution
(:mod:`repro.core` -- the RowHammer characterization pipeline and the
mitigation scaling study) and the substrates it depends on:

* :mod:`repro.dram` -- behavioural DRAM device model with a circuit-level
  RowHammer vulnerability model (replaces the 1580 real chips).
* :mod:`repro.ecc` -- SEC Hamming codes and the LPDDR4 on-die ECC model.
* :mod:`repro.softmc` -- SoftMC-like test infrastructure (command-level host).
* :mod:`repro.sim` -- cycle-level DDR4 memory-system simulator with a simple
  multi-core model (replaces Ramulator + SPEC traces).
* :mod:`repro.mitigations` -- the five state-of-the-art RowHammer mitigation
  mechanisms evaluated by the paper plus the ideal refresh-based mechanism.
* :mod:`repro.analysis` -- builders that regenerate every table and figure in
  the paper's evaluation.

Quickstart
----------
>>> from repro import make_chip, DoubleSidedHammer
>>> chip = make_chip("LPDDR4-1y", manufacturer="A", seed=1)
>>> hammer = DoubleSidedHammer(chip)
>>> result = hammer.hammer_victim(bank=0, victim_row=100, hammer_count=20_000)
>>> result.num_bit_flips >= 0
True
"""

from repro.dram.chip import DramChip
from repro.dram.module import DramModule
from repro.dram.population import make_chip, make_module, make_population
from repro.dram.vulnerability import VulnerabilityProfile, profile_for
from repro.core.hammer import DoubleSidedHammer, HammerResult
from repro.core.characterization import RowHammerCharacterizer
from repro.core.data_patterns import DataPattern, STANDARD_PATTERNS

__version__ = "1.0.0"

__all__ = [
    "DramChip",
    "DramModule",
    "make_chip",
    "make_module",
    "make_population",
    "VulnerabilityProfile",
    "profile_for",
    "DoubleSidedHammer",
    "HammerResult",
    "RowHammerCharacterizer",
    "DataPattern",
    "STANDARD_PATTERNS",
    "__version__",
]
