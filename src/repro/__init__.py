"""repro: reproduction of "Revisiting RowHammer" (ISCA 2020).

The package is organized into the paper's primary contribution
(:mod:`repro.core` -- the RowHammer characterization pipeline and the
mitigation scaling study) and the substrates it depends on:

* :mod:`repro.dram` -- behavioural DRAM device model with a circuit-level
  RowHammer vulnerability model (replaces the 1580 real chips).
* :mod:`repro.ecc` -- SEC Hamming codes and the LPDDR4 on-die ECC model.
* :mod:`repro.softmc` -- SoftMC-like test infrastructure (command-level host).
* :mod:`repro.sim` -- cycle-level DDR4 memory-system simulator with a simple
  multi-core model (replaces Ramulator + SPEC traces).
* :mod:`repro.mitigations` -- the five state-of-the-art RowHammer mitigation
  mechanisms evaluated by the paper plus the ideal refresh-based mechanism.
* :mod:`repro.analysis` -- builders that regenerate every table and figure in
  the paper's evaluation.
* :mod:`repro.experiments` -- the orchestration layer: every paper analysis
  is a named, registered *study* that an :class:`ExperimentSession` fans out
  over a chip population through pluggable serial/parallel executors, with
  results cached on disk by a :class:`ResultStore`.

Quickstart
----------
Run a registered study over a population through a session:

>>> from repro import ExperimentSession, SerialExecutor, list_studies
>>> "fig8-hcfirst" in list_studies()
True
>>> session = ExperimentSession.from_table1(
...     chips_per_config=1, seed=1,
...     configurations=[("LPDDR4-1y", "A"), ("DDR4-new", "A")],
... )
>>> outcome = session.run("fig8-hcfirst")
>>> sorted(outcome.by_configuration()) == [("DDR4-new", "A"), ("LPDDR4-1y", "A")]
True

or drive a single chip directly with the low-level primitives:

>>> from repro import make_chip, DoubleSidedHammer
>>> chip = make_chip("LPDDR4-1y", manufacturer="A", seed=1)
>>> hammer = DoubleSidedHammer(chip)
>>> result = hammer.hammer_victim(bank=0, victim_row=100, hammer_count=20_000)
>>> result.num_bit_flips >= 0
True

Swapping ``executor=ParallelExecutor()`` into a session parallelizes across
chips with bit-identical results, and passing ``store=ResultStore(path)``
makes reruns of any already-computed (study, config, chip) free.
"""

from repro.dram.chip import DramChip
from repro.dram.module import DramModule
from repro.dram.population import (
    flatten_population,
    make_chip,
    make_module,
    make_population,
)
from repro.dram.vulnerability import VulnerabilityProfile, profile_for
from repro.core.hammer import DoubleSidedHammer, HammerResult
from repro.core.characterization import CharacterizationConfig, RowHammerCharacterizer
from repro.core.data_patterns import DataPattern, STANDARD_PATTERNS
from repro.experiments import (
    ExperimentSession,
    Executor,
    ParallelExecutor,
    ResultStore,
    SerialExecutor,
    ServiceExecutor,
    SessionRunResult,
    Study,
    StudyResult,
    WorkUnit,
    get_study,
    list_studies,
    register_study,
)

__version__ = "1.1.0"

__all__ = [
    # DRAM substrate
    "DramChip",
    "DramModule",
    "make_chip",
    "make_module",
    "make_population",
    "flatten_population",
    "VulnerabilityProfile",
    "profile_for",
    # Characterization primitives
    "DoubleSidedHammer",
    "HammerResult",
    "RowHammerCharacterizer",
    "CharacterizationConfig",
    "DataPattern",
    "STANDARD_PATTERNS",
    # Experiment orchestration
    "ExperimentSession",
    "SessionRunResult",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "ServiceExecutor",
    "ResultStore",
    "Study",
    "StudyResult",
    "WorkUnit",
    "get_study",
    "list_studies",
    "register_study",
    "__version__",
]
