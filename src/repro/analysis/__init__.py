"""Analysis layer: regenerates every table and figure of the paper's evaluation.

* :mod:`repro.analysis.tables` -- Tables 1-5 builders.
* :mod:`repro.analysis.figures` -- Figures 4-9 series builders.
* :mod:`repro.analysis.mitigation_study` -- the Figure 10 evaluation harness.
* :mod:`repro.analysis.report` -- plain-text rendering of tables and series.
"""

from repro.analysis.tables import (
    build_table1_population,
    build_table2_rowhammerable,
    build_table3_worst_patterns,
    build_table4_min_hcfirst,
    build_table5_monotonicity,
)
from repro.analysis.figures import (
    build_figure4_coverage,
    build_figure5_hc_sweep,
    build_figure6_spatial,
    build_figure7_word_density,
    build_figure8_hcfirst_distribution,
    build_figure9_ecc,
)
from repro.analysis.mitigation_study import (
    MitigationStudyConfig,
    MitigationStudyPoint,
    MitigationStudyResult,
    run_mitigation_study,
)
from repro.analysis.report import format_table, render_series

__all__ = [
    "build_table1_population",
    "build_table2_rowhammerable",
    "build_table3_worst_patterns",
    "build_table4_min_hcfirst",
    "build_table5_monotonicity",
    "build_figure4_coverage",
    "build_figure5_hc_sweep",
    "build_figure6_spatial",
    "build_figure7_word_density",
    "build_figure8_hcfirst_distribution",
    "build_figure9_ecc",
    "MitigationStudyConfig",
    "MitigationStudyPoint",
    "MitigationStudyResult",
    "run_mitigation_study",
    "format_table",
    "render_series",
]
