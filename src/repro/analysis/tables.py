"""Builders for the paper's tables.

Each builder takes the per-chip study results produced by :mod:`repro.core`
and aggregates them by (type-node, manufacturer) configuration, returning a
nested dictionary shaped like the corresponding table in the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.first_flip import HCFirstResult
from repro.core.results import CoverageResult, ProbabilityResult
from repro.dram.population import TABLE1_POPULATION

ConfigKey = Tuple[str, str]  # (type-node, manufacturer)


def build_table1_population() -> Dict[str, Dict[str, Tuple[int, int]]]:
    """Table 1: chips (modules) tested per type-node and manufacturer."""
    table: Dict[str, Dict[str, Tuple[int, int]]] = {}
    for entry in TABLE1_POPULATION:
        table.setdefault(entry.type_node.value, {})[entry.manufacturer] = (
            entry.chips,
            entry.modules,
        )
    return table


def build_table2_rowhammerable(
    results: Iterable[HCFirstResult],
    dram_types: Tuple[str, ...] = ("DDR3-old", "DDR3-new"),
) -> Dict[str, Dict[str, Tuple[int, int]]]:
    """Table 2: fraction of DDR3 chips with any bit flip below the test limit.

    Returns ``{type_node: {manufacturer: (rowhammerable, total)}}``.
    """
    table: Dict[str, Dict[str, Tuple[int, int]]] = {}
    for result in results:
        if result.type_node not in dram_types:
            continue
        per_mfr = table.setdefault(result.type_node, {})
        hammerable, total = per_mfr.get(result.manufacturer, (0, 0))
        if result.rowhammerable:
            hammerable += 1
        total += 1
        per_mfr[result.manufacturer] = (hammerable, total)
    return table


def build_table3_worst_patterns(
    coverage_results: Iterable[CoverageResult],
    minimum_flips: int = 10,
) -> Dict[str, Dict[str, Optional[str]]]:
    """Table 3: worst-case data pattern per configuration.

    Chips with fewer than ``minimum_flips`` observed flips are skipped, as
    the paper marks configurations without enough bit flips "N/A".
    """
    votes: Dict[ConfigKey, Dict[str, int]] = {}
    for result in coverage_results:
        if result.unique_flips_total < minimum_flips:
            continue
        winner = result.worst_case_pattern
        if winner is None:
            continue
        key = (result.type_node, result.manufacturer)
        votes.setdefault(key, {})
        votes[key][winner] = votes[key].get(winner, 0) + 1
    table: Dict[str, Dict[str, Optional[str]]] = {}
    for (type_node, manufacturer), counts in votes.items():
        table.setdefault(type_node, {})[manufacturer] = max(counts, key=counts.get)
    return table


def build_table4_min_hcfirst(
    results: Iterable[HCFirstResult],
) -> Dict[str, Dict[str, Optional[float]]]:
    """Table 4: lowest observed ``HC_first`` (in thousands) per configuration.

    Configurations where no chip flipped within the test limit report the
    limit itself as a lower bound (the paper reports values above 150k for
    those configurations from extended tests).
    """
    minima: Dict[ConfigKey, Optional[int]] = {}
    seen: Dict[ConfigKey, bool] = {}
    for result in results:
        key = (result.type_node, result.manufacturer)
        seen[key] = True
        if result.hcfirst is None:
            continue
        current = minima.get(key)
        if current is None or result.hcfirst < current:
            minima[key] = result.hcfirst
    table: Dict[str, Dict[str, Optional[float]]] = {}
    for key in seen:
        type_node, manufacturer = key
        value = minima.get(key)
        table.setdefault(type_node, {})[manufacturer] = (
            None if value is None else value / 1000.0
        )
    return table


def build_table5_monotonicity(
    results: Iterable[ProbabilityResult],
) -> Dict[str, Dict[str, float]]:
    """Table 5: percentage of cells with monotonically increasing flip probability."""
    grouped: Dict[ConfigKey, List[float]] = {}
    for result in results:
        if result.cells_observed == 0:
            continue
        grouped.setdefault((result.type_node, result.manufacturer), []).append(
            result.monotonic_fraction
        )
    table: Dict[str, Dict[str, float]] = {}
    for (type_node, manufacturer), values in grouped.items():
        table.setdefault(type_node, {})[manufacturer] = 100.0 * sum(values) / len(values)
    return table


#: Reference values from the paper for side-by-side comparison in reports.
PAPER_TABLE4_MIN_HCFIRST_K: Dict[str, Dict[str, Optional[float]]] = {
    "DDR3-old": {"A": 69.2, "B": 157.0, "C": 155.0},
    "DDR3-new": {"A": 85.0, "B": 22.4, "C": 24.0},
    "DDR4-old": {"A": 17.5, "B": 30.0, "C": 87.0},
    "DDR4-new": {"A": 10.0, "B": 25.0, "C": 40.0},
    "LPDDR4-1x": {"A": 43.2, "B": 16.8, "C": None},
    "LPDDR4-1y": {"A": 4.8, "B": None, "C": 9.6},
}

PAPER_TABLE3_WORST_PATTERNS: Dict[str, Dict[str, Optional[str]]] = {
    "DDR3-new": {"A": None, "B": "Checkered0", "C": "Checkered0"},
    "DDR4-old": {"A": "RowStripe1", "B": "RowStripe1", "C": "RowStripe0"},
    "DDR4-new": {"A": "RowStripe0", "B": "RowStripe0", "C": "Checkered1"},
    "LPDDR4-1x": {"A": "Checkered1", "B": "Checkered0", "C": None},
    "LPDDR4-1y": {"A": "RowStripe1", "B": None, "C": "RowStripe1"},
}

PAPER_TABLE5_MONOTONIC_PERCENT: Dict[str, Dict[str, float]] = {
    "DDR3-new": {"A": 97.6, "B": 100.0, "C": 100.0},
    "DDR4-old": {"A": 98.4, "B": 100.0, "C": 100.0},
    "DDR4-new": {"A": 99.6, "B": 100.0, "C": 100.0},
    "LPDDR4-1x": {"A": 50.3, "B": 52.4},
    "LPDDR4-1y": {"A": 47.0, "C": 54.3},
}
