"""Builders for the paper's figures (4 through 9).

Each builder aggregates per-chip study results into the series the figure
plots, keyed by (type-node, manufacturer) configuration.  The benchmark
harnesses print these series; they are also convenient for plotting with any
external tool.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.ecc_analysis import aggregate_hc_and_multipliers
from repro.core.first_flip import HCFirstResult
from repro.core.results import (
    CoverageResult,
    EccWordAnalysis,
    SpatialResult,
    SweepResult,
    WordDensityResult,
)
from repro.core.spatial import aggregate_fraction_by_offset
from repro.core.sweeps import average_flip_rates
from repro.core.word_density import aggregate_fraction_by_flip_count
from repro.utils.stats import BoxStats, box_stats

ConfigKey = Tuple[str, str]


def _group_by_config(results: Iterable) -> Dict[ConfigKey, List]:
    grouped: Dict[ConfigKey, List] = {}
    for result in results:
        grouped.setdefault((result.type_node, result.manufacturer), []).append(result)
    return grouped


def build_figure4_coverage(
    coverage_results: Iterable[CoverageResult],
) -> Dict[ConfigKey, Dict[str, float]]:
    """Figure 4: per-data-pattern coverage (%) for each configuration.

    When several chips of one configuration are supplied their coverages are
    averaged (the paper plots a single representative chip).
    """
    grouped = _group_by_config(coverage_results)
    figure: Dict[ConfigKey, Dict[str, float]] = {}
    for key, results in grouped.items():
        pattern_names: List[str] = []
        for result in results:
            for name in result.coverage_by_pattern:
                if name not in pattern_names:
                    pattern_names.append(name)
        figure[key] = {
            name: 100.0
            * sum(result.coverage_by_pattern.get(name, 0.0) for result in results)
            / len(results)
            for name in pattern_names
        }
    return figure


def build_figure5_hc_sweep(
    sweeps: Iterable[SweepResult],
) -> Dict[ConfigKey, Dict[int, float]]:
    """Figure 5: average bit-flip rate versus hammer count per configuration."""
    grouped = _group_by_config(sweeps)
    return {key: average_flip_rates(results) for key, results in grouped.items()}


def build_figure6_spatial(
    spatial_results: Iterable[SpatialResult],
) -> Dict[ConfigKey, Dict[int, Dict[str, float]]]:
    """Figure 6: fraction of flips per row offset (mean and stddev) per configuration."""
    grouped = _group_by_config(spatial_results)
    return {key: aggregate_fraction_by_offset(results) for key, results in grouped.items()}


def build_figure7_word_density(
    density_results: Iterable[WordDensityResult],
    max_flips: int = 5,
) -> Dict[ConfigKey, Dict[int, Dict[str, float]]]:
    """Figure 7: fraction of 64-bit words containing N flips per configuration."""
    grouped = _group_by_config(density_results)
    return {
        key: aggregate_fraction_by_flip_count(results, max_flips=max_flips)
        for key, results in grouped.items()
    }


def build_figure8_hcfirst_distribution(
    results: Iterable[HCFirstResult],
) -> Dict[ConfigKey, Optional[BoxStats]]:
    """Figure 8: box-and-whisker distribution of ``HC_first`` per configuration.

    Chips that did not flip within the test limit are excluded, matching the
    "No Bit Flips" annotations in the paper's figure; a configuration with
    no flipping chips at all maps to ``None``.
    """
    grouped = _group_by_config(results)
    figure: Dict[ConfigKey, Optional[BoxStats]] = {}
    for key, config_results in grouped.items():
        values = [r.hcfirst for r in config_results if r.hcfirst is not None]
        figure[key] = box_stats(values) if values else None
    return figure


def build_figure9_ecc(
    analyses: Iterable[EccWordAnalysis],
) -> Dict[ConfigKey, Dict[str, Dict[int, Dict[str, float]]]]:
    """Figure 9: HC to the first word with 1/2/3 flips, and the HC multipliers."""
    grouped = _group_by_config(analyses)
    return {key: aggregate_hc_and_multipliers(results) for key, results in grouped.items()}
