"""Figure 10 harness: mitigation-mechanism overhead versus ``HC_first``.

For every (mechanism, HC_first) point the harness simulates a set of
multi-programmed workload mixes with and without the mechanism, computes

* the DRAM bandwidth overhead the mechanism imposes (Figure 10a), and
* the weighted speedup normalized to the no-mitigation baseline
  (Figure 10b),

and reports the average, minimum and maximum across mixes, mirroring the
paper's error bars.  Mechanisms are only evaluated at the ``HC_first``
values where their published designs apply (Section 6.1): ProHIT and MRLoc
at 2000 only, increased refresh rate and non-ideal TWiCe at 32k and above.

In the default event step mode the sweep's independent simulations run as
sim-major :class:`~repro.sim.batch.SimulationBatch` groups through the
vectorized kernel (see :mod:`repro.sim.kernel`); the batch path is pinned
bit-identical to the per-simulation loops, so results and cached digests
are unaffected by the routing.

Sharded execution
-----------------
The registered studies declare a work-unit decomposition (see
:mod:`repro.experiments.study`): one *baseline* unit per workload mix (the
no-mitigation run plus the per-core alone-IPC runs) and one *cell* unit per
evaluable (mechanism, HC_first, mix) grid point.  Every unit rebuilds its
mix's traces deterministically from the config, simulates independently,
and returns raw IPCs/overheads; the merge recomputes the exact floating
point operations of :func:`run_mitigation_study` in the same order, so the
sharded payload is bit-identical to the monolithic one while sessions gain
per-cell caching, crash resume and process-pool sharding of the grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.study import WorkUnit, register_study
from repro.mitigations.base import MitigationConfig
from repro.mitigations.registry import build_mechanism, is_evaluable
from repro.sim.batch import SimulationBatch
from repro.sim.config import SystemConfig
from repro.sim.metrics import normalized_performance, weighted_speedup
from repro.sim.system import Simulation
from repro.sim.workloads import WorkloadMix, make_workload_mixes

#: Default HC_first sweep of Figure 10 (200k down to 64).
DEFAULT_HCFIRST_SWEEP: Tuple[int, ...] = (
    200_000,
    100_000,
    50_000,
    25_600,
    12_800,
    6_400,
    3_200,
    2_000,
    1_024,
    512,
    256,
    128,
    64,
)

#: Default mechanism set of Figure 10.
DEFAULT_MECHANISMS: Tuple[str, ...] = (
    "IncreasedRefresh",
    "PARA",
    "ProHIT",
    "MRLoc",
    "TWiCe",
    "TWiCe-ideal",
    "Ideal",
)


@dataclass
class MitigationStudyPoint:
    """Results of one (mechanism, HC_first) evaluation point."""

    mechanism: str
    hcfirst: int
    normalized_performance_avg: float
    normalized_performance_min: float
    normalized_performance_max: float
    bandwidth_overhead_avg: float
    bandwidth_overhead_min: float
    bandwidth_overhead_max: float
    workloads_evaluated: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "mechanism": self.mechanism,
            "hcfirst": self.hcfirst,
            "normalized_performance_avg": self.normalized_performance_avg,
            "normalized_performance_min": self.normalized_performance_min,
            "normalized_performance_max": self.normalized_performance_max,
            "bandwidth_overhead_avg": self.bandwidth_overhead_avg,
            "bandwidth_overhead_min": self.bandwidth_overhead_min,
            "bandwidth_overhead_max": self.bandwidth_overhead_max,
            "workloads_evaluated": self.workloads_evaluated,
        }


@dataclass
class MitigationStudyResult:
    """All evaluation points of one Figure 10 run."""

    points: List[MitigationStudyPoint] = field(default_factory=list)

    def series_for(self, mechanism: str) -> Dict[int, MitigationStudyPoint]:
        """Points of one mechanism keyed by HC_first (descending vulnerability)."""
        return {
            point.hcfirst: point
            for point in sorted(self.points, key=lambda p: -p.hcfirst)
            if point.mechanism == mechanism
        }

    def mechanisms(self) -> List[str]:
        names: List[str] = []
        for point in self.points:
            if point.mechanism not in names:
                names.append(point.mechanism)
        return names

    def performance_at(self, mechanism: str, hcfirst: int) -> Optional[float]:
        """Average normalized performance of a mechanism at one HC_first."""
        for point in self.points:
            if point.mechanism == mechanism and point.hcfirst == hcfirst:
                return point.normalized_performance_avg
        return None


@dataclass(frozen=True)
class MitigationStudyConfig:
    """Parameters of the registered Figure 10 mitigation study.

    A hashable mirror of :func:`run_mitigation_study`'s arguments: the
    simulated system and workload mixes are described by value
    (``rows_per_bank``, ``num_mixes``) rather than passed as objects so the
    config can key the result cache.
    """

    hcfirst_values: Tuple[int, ...] = DEFAULT_HCFIRST_SWEEP
    mechanisms: Tuple[str, ...] = DEFAULT_MECHANISMS
    num_mixes: int = 4
    rows_per_bank: int = 4096
    dram_cycles: int = 20_000
    requests_per_core: int = 4_000
    seed: int = 0
    respect_design_constraints: bool = True
    time_scale: float = 1.0
    #: Simulation stepping strategy; ``"cycle"`` is the bit-identical
    #: reference implementation (see :class:`repro.sim.system.Simulation`).
    step_mode: str = "event"

    def __post_init__(self) -> None:
        if not self.hcfirst_values or any(hc <= 0 for hc in self.hcfirst_values):
            raise ValueError("hcfirst_values must hold positive values")
        if not self.mechanisms:
            raise ValueError("at least one mechanism is required")
        if self.num_mixes < 1:
            raise ValueError("num_mixes must be at least 1")


@dataclass(frozen=True)
class FullMitigationStudyConfig(MitigationStudyConfig):
    """Paper-scale Figure 10 preset: the full 48-mix evaluation.

    Section 6 of the paper evaluates every mechanism over 48 randomly
    mixed 8-core workloads; this preset reproduces that axis in full (the
    quick ``fig10-mitigations`` default samples 4 mixes) on the Table 6
    geometry, with simulations 2.5x longer than the quick preset so every
    run crosses several refresh intervals.  Designed to be executed through
    a cached :class:`repro.experiments.session.ExperimentSession` -- the
    sweep is a single population-level study result, so a completed run is
    replayed from the store in milliseconds.
    """

    num_mixes: int = 48
    rows_per_bank: int = 16384
    dram_cycles: int = 50_000
    requests_per_core: int = 8_000


# ----------------------------------------------------------------------
# Work-unit decomposition of the Figure 10 grid
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MitigationBaselineUnit:
    """Payload of one baseline work unit: the no-mitigation run of one mix.

    Carries the raw per-core IPCs of the shared baseline run and the
    alone-run IPC of every core, from which the merge recomputes the mix's
    baseline weighted speedup exactly as the monolithic sweep does.
    """

    mix: int
    core_ipcs: Tuple[float, ...]
    alone_ipcs: Tuple[float, ...]


@dataclass(frozen=True)
class MitigationCellUnit:
    """Payload of one (mechanism, HC_first, mix) cell work unit."""

    mechanism: str
    hcfirst: int
    mix: int
    core_ipcs: Tuple[float, ...]
    bandwidth_overhead_percent: float


@lru_cache(maxsize=4)
def _cached_mix_traces(
    num_mixes: int, mix_index: int, rows_per_bank: int, requests_per_core: int, seed: int
) -> tuple:
    """Per-process trace cache for unit execution.

    Every work unit of one mix needs the same deterministic traces; caching
    them per process means a worker draining several units of a mix pays
    for trace synthesis once, like the monolithic sweep does.  Traces are
    safe to share between simulations: ``Simulation`` copies the per-core
    record lists it consumes and the records themselves are immutable.
    """
    system_config = SystemConfig(rows_per_bank=rows_per_bank)
    mixes = make_workload_mixes(
        num_mixes=num_mixes, cores=system_config.cores, seed=seed
    )
    return tuple(
        mixes[mix_index].build_traces(
            banks=system_config.banks,
            rows_per_bank=system_config.rows_per_bank,
            columns_per_row=system_config.columns_per_row,
            requests_per_core=requests_per_core,
            seed=seed,
        )
    )


def _evaluation_points(config: MitigationStudyConfig) -> List[Tuple[str, int]]:
    """The (mechanism, HC_first) grid points the config evaluates, in order."""
    return [
        (mechanism, hcfirst)
        for mechanism in config.mechanisms
        for hcfirst in config.hcfirst_values
        if not config.respect_design_constraints or is_evaluable(mechanism, hcfirst)
    ]


def _fig10_decompose(study_name: str):
    """Decomposition for one registered Figure 10 study.

    Units are ordered mix-major (a mix's baseline, then all of its cells)
    so workers draining consecutive units reuse the per-process trace
    cache; merge order is reconstructed from the config axes, not the unit
    order, so this is purely a locality choice.
    """

    def decompose(config: MitigationStudyConfig) -> List[WorkUnit]:
        # Per the WorkUnit cache contract, params carry every config field
        # the unit's payload depends on.  The sweep axes (mechanisms,
        # hcfirst_values) and the design-constraint flag shape only *which*
        # units exist, so they stay out -- editing them invalidates nothing
        # that survives the edit.
        simulated = {
            "num_mixes": config.num_mixes,
            "rows_per_bank": config.rows_per_bank,
            "dram_cycles": config.dram_cycles,
            "requests_per_core": config.requests_per_core,
            "seed": config.seed,
            "step_mode": config.step_mode,
        }
        units: List[WorkUnit] = []
        points = _evaluation_points(config)
        for mix in range(config.num_mixes):
            units.append(
                WorkUnit(
                    study=study_name,
                    unit_id=f"baseline/mix{mix:02d}",
                    params={"kind": "baseline", "mix": mix, **simulated},
                )
            )
            for mechanism, hcfirst in points:
                units.append(
                    WorkUnit(
                        study=study_name,
                        unit_id=f"cell/{mechanism}/hc{hcfirst}/mix{mix:02d}",
                        params={
                            "kind": "cell",
                            "mechanism": mechanism,
                            "hcfirst": hcfirst,
                            "mix": mix,
                            "time_scale": config.time_scale,
                            **simulated,
                        },
                    )
                )
        return units

    return decompose


def _run_mitigation_unit(
    _chip: None, config: MitigationStudyConfig, unit: WorkUnit
) -> object:
    """Execute one Figure 10 work unit (a baseline or a grid cell)."""
    params = unit.param_dict
    mix_index = params["mix"]
    system_config = SystemConfig(rows_per_bank=config.rows_per_bank)
    traces = list(
        _cached_mix_traces(
            config.num_mixes,
            mix_index,
            config.rows_per_bank,
            config.requests_per_core,
            config.seed,
        )
    )
    if params["kind"] == "baseline":
        baseline = Simulation(
            system_config, traces, mitigation=None, step_mode=config.step_mode
        ).run(config.dram_cycles)
        if config.step_mode == "event":
            # The per-core alone runs are independent single-core sims of
            # one config: batch them through the kernel (bit-identical to
            # the per-simulation loop, so cached unit payloads are stable).
            alone_ipcs = tuple(
                result.core_ipcs[0]
                for result in SimulationBatch(
                    system_config, [[trace] for trace in traces]
                ).run(config.dram_cycles)
            )
        else:
            alone_ipcs = tuple(
                Simulation(
                    system_config, [trace], mitigation=None, step_mode=config.step_mode
                )
                .run(config.dram_cycles)
                .core_ipcs[0]
                for trace in traces
            )
        return MitigationBaselineUnit(
            mix=mix_index, core_ipcs=tuple(baseline.core_ipcs), alone_ipcs=alone_ipcs
        )
    mitigation = build_mechanism(
        params["mechanism"],
        MitigationConfig(
            hcfirst=params["hcfirst"],
            banks=system_config.banks,
            rows_per_bank=system_config.rows_per_bank,
            timings=system_config.timings,
            seed=config.seed + mix_index,
            time_scale=config.time_scale,
        ),
    )
    result = Simulation(
        system_config, traces, mitigation=mitigation, step_mode=config.step_mode
    ).run(config.dram_cycles)
    return MitigationCellUnit(
        mechanism=params["mechanism"],
        hcfirst=params["hcfirst"],
        mix=mix_index,
        core_ipcs=tuple(result.core_ipcs),
        bandwidth_overhead_percent=result.bandwidth_overhead_percent,
    )


def _merge_mitigation_units(
    config: MitigationStudyConfig, payloads: Sequence[object]
) -> "MitigationStudyResult":
    """Reassemble the Figure 10 payload from unit payloads.

    Walks the config axes in the monolithic sweep's loop order and repeats
    its floating-point operations exactly (same values, same order), so the
    merged result is bit-identical to :func:`run_mitigation_study` no matter
    which executor ran the units or in which order they completed.
    """
    baselines: Dict[int, MitigationBaselineUnit] = {}
    cells: Dict[Tuple[str, int, int], MitigationCellUnit] = {}
    for payload in payloads:
        if isinstance(payload, MitigationBaselineUnit):
            baselines[payload.mix] = payload
        elif isinstance(payload, MitigationCellUnit):
            cells[(payload.mechanism, payload.hcfirst, payload.mix)] = payload
        else:
            raise TypeError(f"unexpected Figure 10 unit payload: {payload!r}")

    baseline_speedups = {
        mix: weighted_speedup(unit.core_ipcs, unit.alone_ipcs)
        for mix, unit in baselines.items()
    }
    study = MitigationStudyResult()
    for mechanism_name, hcfirst in _evaluation_points(config):
        performances: List[float] = []
        overheads: List[float] = []
        for mix in range(config.num_mixes):
            cell = cells[(mechanism_name, hcfirst, mix)]
            baseline = baselines[mix]
            speedup = weighted_speedup(cell.core_ipcs, baseline.alone_ipcs)
            performances.append(
                normalized_performance(speedup, baseline_speedups[mix])
            )
            overheads.append(cell.bandwidth_overhead_percent)
        study.points.append(
            MitigationStudyPoint(
                mechanism=mechanism_name,
                hcfirst=hcfirst,
                normalized_performance_avg=sum(performances) / len(performances),
                normalized_performance_min=min(performances),
                normalized_performance_max=max(performances),
                bandwidth_overhead_avg=sum(overheads) / len(overheads),
                bandwidth_overhead_min=min(overheads),
                bandwidth_overhead_max=max(overheads),
                workloads_evaluated=len(performances),
            )
        )
    return study


@register_study(
    "fig10-mitigations",
    config=MitigationStudyConfig,
    requires_chip=False,
    decompose=_fig10_decompose("fig10-mitigations"),
    unit_runner=_run_mitigation_unit,
    merge=_merge_mitigation_units,
)
def run_mitigation_study_for_config(
    _chip: None, config: MitigationStudyConfig
) -> "MitigationStudyResult":
    """Mitigation overhead versus HC_first (Figure 10), population-level."""
    system_config = SystemConfig(rows_per_bank=config.rows_per_bank)
    mixes = make_workload_mixes(
        num_mixes=config.num_mixes, cores=system_config.cores, seed=config.seed
    )
    return run_mitigation_study(
        system_config=system_config,
        workload_mixes=mixes,
        hcfirst_values=config.hcfirst_values,
        mechanisms=config.mechanisms,
        dram_cycles=config.dram_cycles,
        requests_per_core=config.requests_per_core,
        seed=config.seed,
        respect_design_constraints=config.respect_design_constraints,
        time_scale=config.time_scale,
        step_mode=config.step_mode,
    )


@register_study(
    "fig10-mitigations-full",
    config=FullMitigationStudyConfig,
    requires_chip=False,
    decompose=_fig10_decompose("fig10-mitigations-full"),
    unit_runner=_run_mitigation_unit,
    merge=_merge_mitigation_units,
)
def run_full_mitigation_study(
    _chip: None, config: FullMitigationStudyConfig
) -> "MitigationStudyResult":
    """Figure 10 at paper scale: all 48 workload mixes, Table 6 geometry."""
    return run_mitigation_study_for_config(_chip, config)


def run_mitigation_study(
    system_config: Optional[SystemConfig] = None,
    workload_mixes: Optional[Sequence[WorkloadMix]] = None,
    hcfirst_values: Sequence[int] = DEFAULT_HCFIRST_SWEEP,
    mechanisms: Sequence[str] = DEFAULT_MECHANISMS,
    dram_cycles: int = 20_000,
    requests_per_core: int = 4_000,
    seed: int = 0,
    respect_design_constraints: bool = True,
    time_scale: float = 1.0,
    step_mode: str = "event",
) -> MitigationStudyResult:
    """Run the Figure 10 evaluation.

    Parameters
    ----------
    system_config:
        Simulated system (defaults to Table 6 with a reduced row count for
        speed -- mitigation table sizes scale with it).
    workload_mixes:
        Multi-programmed mixes to evaluate; defaults to a small random set.
        The paper uses 48 mixes; the default here is sized for a quick run.
    hcfirst_values, mechanisms:
        The sweep axes of Figure 10.
    dram_cycles, requests_per_core:
        Length of each simulation.
    respect_design_constraints:
        When true (the default, matching the paper), mechanisms are skipped
        at HC_first values where their published design does not apply.
    time_scale:
        Optional threshold scaling for counter-based mechanisms (see
        :class:`repro.mitigations.base.MitigationConfig`).  The default of
        1.0 models the mechanisms faithfully; values below 1.0 compress the
        refresh window into the simulated interval, which over-approximates
        the overhead of counter-based mechanisms on short runs.
    step_mode:
        Simulation stepping strategy; the default event-driven mode and the
        ``"cycle"`` reference produce bit-identical studies.  In event mode
        the sweep's independent simulations are grouped into
        :class:`~repro.sim.batch.SimulationBatch` runs (all baselines in one
        batch, each grid point's mixes in one batch), stepping through the
        vectorized kernel when :func:`repro.sim.kernel.kernel_enabled`
        allows and through the per-simulation event loop otherwise --
        either way the payload is unchanged.

    Traces are generated once per mix and shared by every evaluation point
    (every ``Simulation`` copies the per-core record lists it needs, and the
    records themselves are immutable), so the sweep pays for trace synthesis
    ``num_mixes`` times instead of once per (mechanism, HC_first, mix) run.
    """
    config = system_config or SystemConfig(rows_per_bank=4096)
    mixes = list(workload_mixes) if workload_mixes is not None else make_workload_mixes(
        num_mixes=4, cores=config.cores, seed=seed
    )
    traces_per_mix = [
        mix.build_traces(
            banks=config.banks,
            rows_per_bank=config.rows_per_bank,
            columns_per_row=config.columns_per_row,
            requests_per_core=requests_per_core,
            seed=seed,
        )
        for mix in mixes
    ]

    # Baselines (no mitigation) and alone IPCs are shared across all points.
    # In event mode the independent simulations of each group run as one
    # SimulationBatch through the sim-major kernel (bit-identical to the
    # per-simulation event loop, so the study payload -- and any cached
    # digest of it -- is unchanged); the cycle oracle keeps the scalar loop.
    use_batch = step_mode == "event"
    if use_batch:
        baselines = SimulationBatch(config, traces_per_mix).run(dram_cycles)
        alone_ipcs_per_mix = [
            [
                result.core_ipcs[0]
                for result in SimulationBatch(
                    config, [[trace] for trace in traces]
                ).run(dram_cycles)
            ]
            for traces in traces_per_mix
        ]
    else:
        baselines = []
        alone_ipcs_per_mix = []
        for traces in traces_per_mix:
            baselines.append(
                Simulation(config, traces, mitigation=None, step_mode=step_mode).run(
                    dram_cycles
                )
            )
            alone_ipcs_per_mix.append(
                [
                    Simulation(config, [trace], mitigation=None, step_mode=step_mode)
                    .run(dram_cycles)
                    .core_ipcs[0]
                    for trace in traces
                ]
            )
    baseline_speedups = [
        weighted_speedup(result.core_ipcs, alone)
        for result, alone in zip(baselines, alone_ipcs_per_mix)
    ]

    study = MitigationStudyResult()
    for mechanism_name in mechanisms:
        for hcfirst in hcfirst_values:
            if respect_design_constraints and not is_evaluable(mechanism_name, hcfirst):
                continue
            mitigations = [
                build_mechanism(
                    mechanism_name,
                    MitigationConfig(
                        hcfirst=hcfirst,
                        banks=config.banks,
                        rows_per_bank=config.rows_per_bank,
                        timings=config.timings,
                        seed=seed + mix_index,
                        time_scale=time_scale,
                    ),
                )
                for mix_index in range(len(traces_per_mix))
            ]
            if use_batch:
                # One batch per grid point: all of the point's mixes step in
                # lockstep through the kernel.
                results = SimulationBatch(
                    config, traces_per_mix, mitigations=mitigations
                ).run(dram_cycles)
            else:
                results = [
                    Simulation(
                        config, traces, mitigation=mitigation, step_mode=step_mode
                    ).run(dram_cycles)
                    for traces, mitigation in zip(traces_per_mix, mitigations)
                ]
            performances: List[float] = []
            overheads: List[float] = []
            for mix_index, result in enumerate(results):
                speedup = weighted_speedup(result.core_ipcs, alone_ipcs_per_mix[mix_index])
                performances.append(
                    normalized_performance(speedup, baseline_speedups[mix_index])
                )
                overheads.append(result.bandwidth_overhead_percent)
            if not performances:
                continue
            study.points.append(
                MitigationStudyPoint(
                    mechanism=mechanism_name,
                    hcfirst=hcfirst,
                    normalized_performance_avg=sum(performances) / len(performances),
                    normalized_performance_min=min(performances),
                    normalized_performance_max=max(performances),
                    bandwidth_overhead_avg=sum(overheads) / len(overheads),
                    bandwidth_overhead_min=min(overheads),
                    bandwidth_overhead_max=max(overheads),
                    workloads_evaluated=len(performances),
                )
            )
    return study
