"""Plain-text rendering helpers for tables and figure series.

Benchmark harnesses print the regenerated tables so a run's output can be
compared side by side with the paper; these helpers keep that formatting in
one place.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a simple fixed-width text table.

    >>> print(format_table(["a", "b"], [[1, 2]]))
    a | b
    --+--
    1 | 2
    """
    columns = len(headers)
    normalized_rows = [[_cell(value) for value in row] for row in rows]
    for row in normalized_rows:
        if len(row) != columns:
            raise ValueError("every row must have one cell per header")
    widths = [len(str(header)) for header in headers]
    for row in normalized_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in normalized_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "N/A"
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def render_series(
    series: Mapping[object, object],
    label: str = "value",
    key_label: str = "key",
) -> str:
    """Render a one-dimensional series (for example a figure's data points)."""
    rows = [[key, value] for key, value in series.items()]
    return format_table([key_label, label], rows)


def render_nested_series(
    series: Mapping[object, Mapping[object, object]],
    key_label: str = "key",
) -> str:
    """Render a two-level mapping as a table with one column per inner key."""
    inner_keys: List[object] = []
    for inner in series.values():
        for key in inner:
            if key not in inner_keys:
                inner_keys.append(key)
    headers = [key_label] + [str(key) for key in inner_keys]
    rows = []
    for outer_key, inner in series.items():
        rows.append([outer_key] + [inner.get(key) for key in inner_keys])
    return format_table(headers, rows)
