"""Wire protocol of the experiment service: newline-delimited JSON messages.

Every message is one JSON object on one line (``\\n``-terminated, UTF-8),
with a mandatory ``"type"`` field -- the same framing the litex rowhammer
tooling uses between its remote client and the board server, chosen here so
a scheduler can be driven by anything that can write a line to a socket
(including ``nc`` for the ``status`` endpoint).

Python payloads that are not JSON-representable -- pickled
:class:`~repro.experiments.executors.StudyTask` items travelling to workers
and :class:`~repro.experiments.executors.TaskOutcome` items travelling
back -- ride inside JSON strings as base64-encoded pickle *blobs* (see
:func:`pack_blob` / :func:`unpack_blob`).  Everything the scheduler itself
must understand (keys, indexes, counters, lease ids, status) is plain JSON,
so the scheduler never unpickles task blobs except to checkpoint results
into a :class:`~repro.experiments.store.ResultStore`.

Message reference
-----------------
Handshake (both directions of every connection)::

    {"type": "hello", "role": "client"|"worker", "name": str, "protocol": 1}
    {"type": "hello_ack", "protocol": 1, "lease_ttl": float}
    {"type": "error", "error": str}          # fatal; sender closes after

Client -> scheduler::

    {"type": "submit", "submission_id": str, "label": str,
     "units": [{"key": str, "index": int, "unit_digest": str,
                "task": blob, "cache": {...}|null}]}
    {"type": "status_request"}

Scheduler -> client::

    {"type": "submit_ack", "submission_id": str, "units": int}
    {"type": "unit_complete", "submission_id": str, "key": str, "index": int,
     "attempts": int, "requeues": int, "elapsed_s": float, "outcome": blob}
    {"type": "unit_quarantined", "submission_id": str, "key": str,
     "index": int, "attempts": int, "errors": [str]}
    {"type": "submission_done", "submission_id": str, "completed": int,
     "quarantined": [str]}
    {"type": "status_reply", "status": {...}}

Worker -> scheduler::

    {"type": "lease_request", "capacity": int}
    {"type": "heartbeat", "lease_id": str}   # fire-and-forget, no reply
    {"type": "unit_result", "lease_id": str, "key": str,
     "elapsed_s": float, "outcome": blob}
    {"type": "unit_failed", "lease_id": str, "key": str, "error": str}
    {"type": "goodbye"}

Scheduler -> worker::

    {"type": "lease_grant", "lease_id": str, "expires_in": float,
     "units": [{"key": str, "task": blob}]}
    {"type": "no_work", "retry_in": float}
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import threading
from typing import Any, Dict, Optional

#: Bump when a message's meaning changes incompatibly; scheduler and
#: workers refuse mismatched peers at hello time.
PROTOCOL_VERSION = 1

#: Upper bound on one framed line.  A full-scale Figure 10 submission
#: (2304 pickled work units) is tens of MB; 256 MB leaves headroom without
#: letting a corrupt peer allocate unbounded memory.
MAX_LINE_BYTES = 256 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A peer sent a malformed or unexpected message."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """Frame one message as a newline-terminated JSON line."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Decode one framed line; raises :class:`ProtocolError` on bad input."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message line: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"message is not a typed object: {message!r}")
    return message


def pack_blob(obj: Any) -> str:
    """Encode an arbitrary picklable object as a JSON-safe base64 string."""
    return base64.b64encode(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)).decode(
        "ascii"
    )


def unpack_blob(text: str) -> Any:
    """Inverse of :func:`pack_blob`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


class MessageStream:
    """Blocking newline-delimited-JSON channel over one TCP socket.

    Used by the synchronous peers (workers and clients); the scheduler
    speaks the same framing through asyncio streams.  ``send`` is
    thread-safe (a worker's heartbeat thread shares the socket with its
    execution loop); ``recv`` must only be called from one thread.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._send_lock = threading.Lock()

    def send(self, message: Dict[str, Any]) -> None:
        data = encode_message(message)
        with self._send_lock:
            self._sock.sendall(data)

    def recv(self) -> Optional[Dict[str, Any]]:
        """Read one message; ``None`` means the peer closed the connection."""
        line = self._reader.readline(MAX_LINE_BYTES)
        if not line:
            return None
        if not line.endswith(b"\n"):
            raise ProtocolError("truncated message line (peer died mid-send?)")
        return decode_message(line)

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "MessageStream":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def connect_stream(host: str, port: int, timeout: Optional[float] = None) -> MessageStream:
    """Open a :class:`MessageStream` to a scheduler endpoint."""
    sock = socket.create_connection((host, port), timeout=timeout)
    # The service exchanges many small messages (heartbeats, single-unit
    # results); disable Nagle so they are not batched behind each other.
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.settimeout(None)
    return MessageStream(sock)


def hello(role: str, name: str) -> Dict[str, Any]:
    """Build the handshake message every connection opens with."""
    return {"type": "hello", "role": role, "name": name, "protocol": PROTOCOL_VERSION}


def check_hello(message: Optional[Dict[str, Any]], expected_roles: tuple) -> Dict[str, Any]:
    """Validate a received hello; raises :class:`ProtocolError` if unfit."""
    if message is None:
        raise ProtocolError("peer closed the connection before hello")
    if message.get("type") != "hello":
        raise ProtocolError(f"expected hello, got {message.get('type')!r}")
    if message.get("protocol") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol mismatch: peer speaks {message.get('protocol')!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    if message.get("role") not in expected_roles:
        raise ProtocolError(f"unexpected role {message.get('role')!r}")
    return message
