"""A deterministic diagnostic study for exercising the experiment service.

``service-selftest`` is a registered, decomposable study whose units do
pure, seeded hash work -- no chips, no simulator -- with two knobs real
studies lack: a per-unit sleep (so fault injection can reliably catch a
worker mid-unit) and a poison list (units that always raise, driving the
retry/quarantine machinery).  Because the payloads are pure functions of
the config, any executor -- serial, process pool, or a multi-host worker
fleet with workers dying mid-sweep -- must produce bit-identical results,
which makes this study the canonical end-to-end probe for
:mod:`repro.service` (the CI loopback smoke and the fault-injection tests
are built on it).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.experiments.study import WorkUnit, register_study


@dataclass(frozen=True)
class ServiceSelfTestConfig:
    """Parameters of the ``service-selftest`` study.

    ``rounds`` sets per-unit CPU work (sha256 chain length); ``unit_sleep_s``
    adds wall-clock per unit; ``fail_units`` lists unit indexes that raise
    on every attempt (poison units).
    """

    units: int = 6
    rounds: int = 2_000
    unit_sleep_s: float = 0.0
    fail_units: Tuple[int, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.units < 1:
            raise ValueError("units must be at least 1")
        if self.rounds < 1:
            raise ValueError("rounds must be at least 1")
        if any(i < 0 or i >= self.units for i in self.fail_units):
            raise ValueError("fail_units indexes must fall inside the unit range")


@dataclass(frozen=True)
class ServiceSelfTestResult:
    """Merged selftest payload: per-unit digests plus their combined digest."""

    unit_digests: Tuple[str, ...]
    combined_digest: str


def _unit_digest_value(seed: int, index: int, rounds: int) -> str:
    digest = hashlib.sha256(f"selftest:{seed}:{index}".encode("ascii")).digest()
    for _ in range(rounds):
        digest = hashlib.sha256(digest).digest()
    return digest.hex()


def _decompose(config: ServiceSelfTestConfig) -> List[WorkUnit]:
    return [
        WorkUnit(
            study="service-selftest",
            unit_id=f"unit-{index:04d}",
            params={
                "index": index,
                "rounds": config.rounds,
                "sleep_s": config.unit_sleep_s,
                "fail": index in config.fail_units,
                "seed": config.seed,
            },
        )
        for index in range(config.units)
    ]


def _run_unit(_chip: None, config: ServiceSelfTestConfig, unit: WorkUnit) -> str:
    params = unit.param_dict
    if params["fail"]:
        raise RuntimeError(f"selftest unit {params['index']} is poisoned")
    if params["sleep_s"]:
        time.sleep(float(params["sleep_s"]))
    return _unit_digest_value(params["seed"], params["index"], params["rounds"])


def _merge(
    config: ServiceSelfTestConfig, payloads: Sequence[str]
) -> ServiceSelfTestResult:
    combined = hashlib.sha256("\x1f".join(payloads).encode("ascii")).hexdigest()
    return ServiceSelfTestResult(
        unit_digests=tuple(payloads), combined_digest=combined
    )


@register_study(
    "service-selftest",
    config=ServiceSelfTestConfig,
    requires_chip=False,
    description="Deterministic hash-work study for service fault injection",
    decompose=_decompose,
    unit_runner=_run_unit,
    merge=_merge,
)
def run_service_selftest(
    _chip: None, config: ServiceSelfTestConfig
) -> ServiceSelfTestResult:
    """Deterministic hash-work study for service fault injection."""
    payloads = [_run_unit(_chip, config, unit) for unit in _decompose(config)]
    return _merge(config, payloads)
