"""Command-line entrypoints: ``python -m repro.service <subcommand>``.

Four subcommands mirror the roles of the service (see the package
docstring for a full walkthrough):

* ``scheduler`` -- run a scheduler in the foreground until interrupted.
* ``worker``    -- run a worker pull loop against a scheduler.
* ``submit``    -- submit one registered study from the shell and wait for
  the merged result (the way the litex rowhammer scripts drive a board
  server through a remote client).
* ``status``    -- print the scheduler's live telemetry snapshot.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any, Optional


def _add_endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="scheduler host")
    parser.add_argument("--port", type=int, default=7075, help="scheduler port")


def _cmd_scheduler(args: argparse.Namespace) -> int:
    from repro.experiments.store import ResultStore
    from repro.service.scheduler import SchedulerServer

    store = ResultStore(args.store) if args.store else None
    server = SchedulerServer(
        args.host,
        args.port,
        lease_ttl=args.lease_ttl,
        max_attempts=args.max_attempts,
        backoff_base=args.backoff_base,
        backoff_cap=args.backoff_cap,
        store=store,
        default_batch=args.batch,
    )

    async def main() -> None:
        host, port = await server.start()
        print(f"repro.service scheduler listening on {host}:{port}", flush=True)
        if store is not None:
            print(f"checkpointing completed units into {args.store}", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("scheduler stopped", flush=True)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.service.worker import ServiceWorker

    worker = ServiceWorker(
        args.host,
        args.port,
        name=args.name,
        batch_size=args.batch,
        max_units=args.max_units,
        max_idle_s=args.max_idle_s,
    )
    print(f"worker {worker.name} pulling from {args.host}:{args.port}", flush=True)
    try:
        done = worker.run()
    except KeyboardInterrupt:
        done = worker.units_done
    print(f"worker {worker.name} exiting after {done} unit(s)", flush=True)
    return 0


def _build_config(study_name: str, config_json: Optional[str]) -> Any:
    from repro.experiments import get_study

    spec = get_study(study_name)
    if not config_json:
        return spec.default_config()
    kwargs = json.loads(config_json)
    if not isinstance(kwargs, dict):
        raise SystemExit("--config-json must hold a JSON object of config fields")
    if spec.config_cls is None:
        raise SystemExit(f"study {study_name!r} takes no config")
    # JSON arrays arrive as lists; frozen configs use tuples for sequence
    # fields (hashability), so convert at the boundary.
    kwargs = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in kwargs.items()
    }
    return spec.config_cls(**kwargs)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentSession, ResultStore, get_study
    from repro.experiments.remote import ServiceExecutor

    spec = get_study(args.study)
    config = _build_config(args.study, args.config_json)
    population = None
    if spec.requires_chip:
        if not args.table1_chips:
            raise SystemExit(
                f"study {args.study!r} runs per chip; pass --table1-chips N to "
                "build a Table 1 population"
            )
    if args.table1_chips:
        from repro.dram.population import make_population

        population = make_population(chips_per_config=args.table1_chips, seed=args.seed)
    session = ExperimentSession(
        population=population,
        executor=ServiceExecutor(args.host, args.port, label=args.study),
        store=ResultStore(args.store) if args.store else None,
        seed=args.seed,
    )
    outcome = session.run(args.study, config)
    print(
        json.dumps(
            {
                "study": outcome.study,
                "results": len(outcome.results),
                "units_total": outcome.units_total,
                "cache_hits": outcome.cache_hits,
                "executed": outcome.executed,
                "retries": outcome.retries,
                "requeues": outcome.requeues,
                "elapsed_s": round(outcome.elapsed_s, 3),
            },
            indent=2,
        ),
        flush=True,
    )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service.client import fetch_status

    status = fetch_status(args.host, args.port)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    counters = status.get("counters", {})
    throughput = status.get("throughput", {})
    print(f"scheduler {status['address'][0]}:{status['address'][1]}")
    print(
        f"  uptime {status['uptime_s']:.1f}s · lease_ttl {status['lease_ttl']}s · "
        f"max_attempts {status['max_attempts']}"
    )
    print(
        "  units: "
        + " ".join(f"{state}={count}" for state, count in status["unit_states"].items())
    )
    print(
        f"  completed {counters.get('units_completed', 0)} · "
        f"requeued {counters.get('units_requeued', 0)} · "
        f"quarantined {counters.get('units_quarantined', 0)} · "
        f"duplicates {counters.get('duplicate_completions', 0)}"
    )
    overall = throughput.get("overall_units_per_s")
    recent = throughput.get("recent_units_per_s")
    print(
        f"  throughput: overall {overall:.2f}/s"
        + (f" · recent {recent:.2f}/s" if recent is not None else "")
    )
    for submission in status.get("submissions", []):
        print(
            f"  study {submission['label']!r} [{submission['id']}]: "
            f"{submission['completed']}/{submission['total']} done, "
            f"{submission['leased']} leased, "
            f"{submission['quarantined']} quarantined, "
            f"{submission['retried_units']} retried"
        )
    for name, view in status.get("workers", {}).items():
        print(
            f"  worker {name}: {view['state']}, "
            f"{view['units_completed']} completed, "
            f"last seen {view['last_seen_s_ago']:.1f}s ago"
        )
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Distributed experiment service for repro studies",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scheduler = sub.add_parser("scheduler", help="run a scheduler")
    _add_endpoint_args(scheduler)
    scheduler.add_argument("--lease-ttl", type=float, default=15.0)
    scheduler.add_argument("--max-attempts", type=int, default=3)
    scheduler.add_argument("--backoff-base", type=float, default=0.25)
    scheduler.add_argument("--backoff-cap", type=float, default=10.0)
    scheduler.add_argument("--batch", type=int, default=2, help="default lease batch")
    scheduler.add_argument(
        "--store", default=None, help="checkpoint completed units into this store dir"
    )
    scheduler.set_defaults(fn=_cmd_scheduler)

    worker = sub.add_parser("worker", help="run a worker pull loop")
    _add_endpoint_args(worker)
    worker.add_argument("--name", default=None)
    worker.add_argument("--batch", type=int, default=2, help="units per lease")
    worker.add_argument("--max-units", type=int, default=None)
    worker.add_argument(
        "--max-idle-s", type=float, default=None, help="exit after this long with no work"
    )
    worker.set_defaults(fn=_cmd_worker)

    submit = sub.add_parser("submit", help="submit a registered study")
    _add_endpoint_args(submit)
    submit.add_argument("--study", required=True)
    submit.add_argument("--config-json", default=None)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--store", default=None, help="client-side result store dir")
    submit.add_argument(
        "--table1-chips", type=int, default=0, help="chips per Table 1 config"
    )
    submit.set_defaults(fn=_cmd_submit)

    status = sub.add_parser("status", help="print scheduler telemetry")
    _add_endpoint_args(status)
    status.add_argument("--json", action="store_true")
    status.set_defaults(fn=_cmd_status)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
