"""Distributed experiment service: leased work-unit dispatch at fleet scale.

``repro.service`` turns the sharded session layer (PR 4's
:class:`~repro.experiments.study.WorkUnit` machinery) into a multi-host
system: an asyncio **scheduler** accepts study submissions from many
concurrent clients, fans their work units out to a fleet of **workers**
over a newline-delimited-JSON socket protocol, and streams each unit's
outcome back to the submitting client, which merges them through the
unchanged session/store machinery.  The unit digests and bit-identity
contracts define correctness: a study run through
:class:`~repro.experiments.remote.ServiceExecutor` produces payloads
bit-identical to :class:`~repro.experiments.executors.SerialExecutor`, for
any worker count, any completion order, and across worker deaths mid-sweep.

Standing up a fleet
-------------------
One scheduler, N workers, any number of clients -- from a shell::

    # terminal 1: the scheduler (ephemeral port printed at startup)
    python -m repro.service scheduler --port 7075 --store /tmp/units

    # terminals 2..N+1: workers (local or on other hosts)
    python -m repro.service worker --host scheduler-host --port 7075

    # terminal N+2: submit a study and wait for the merged result
    python -m repro.service submit --host scheduler-host --port 7075 \\
        --study fig10-mitigations --config-json '{"num_mixes": 1}'

    # anywhere: live telemetry
    python -m repro.service status --host scheduler-host --port 7075

or in-process (tests, examples, notebooks)::

    from repro.service import SchedulerThread, ServiceWorker
    from repro.experiments import ExperimentSession
    from repro.experiments.remote import ServiceExecutor

    with SchedulerThread() as scheduler:
        host, port = scheduler.address
        # ... start ServiceWorker(host, port).run() in threads/processes ...
        session = ExperimentSession(executor=ServiceExecutor(host, port))
        outcome = session.run("fig10-mitigations")

Protocol
--------
Every message is one JSON object per line; pickled tasks/outcomes ride as
base64 blobs inside JSON strings.  The full message reference lives in
:mod:`repro.service.protocol`.  In short: clients send ``submit`` and
receive ``unit_complete`` / ``unit_quarantined`` / ``submission_done``;
workers loop ``lease_request`` -> ``lease_grant`` -> ``unit_result`` |
``unit_failed`` with fire-and-forget ``heartbeat`` renewals; anyone may
send ``status_request``.

Lease state machine
-------------------
Workers pull unit *batches* under leases (expiry + heartbeat).  Per unit::

                 grant                    complete
    PENDING  ------------->  LEASED  ----------------->  COMPLETED
       ^                       |
       |  requeue + backoff    |  lease expired / worker died /
       +-----------------------+  worker-reported failure
       |
       |  attempts >= max_attempts
       +----------------------------->  QUARANTINED

A dead worker's units are re-leased immediately (connection loss) or at
the next sweep (heartbeat expiry), and retried under capped exponential
backoff; a unit that fails ``max_attempts`` times is quarantined --
reported to the client as poisoned -- without sinking other units,
submissions or clients.  Completions are idempotent by unit key (which
embeds the unit digest): re-dispatch races resolve to first-wins, with
late duplicates counted and dropped.  See :mod:`repro.service.leases`.

Telemetry
---------
The ``status`` endpoint reports per-study progress, unit throughput,
lease/retry/quarantine counters and worker liveness; unit execution times
are aggregated as *streaming* statistics (bounded reservoir summarised via
:func:`repro.utils.stats.box_stats`), so scheduler memory stays bounded no
matter how many units a sweep completes.  See
:mod:`repro.service.telemetry`.
"""

from repro.service.client import (
    PoisonedUnitError,
    SchedulerUnavailableError,
    ServiceClient,
    fetch_status,
)
from repro.service.leases import Lease, LeaseManager, UnitRecord, UnitState
from repro.service.protocol import PROTOCOL_VERSION, ProtocolError
from repro.service.scheduler import SchedulerServer, SchedulerThread
from repro.service.selftest import ServiceSelfTestConfig, ServiceSelfTestResult
from repro.service.telemetry import SchedulerTelemetry, StreamingStats
from repro.service.worker import ServiceWorker

__all__ = [
    "Lease",
    "LeaseManager",
    "PoisonedUnitError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SchedulerServer",
    "SchedulerTelemetry",
    "SchedulerThread",
    "SchedulerUnavailableError",
    "ServiceClient",
    "ServiceSelfTestConfig",
    "ServiceSelfTestResult",
    "ServiceWorker",
    "StreamingStats",
    "UnitRecord",
    "UnitState",
    "fetch_status",
]
