"""Leased work-unit dispatch: the scheduler's fault-tolerance core.

The :class:`LeaseManager` owns every submitted work unit's scheduling state
and is deliberately free of sockets, asyncio and wall clocks -- every
transition takes an explicit ``now``, so the whole state machine is unit
testable at any simulated timescale.

Lease state machine (per unit)
------------------------------
::

                 grant                    complete
    PENDING  ------------->  LEASED  ----------------->  COMPLETED
       ^                       |
       |   requeue (+backoff)  |  lease expired / worker died /
       +-----------------------+  worker-reported failure
       |
       |   attempts >= max_attempts
       +----------------------------->  QUARANTINED

* A *lease* covers one batch of units granted to one worker and carries an
  expiry; heartbeats push the expiry forward.  A worker that stops
  heartbeating (hung) or whose connection drops (dead) has its incomplete
  units *requeued*: back to PENDING, eligible again after a capped
  exponential backoff.
* Every grant counts as an attempt.  A unit whose attempts reach
  ``max_attempts`` without a completion is *quarantined* (poisoned) instead
  of requeued -- the submission still terminates, reporting the quarantined
  keys, rather than retrying a crashing unit forever.
* Completions are idempotent by unit key (which embeds the unit digest):
  the first completion wins, and a late completion from a presumed-dead
  worker is either accepted (if nobody else finished the unit first -- the
  payload is bit-identical either way) or counted as a duplicate and
  dropped.

Fairness: units are granted round-robin across active submissions, so one
huge study does not starve a small one submitted after it.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, Dict, List, Optional, Set, Tuple


class UnitState(Enum):
    PENDING = "pending"
    LEASED = "leased"
    COMPLETED = "completed"
    QUARANTINED = "quarantined"


@dataclass
class UnitRecord:
    """Scheduling state of one submitted work unit."""

    key: str
    submission_id: str
    index: int
    unit_digest: str
    task_blob: str
    cache: Optional[dict] = None
    state: UnitState = UnitState.PENDING
    #: Times the unit has been granted to a worker.
    attempts: int = 0
    #: Times a lease on the unit was reclaimed (expiry or worker death).
    requeues: int = 0
    #: Earliest time the unit may be granted again (backoff gate).
    available_at: float = 0.0
    lease_id: Optional[str] = None
    worker: Optional[str] = None
    errors: List[str] = field(default_factory=list)


@dataclass
class Lease:
    """One batch of units granted to one worker, with an expiry."""

    lease_id: str
    worker: str
    expires_at: float
    keys: Set[str] = field(default_factory=set)


@dataclass
class SubmissionRecord:
    """One client submission: an ordered set of units plus progress state."""

    submission_id: str
    label: str
    keys: List[str] = field(default_factory=list)
    #: Grant queue; keys are lazily revalidated at grant time, so stale
    #: entries (completed or re-queued elsewhere) cost one skip each.
    pending: Deque[str] = field(default_factory=deque)
    completed: int = 0
    quarantined: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.keys)

    @property
    def done(self) -> bool:
        return self.completed + len(self.quarantined) >= self.total


@dataclass
class UnitEvent:
    """Outcome of one reclaim/failure transition, for the scheduler to act on."""

    key: str
    submission_id: str
    transition: str  # "requeued" | "quarantined"


class LeaseManager:
    """Tracks unit scheduling state across submissions, leases and retries.

    Parameters
    ----------
    lease_ttl:
        Seconds a lease stays valid without a heartbeat.
    max_attempts:
        Grants a unit may consume before it is quarantined as poisoned.
    backoff_base, backoff_cap:
        A re-queued unit becomes grantable again after
        ``min(backoff_cap, backoff_base * 2**(attempts - 1))`` seconds --
        capped exponential backoff per unit.
    """

    def __init__(
        self,
        lease_ttl: float = 15.0,
        max_attempts: int = 3,
        backoff_base: float = 0.25,
        backoff_cap: float = 10.0,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.units: Dict[str, UnitRecord] = {}
        self.leases: Dict[str, Lease] = {}
        self.submissions: Dict[str, SubmissionRecord] = {}
        self._order: Deque[str] = deque()
        self._lease_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Submissions
    # ------------------------------------------------------------------
    def add_submission(
        self, submission_id: str, label: str, units: List[UnitRecord]
    ) -> SubmissionRecord:
        if submission_id in self.submissions:
            raise ValueError(f"duplicate submission id {submission_id!r}")
        if not units:
            raise ValueError("a submission needs at least one unit")
        record = SubmissionRecord(submission_id=submission_id, label=label)
        for unit in units:
            if unit.key in self.units:
                raise ValueError(f"duplicate unit key {unit.key!r}")
            unit.submission_id = submission_id
            self.units[unit.key] = unit
            record.keys.append(unit.key)
            record.pending.append(unit.key)
        self.submissions[submission_id] = record
        self._order.append(submission_id)
        return record

    def cancel_submission(self, submission_id: str) -> int:
        """Drop a submission (client went away); returns units discarded.

        Leased units keep running on their workers; their eventual results
        arrive for an unknown key and are dropped.  Unit records are freed
        so scheduler memory stays bounded by *active* work.
        """
        record = self.submissions.pop(submission_id, None)
        if record is None:
            return 0
        try:
            self._order.remove(submission_id)
        except ValueError:
            pass
        dropped = 0
        for key in record.keys:
            unit = self.units.pop(key, None)
            if unit is None:
                continue
            if unit.lease_id is not None and unit.lease_id in self.leases:
                self.leases[unit.lease_id].keys.discard(key)
            dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # Granting
    # ------------------------------------------------------------------
    def grant(self, worker: str, capacity: int, now: float) -> Optional[Lease]:
        """Lease up to ``capacity`` grantable units to ``worker``.

        Fills round-robin across submissions (rotating the service order by
        one per grant) and returns ``None`` when nothing is grantable --
        either no pending units exist or all are sitting out a backoff.
        """
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        granted: List[UnitRecord] = []
        for _ in range(len(self._order)):
            submission = self.submissions[self._order[0]]
            pending = submission.pending
            deferred: List[str] = []
            while pending and len(granted) < capacity:
                key = pending.popleft()
                unit = self.units.get(key)
                if unit is None or unit.state is not UnitState.PENDING:
                    continue  # stale queue entry
                if unit.available_at > now:
                    deferred.append(key)  # backing off; keep for later
                    continue
                granted.append(unit)
            # Backed-off keys go back to the *front* in their original order:
            # a grant attempt that finds everything backing off must not churn
            # the queue (repeated empty grants would otherwise rotate units
            # behind later arrivals and perturb grant order).
            pending.extendleft(reversed(deferred))
            self._order.rotate(-1)
            if len(granted) >= capacity:
                break
        if not granted:
            return None
        lease = Lease(
            lease_id=f"lease-{next(self._lease_ids)}",
            worker=worker,
            expires_at=now + self.lease_ttl,
            keys={unit.key for unit in granted},
        )
        self.leases[lease.lease_id] = lease
        for unit in granted:
            unit.state = UnitState.LEASED
            unit.attempts += 1
            unit.lease_id = lease.lease_id
            unit.worker = worker
        return lease

    def next_available_in(self, now: float) -> Optional[float]:
        """Seconds until the earliest backed-off pending unit is grantable.

        ``None`` when no pending units exist at all; ``0.0`` when something
        is grantable right now.
        """
        horizon: Optional[float] = None
        for unit in self.units.values():
            if unit.state is not UnitState.PENDING:
                continue
            wait = max(0.0, unit.available_at - now)
            if horizon is None or wait < horizon:
                horizon = wait
            if horizon == 0.0:
                break
        return horizon

    # ------------------------------------------------------------------
    # Heartbeats and completion
    # ------------------------------------------------------------------
    def heartbeat(self, lease_id: str, now: float) -> bool:
        """Renew a lease; ``False`` if it no longer exists (expired/reclaimed)."""
        lease = self.leases.get(lease_id)
        if lease is None:
            return False
        lease.expires_at = now + self.lease_ttl
        return True

    def complete(self, key: str, worker: Optional[str] = None) -> str:
        """Record a unit completion: ``"accepted"``, ``"duplicate"`` or ``"unknown"``.

        First completion wins.  A completion for a unit currently leased to
        a *different* worker (the original lease expired and the unit was
        re-dispatched) is still accepted -- payloads are bit-identical, so
        finishing early saves the re-execution; the re-execution's own
        completion then lands as a duplicate.
        """
        unit = self.units.get(key)
        if unit is None:
            return "unknown"
        if unit.state is UnitState.COMPLETED:
            return "duplicate"
        if unit.state is UnitState.QUARANTINED:
            # A very late success on a unit already given up on: accept it,
            # un-quarantining -- a real result always beats a poison verdict.
            self.submissions[unit.submission_id].quarantined.remove(key)
        self._detach_from_lease(unit)
        unit.state = UnitState.COMPLETED
        unit.worker = worker
        submission = self.submissions[unit.submission_id]
        submission.completed += 1
        return "accepted"

    def fail(self, key: str, error: str, now: float, worker: Optional[str] = None) -> Optional[UnitEvent]:
        """Record a worker-reported unit failure; returns the transition.

        ``None`` when the failure is stale (unit unknown, already completed,
        or no longer leased to the reporting worker).
        """
        unit = self.units.get(key)
        if unit is None or unit.state is not UnitState.LEASED:
            return None
        if worker is not None and unit.worker != worker:
            return None
        unit.errors.append(error)
        self._detach_from_lease(unit)
        return self._requeue_or_quarantine(unit, now)

    def fail_lease(self, lease_id: str, reason: str, now: float) -> List[UnitEvent]:
        """Reclaim a whole lease the worker itself reported as failed.

        A worker whose heartbeat thread dies mid-batch cannot keep the lease
        alive, so it surrenders the lease explicitly instead of waiting for
        the TTL sweep to notice.  Stale ids (already expired or reclaimed)
        are a no-op, mirroring :meth:`heartbeat`.
        """
        return self._reclaim_lease(lease_id, now, reason)

    # ------------------------------------------------------------------
    # Reclaim paths
    # ------------------------------------------------------------------
    def release_worker(self, worker: str, now: float) -> List[UnitEvent]:
        """Reclaim every lease of a dead worker (connection dropped)."""
        events: List[UnitEvent] = []
        for lease_id in [
            lease_id for lease_id, lease in self.leases.items() if lease.worker == worker
        ]:
            events.extend(self._reclaim_lease(lease_id, now, f"worker {worker} died"))
        return events

    def reap_expired(self, now: float) -> Tuple[int, List[UnitEvent]]:
        """Reclaim every lease whose expiry has passed (hung worker).

        Returns ``(expired_lease_count, unit_events)``.
        """
        expired = [
            lease_id for lease_id, lease in self.leases.items() if lease.expires_at <= now
        ]
        events: List[UnitEvent] = []
        for lease_id in expired:
            worker = self.leases[lease_id].worker
            events.extend(
                self._reclaim_lease(lease_id, now, f"lease expired on worker {worker}")
            )
        return len(expired), events

    def _reclaim_lease(self, lease_id: str, now: float, reason: str) -> List[UnitEvent]:
        lease = self.leases.pop(lease_id, None)
        if lease is None:
            return []
        events: List[UnitEvent] = []
        for key in list(lease.keys):
            unit = self.units.get(key)
            if unit is None or unit.state is not UnitState.LEASED:
                continue
            unit.errors.append(reason)
            unit.requeues += 1
            unit.lease_id = None
            unit.worker = None
            event = self._requeue_or_quarantine(unit, now)
            if event is not None:
                events.append(event)
        return events

    def _requeue_or_quarantine(self, unit: UnitRecord, now: float) -> UnitEvent:
        submission = self.submissions[unit.submission_id]
        if unit.attempts >= self.max_attempts:
            unit.state = UnitState.QUARANTINED
            submission.quarantined.append(unit.key)
            return UnitEvent(unit.key, unit.submission_id, "quarantined")
        unit.state = UnitState.PENDING
        backoff = min(self.backoff_cap, self.backoff_base * (2 ** (unit.attempts - 1)))
        unit.available_at = now + backoff
        submission.pending.append(unit.key)
        return UnitEvent(unit.key, unit.submission_id, "requeued")

    def _detach_from_lease(self, unit: UnitRecord) -> None:
        if unit.lease_id is not None:
            lease = self.leases.get(unit.lease_id)
            if lease is not None:
                lease.keys.discard(unit.key)
                if not lease.keys:
                    del self.leases[unit.lease_id]
        unit.lease_id = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state_counts(self) -> Dict[str, int]:
        """Unit counts by state across all live submissions."""
        counts = {state.value: 0 for state in UnitState}
        for unit in self.units.values():
            counts[unit.state.value] += 1
        return counts

    def submission_view(self, submission_id: str) -> Dict[str, object]:
        """JSON-safe progress snapshot of one submission."""
        record = self.submissions[submission_id]
        leased = retried = 0
        for key in record.keys:
            unit = self.units.get(key)
            if unit is None:
                continue
            if unit.state is UnitState.LEASED:
                leased += 1
            if unit.attempts > 1:
                retried += 1
        return {
            "id": submission_id,
            "label": record.label,
            "total": record.total,
            "completed": record.completed,
            "leased": leased,
            "quarantined": len(record.quarantined),
            "retried_units": retried,
            "done": record.done,
        }
