"""The worker: pulls leased unit batches, executes them, streams results.

A :class:`ServiceWorker` is a synchronous pull loop -- the execution of one
work unit is CPU-bound simulator/chip code, so there is nothing to gain
from asyncio here.  While a batch executes, a daemon *heartbeat thread*
renews the lease over the shared (thread-safe) message stream; if the
worker process dies the heartbeats stop with it and the scheduler requeues
the lease's incomplete units.

Unit execution reuses :func:`repro.experiments.executors.execute_task`
verbatim -- the exact function behind ``SerialExecutor`` and
``ParallelExecutor`` -- which is what makes service results bit-identical
to local ones: same hermetic chip copies, same seeds, same payload code.
A unit that raises is reported as ``unit_failed`` (with its traceback) and
the scheduler decides between retry and quarantine.

Failures are never silent: unit exceptions and heartbeat-thread deaths are
logged through the module logger, and a lease whose heartbeat thread died
is surrendered explicitly (``lease_failed``) so the scheduler requeues its
incomplete units immediately instead of waiting out the lease TTL.
"""

from __future__ import annotations

import logging
import os
import threading
import time
import traceback
from typing import Optional

from repro.experiments.executors import execute_task
from repro.service import protocol

logger = logging.getLogger(__name__)


class ServiceWorker:
    """Executes work units leased from a scheduler.

    Parameters
    ----------
    host, port:
        Scheduler endpoint.
    name:
        Worker identity in telemetry; defaults to ``worker-<pid>``.
    batch_size:
        Units requested per lease.
    max_units:
        Stop after executing this many units (``None`` = run forever).
    max_idle_s:
        Stop after this long without being granted work (``None`` = never);
        lets smoke-test fleets drain and exit by themselves.
    stop_event:
        Optional :class:`threading.Event` checked between units, for
        embedding a worker in a host process.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: Optional[str] = None,
        batch_size: int = 2,
        max_units: Optional[int] = None,
        max_idle_s: Optional[float] = None,
        stop_event: Optional[threading.Event] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.host = host
        self.port = port
        self.name = name or f"worker-{os.getpid()}"
        self.batch_size = batch_size
        self.max_units = max_units
        self.max_idle_s = max_idle_s
        self.stop_event = stop_event or threading.Event()
        self.units_done = 0
        self.units_failed = 0
        #: Leases surrendered because their heartbeat thread died.
        self.heartbeat_failures = 0

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Pull-execute-report until stopped; returns units completed."""
        stream = protocol.connect_stream(self.host, self.port)
        try:
            stream.send(protocol.hello("worker", self.name))
            ack = stream.recv()
            if ack is None or ack.get("type") != "hello_ack":
                raise protocol.ProtocolError(f"bad handshake reply: {ack!r}")
            idle_since: Optional[float] = None
            while not self.stop_event.is_set():
                stream.send({"type": "lease_request", "capacity": self.batch_size})
                message = stream.recv()
                if message is None:
                    break  # scheduler went away; exit cleanly
                kind = message.get("type")
                if kind == "no_work":
                    now = time.monotonic()
                    idle_since = idle_since if idle_since is not None else now
                    if (
                        self.max_idle_s is not None
                        and now - idle_since >= self.max_idle_s
                    ):
                        break
                    if self.stop_event.wait(float(message.get("retry_in") or 0.5)):
                        break
                    continue
                if kind != "lease_grant":
                    raise protocol.ProtocolError(f"expected lease_grant, got {kind!r}")
                idle_since = None
                self._run_lease(stream, message)
                if self.max_units is not None and self.units_done >= self.max_units:
                    break
            try:
                stream.send({"type": "goodbye"})
            except OSError:
                pass
        finally:
            stream.close()
        return self.units_done

    # ------------------------------------------------------------------
    def _run_lease(self, stream: protocol.MessageStream, grant: dict) -> None:
        lease_id = grant["lease_id"]
        expires_in = float(grant.get("expires_in") or 15.0)
        stop_heartbeat = threading.Event()
        heartbeat_failed = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(stream, lease_id, max(0.05, expires_in / 3), stop_heartbeat,
                  heartbeat_failed),
            name=f"{self.name}-heartbeat",
            daemon=True,
        )
        beat.start()
        try:
            for unit in grant["units"]:
                if self.stop_event.is_set():
                    break
                self._run_unit(stream, lease_id, unit)
        finally:
            stop_heartbeat.set()
            beat.join(timeout=2.0)
            if heartbeat_failed.is_set():
                # The lease may have silently lapsed mid-batch.  Surrender it
                # explicitly so the scheduler requeues incomplete units now
                # rather than after the TTL sweep; best effort -- the same
                # broken stream may refuse the message too.
                self.heartbeat_failures += 1
                logger.warning(
                    "worker %s surrendering lease %s: heartbeat thread died",
                    self.name, lease_id,
                )
                try:
                    stream.send(
                        {
                            "type": "lease_failed",
                            "lease_id": lease_id,
                            "error": "heartbeat thread died",
                        }
                    )
                except OSError:
                    pass

    def _run_unit(self, stream: protocol.MessageStream, lease_id: str, unit: dict) -> None:
        key = unit["key"]
        try:
            task = protocol.unpack_blob(unit["task"])
            started = time.perf_counter()
            outcome = execute_task(task)
            elapsed = time.perf_counter() - started
        except Exception:
            self.units_failed += 1
            logger.exception("worker %s: unit %s raised", self.name, key)
            stream.send(
                {
                    "type": "unit_failed",
                    "lease_id": lease_id,
                    "key": key,
                    "error": traceback.format_exc(limit=20),
                }
            )
            return
        self.units_done += 1
        stream.send(
            {
                "type": "unit_result",
                "lease_id": lease_id,
                "key": key,
                "elapsed_s": elapsed,
                "outcome": protocol.pack_blob(outcome),
            }
        )

    @staticmethod
    def _heartbeat_loop(
        stream: protocol.MessageStream,
        lease_id: str,
        interval: float,
        stop: threading.Event,
        failed: threading.Event,
    ) -> None:
        """Renew ``lease_id`` until told to stop; flag ``failed`` on death.

        Any exit other than a clean stop sets ``failed`` so the lease holder
        knows renewals ceased -- a silently dead heartbeat thread would let
        the lease expire while the batch is still running.
        """
        try:
            while not stop.wait(interval):
                try:
                    stream.send({"type": "heartbeat", "lease_id": lease_id})
                except OSError as exc:
                    failed.set()
                    logger.warning(
                        "heartbeat for lease %s stopped: stream closed (%s)",
                        lease_id, exc,
                    )
                    return
        except Exception:
            failed.set()
            logger.exception("heartbeat thread for lease %s crashed", lease_id)
