"""Live scheduler observability with bounded memory.

The scheduler answers ``status_request`` messages from a snapshot built
here: monotonically increasing counters (units, leases, retries,
quarantines), per-worker liveness, and *streaming* aggregate statistics of
unit execution times.  At fleet scale a sweep completes millions of units,
so per-unit samples cannot be kept: :class:`StreamingStats` holds exact
count/mean/min/max plus a fixed-size uniform reservoir, and summarises the
reservoir through :func:`repro.utils.stats.box_stats` -- the same
box-and-whisker shape the paper uses for its distributions -- keeping
scheduler memory O(reservoir), not O(units).
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.utils.stats import box_stats


class StreamingStats:
    """Exact moments plus a bounded uniform sample of a value stream.

    Uses Vitter's reservoir sampling (Algorithm R): after ``n`` adds, each
    of the ``n`` values has probability ``capacity / n`` of being in the
    reservoir, so quantiles computed from it estimate the full stream.
    ``count``/``mean``/``min``/``max`` stay exact.  The RNG is seeded, so a
    given insertion order always produces the same snapshot.
    """

    def __init__(self, capacity: int = 512, seed: int = 2020) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._reservoir: list = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._reservoir[slot] = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def snapshot(self) -> Optional[Dict[str, object]]:
        """JSON-safe summary; ``None`` before the first value."""
        if self.count == 0:
            return None
        box = box_stats(self._reservoir)
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "sampled": len(self._reservoir),
            "p25": box.first_quartile,
            "p50": box.median,
            "p75": box.third_quartile,
            "whisker_low": box.lower_whisker,
            "whisker_high": box.upper_whisker,
        }


@dataclass
class WorkerView:
    """Liveness and contribution of one worker connection."""

    name: str
    connected_at: float
    last_seen: float
    state: str = "alive"  # "alive" | "dead"
    units_completed: int = 0
    units_failed: int = 0
    leases_granted: int = 0


@dataclass
class SchedulerTelemetry:
    """Counters, worker liveness and streaming stats behind ``/status``.

    All times are ``time.monotonic()`` values fed in by the scheduler, so
    snapshots report ages (seconds since) rather than wall-clock stamps.
    """

    started_at: float = field(default_factory=time.monotonic)
    counters: Dict[str, int] = field(
        default_factory=lambda: {
            "submissions_opened": 0,
            "submissions_completed": 0,
            "submissions_cancelled": 0,
            "units_submitted": 0,
            "units_completed": 0,
            "units_failed": 0,
            "units_requeued": 0,
            "units_quarantined": 0,
            "duplicate_completions": 0,
            "unknown_completions": 0,
            "leases_granted": 0,
            "leases_expired": 0,
            "leases_released": 0,
            "leases_failed": 0,
            "heartbeats": 0,
        }
    )
    workers: Dict[str, WorkerView] = field(default_factory=dict)
    unit_seconds: StreamingStats = field(default_factory=StreamingStats)
    #: Completion stamps of the most recent units, for a windowed rate.
    _recent: Deque[float] = field(default_factory=lambda: deque(maxlen=256))

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] += amount

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def worker_connected(self, name: str, now: float) -> None:
        self.workers[name] = WorkerView(name=name, connected_at=now, last_seen=now)

    def worker_seen(self, name: str, now: float) -> None:
        view = self.workers.get(name)
        if view is not None:
            view.last_seen = now

    def worker_dead(self, name: str, now: float) -> None:
        view = self.workers.get(name)
        if view is not None:
            view.state = "dead"
            view.last_seen = now

    def unit_completed(self, worker: Optional[str], elapsed_s: float, now: float) -> None:
        self.bump("units_completed")
        self.unit_seconds.add(elapsed_s)
        self._recent.append(now)
        if worker is not None and worker in self.workers:
            self.workers[worker].units_completed += 1

    def unit_failed(self, worker: Optional[str], now: float) -> None:
        self.bump("units_failed")
        if worker is not None and worker in self.workers:
            self.workers[worker].units_failed += 1

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def throughput(self, now: float) -> Dict[str, Optional[float]]:
        """Overall and recent-window completion rates (units/second)."""
        elapsed = max(now - self.started_at, 1e-9)
        overall = self.counters["units_completed"] / elapsed
        recent: Optional[float] = None
        if len(self._recent) >= 2:
            window = max(now - self._recent[0], 1e-9)
            recent = len(self._recent) / window
        return {"overall_units_per_s": overall, "recent_units_per_s": recent}

    def status(self, now: float) -> Dict[str, object]:
        """JSON-safe telemetry block of the scheduler status reply."""
        return {
            "uptime_s": now - self.started_at,
            "counters": dict(self.counters),
            "throughput": self.throughput(now),
            "unit_seconds": self.unit_seconds.snapshot(),
            "workers": {
                name: {
                    "state": view.state,
                    "connected_for_s": now - view.connected_at,
                    "last_seen_s_ago": now - view.last_seen,
                    "units_completed": view.units_completed,
                    "units_failed": view.units_failed,
                    "leases_granted": view.leases_granted,
                }
                for name, view in self.workers.items()
            },
        }
