"""The asyncio scheduler: accepts submissions, leases units, merges results.

One :class:`SchedulerServer` serves every peer kind over the same ndjson
port (see :mod:`repro.service.protocol`): *clients* submit batches of
pickled :class:`~repro.experiments.executors.StudyTask` units and receive
each unit's outcome as it completes, *workers* pull unit batches under
leases and push results/failures back, and anyone may ask for a ``status``
snapshot.  Fault tolerance lives in :class:`~repro.service.leases.LeaseManager`;
this module wires it to connections, timers, telemetry and the result
store:

* a worker connection dropping releases its leases immediately (fast
  re-dispatch);
* a periodic sweep reaps expired leases of *hung-but-connected* workers
  and finalizes submissions whose last unit just quarantined;
* completed units are optionally checkpointed into a scheduler-side
  :class:`~repro.experiments.store.ResultStore` (advisory-locked, so a
  local session may share the directory) before being forwarded to the
  submitting client.

:class:`SchedulerThread` hosts a server on a background event-loop thread
for in-process use -- loopback tests, benchmarks and the bundled example
stand up a full scheduler this way in a few lines.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.service import protocol
from repro.service.leases import LeaseManager, UnitEvent, UnitRecord
from repro.service.telemetry import SchedulerTelemetry


class Connection:
    """One accepted peer connection with serialized writes.

    Unit completions are pushed to a client from whichever *worker*
    connection handler received them, so writes to one peer can originate
    from several coroutines; the per-connection lock keeps frames whole.
    """

    _ids = itertools.count(1)

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.name = f"conn-{next(self._ids)}"
        self.role = "unknown"
        self._write_lock = asyncio.Lock()
        self.closed = False

    async def send(self, message: Dict[str, Any]) -> bool:
        """Write one message; ``False`` (never an exception) if the peer is gone."""
        if self.closed:
            return False
        data = protocol.encode_message(message)
        try:
            async with self._write_lock:
                self.writer.write(data)
                await self.writer.drain()
            return True
        except (ConnectionError, RuntimeError, OSError):
            self.closed = True
            return False

    async def recv(self) -> Optional[Dict[str, Any]]:
        """Read one message; ``None`` when the peer closed the connection."""
        try:
            line = await self.reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError, OSError):
            return None
        if not line:
            return None
        return protocol.decode_message(line)

    async def close(self) -> None:
        self.closed = True
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


class _Submission:
    """Scheduler-side client bookkeeping for one submission."""

    def __init__(self, submission_id: str, client: Connection) -> None:
        self.submission_id = submission_id
        self.client = client
        self.finished = False


class SchedulerServer:
    """Serves study submissions to a worker fleet with leased dispatch.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`address` after :meth:`start`).
    lease_ttl, max_attempts, backoff_base, backoff_cap:
        Fault-tolerance knobs, passed to
        :class:`~repro.service.leases.LeaseManager`.
    store:
        Optional :class:`~repro.experiments.store.ResultStore`; completed
        units that carry cache metadata are checkpointed into it as they
        arrive, so a local session pointed at the same directory replays
        a service run for free.
    default_batch:
        Units granted when a worker does not state a capacity.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        lease_ttl: float = 15.0,
        max_attempts: int = 3,
        backoff_base: float = 0.25,
        backoff_cap: float = 10.0,
        store: Optional[Any] = None,
        default_batch: int = 2,
    ) -> None:
        self.host = host
        self.port = port
        self.manager = LeaseManager(
            lease_ttl=lease_ttl,
            max_attempts=max_attempts,
            backoff_base=backoff_base,
            backoff_cap=backoff_cap,
        )
        self.telemetry = SchedulerTelemetry()
        self.store = store
        self.default_batch = default_batch
        self._submissions: Dict[str, _Submission] = {}
        self._submission_ids = itertools.count(1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._sweep_task: Optional[asyncio.Task] = None
        self._stopping = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        return (self.host, self.port)

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        interval = min(1.0, self.manager.lease_ttl / 4)
        self._sweep_task = asyncio.create_task(self._sweep_loop(interval))
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._stopping.wait()

    async def stop(self) -> None:
        if self._sweep_task is not None:
            self._sweep_task.cancel()
            try:
                await self._sweep_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Set last: serve_forever (and the hosting thread's loop) must only
        # unblock once the listener and sweeper are fully torn down.
        self._stopping.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = Connection(reader, writer)
        try:
            try:
                hello = protocol.check_hello(await conn.recv(), ("client", "worker"))
            except protocol.ProtocolError as exc:
                await conn.send({"type": "error", "error": str(exc)})
                return
            conn.role = hello["role"]
            if hello.get("name"):
                conn.name = str(hello["name"])
            now = time.monotonic()
            if conn.role == "worker":
                self.telemetry.worker_connected(conn.name, now)
            await conn.send(
                {
                    "type": "hello_ack",
                    "protocol": protocol.PROTOCOL_VERSION,
                    "lease_ttl": self.manager.lease_ttl,
                }
            )
            while True:
                message = await conn.recv()
                if message is None:
                    break
                try:
                    await self._dispatch(conn, message)
                except protocol.ProtocolError as exc:
                    await conn.send({"type": "error", "error": str(exc)})
                    break
        finally:
            await self._connection_lost(conn)
            await conn.close()

    async def _dispatch(self, conn: Connection, message: Dict[str, Any]) -> None:
        kind = message.get("type")
        if kind == "status_request":
            await conn.send({"type": "status_reply", "status": self.status()})
        elif kind == "submit" and conn.role == "client":
            await self._handle_submit(conn, message)
        elif kind == "lease_request" and conn.role == "worker":
            await self._handle_lease_request(conn, message)
        elif kind == "heartbeat" and conn.role == "worker":
            self.telemetry.bump("heartbeats")
            self.telemetry.worker_seen(conn.name, time.monotonic())
            self.manager.heartbeat(str(message.get("lease_id")), time.monotonic())
        elif kind == "unit_result" and conn.role == "worker":
            await self._handle_unit_result(conn, message)
        elif kind == "unit_failed" and conn.role == "worker":
            await self._handle_unit_failed(conn, message)
        elif kind == "lease_failed" and conn.role == "worker":
            await self._handle_lease_failed(conn, message)
        elif kind == "goodbye":
            raise protocol.ProtocolError("peer said goodbye")  # clean close path
        else:
            raise protocol.ProtocolError(f"unexpected {kind!r} from a {conn.role}")

    async def _connection_lost(self, conn: Connection) -> None:
        now = time.monotonic()
        if conn.role == "worker":
            events = self.manager.release_worker(conn.name, now)
            if events:
                self.telemetry.bump("leases_released")
            self.telemetry.worker_dead(conn.name, now)
            await self._apply_unit_events(events)
        elif conn.role == "client":
            for sid, submission in list(self._submissions.items()):
                if submission.client is conn and not submission.finished:
                    dropped = self.manager.cancel_submission(sid)
                    if dropped:
                        self.telemetry.bump("submissions_cancelled")
                    del self._submissions[sid]

    # ------------------------------------------------------------------
    # Client messages
    # ------------------------------------------------------------------
    async def _handle_submit(self, conn: Connection, message: Dict[str, Any]) -> None:
        units_spec = message.get("units")
        if not isinstance(units_spec, list) or not units_spec:
            raise protocol.ProtocolError("submit carries no units")
        submission_id = f"sub-{next(self._submission_ids)}"
        label = str(message.get("label") or "unlabelled")
        records: List[UnitRecord] = []
        for spec in units_spec:
            records.append(
                UnitRecord(
                    key=str(spec["key"]),
                    submission_id=submission_id,
                    index=int(spec["index"]),
                    unit_digest=str(spec.get("unit_digest", "")),
                    task_blob=spec["task"],
                    cache=spec.get("cache"),
                )
            )
        self.manager.add_submission(submission_id, label, records)
        self._submissions[submission_id] = _Submission(submission_id, conn)
        self.telemetry.bump("submissions_opened")
        self.telemetry.bump("units_submitted", len(records))
        await conn.send(
            {
                "type": "submit_ack",
                "submission_id": submission_id,
                "client_id": message.get("submission_id"),
                "units": len(records),
            }
        )

    # ------------------------------------------------------------------
    # Worker messages
    # ------------------------------------------------------------------
    async def _handle_lease_request(self, conn: Connection, message: Dict[str, Any]) -> None:
        now = time.monotonic()
        self.telemetry.worker_seen(conn.name, now)
        capacity = int(message.get("capacity") or self.default_batch)
        # Backoff gate: when every pending unit is sitting out a backoff,
        # answer with the exact wait instead of attempting a grant -- the
        # attempt could not succeed and would only churn the pending queues.
        wait = self.manager.next_available_in(now)
        if wait is not None and wait > 0.0:
            await conn.send({"type": "no_work", "retry_in": max(0.05, min(wait, 5.0))})
            return
        lease = self.manager.grant(conn.name, max(1, capacity), now)
        if lease is None:
            retry_in = 0.5 if wait is None else max(0.05, min(wait, 5.0))
            await conn.send({"type": "no_work", "retry_in": retry_in})
            return
        self.telemetry.bump("leases_granted")
        view = self.telemetry.workers.get(conn.name)
        if view is not None:
            view.leases_granted += 1
        await conn.send(
            {
                "type": "lease_grant",
                "lease_id": lease.lease_id,
                "expires_in": self.manager.lease_ttl,
                "units": [
                    {"key": key, "task": self.manager.units[key].task_blob}
                    for key in sorted(lease.keys, key=lambda k: self.manager.units[k].index)
                ],
            }
        )

    async def _handle_unit_result(self, conn: Connection, message: Dict[str, Any]) -> None:
        now = time.monotonic()
        self.telemetry.worker_seen(conn.name, now)
        key = str(message.get("key"))
        unit = self.manager.units.get(key)
        verdict = self.manager.complete(key, worker=conn.name)
        if verdict == "duplicate":
            self.telemetry.bump("duplicate_completions")
            return
        if verdict == "unknown":
            self.telemetry.bump("unknown_completions")
            return
        assert unit is not None
        elapsed = float(message.get("elapsed_s") or 0.0)
        self.telemetry.unit_completed(conn.name, elapsed, now)
        self._checkpoint(unit, message["outcome"])
        submission = self._submissions.get(unit.submission_id)
        if submission is not None:
            await submission.client.send(
                {
                    "type": "unit_complete",
                    "submission_id": submission.submission_id,
                    "key": key,
                    "index": unit.index,
                    "attempts": unit.attempts,
                    "requeues": unit.requeues,
                    "elapsed_s": elapsed,
                    "outcome": message["outcome"],
                }
            )
            await self._finish_if_done(unit.submission_id)

    async def _handle_unit_failed(self, conn: Connection, message: Dict[str, Any]) -> None:
        now = time.monotonic()
        self.telemetry.worker_seen(conn.name, now)
        self.telemetry.unit_failed(conn.name, now)
        event = self.manager.fail(
            str(message.get("key")), str(message.get("error") or "unit failed"),
            now, worker=conn.name,
        )
        if event is not None:
            await self._apply_unit_events([event])

    async def _handle_lease_failed(self, conn: Connection, message: Dict[str, Any]) -> None:
        """A worker surrendered a whole lease (its heartbeat thread died)."""
        now = time.monotonic()
        self.telemetry.worker_seen(conn.name, now)
        events = self.manager.fail_lease(
            str(message.get("lease_id")),
            str(message.get("error") or "lease failed"),
            now,
        )
        if events:
            self.telemetry.bump("leases_failed")
            await self._apply_unit_events(events)

    # ------------------------------------------------------------------
    # Shared transitions
    # ------------------------------------------------------------------
    def _checkpoint(self, unit: UnitRecord, outcome_blob: str) -> None:
        """Write one completed unit into the scheduler-side result store."""
        if self.store is None or not unit.cache:
            return
        from repro.experiments.store import CacheKey  # local: keep import cheap

        outcome = protocol.unpack_blob(outcome_blob)
        self.store.put(CacheKey(**unit.cache), outcome.result)

    async def _apply_unit_events(self, events: List[UnitEvent]) -> None:
        """Propagate requeue/quarantine transitions to telemetry and clients."""
        touched: List[str] = []
        for event in events:
            if event.transition == "requeued":
                self.telemetry.bump("units_requeued")
                continue
            self.telemetry.bump("units_quarantined")
            touched.append(event.submission_id)
            submission = self._submissions.get(event.submission_id)
            unit = self.manager.units.get(event.key)
            if submission is not None and unit is not None:
                await submission.client.send(
                    {
                        "type": "unit_quarantined",
                        "submission_id": event.submission_id,
                        "key": event.key,
                        "index": unit.index,
                        "attempts": unit.attempts,
                        "errors": unit.errors[-self.manager.max_attempts :],
                    }
                )
        for submission_id in dict.fromkeys(touched):
            await self._finish_if_done(submission_id)

    async def _finish_if_done(self, submission_id: str) -> None:
        record = self.manager.submissions.get(submission_id)
        submission = self._submissions.get(submission_id)
        if record is None or submission is None or submission.finished:
            return
        if not record.done:
            return
        submission.finished = True
        self.telemetry.bump("submissions_completed")
        await submission.client.send(
            {
                "type": "submission_done",
                "submission_id": submission_id,
                "completed": record.completed,
                "quarantined": list(record.quarantined),
            }
        )

    async def _sweep_loop(self, interval: float) -> None:
        """Periodically reap expired leases (hung workers) and requeue units."""
        while True:
            await asyncio.sleep(interval)
            expired, events = self.manager.reap_expired(time.monotonic())
            if expired:
                self.telemetry.bump("leases_expired", expired)
            if events:
                await self._apply_unit_events(events)

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """The JSON document behind the ``status`` endpoint."""
        now = time.monotonic()
        status = {
            "service": "repro.service",
            "protocol": protocol.PROTOCOL_VERSION,
            "address": list(self.address),
            "lease_ttl": self.manager.lease_ttl,
            "max_attempts": self.manager.max_attempts,
            "unit_states": self.manager.state_counts(),
            "submissions": [
                self.manager.submission_view(sid)
                for sid in self.manager.submissions
            ],
            "store": repr(self.store) if self.store is not None else None,
        }
        status.update(self.telemetry.status(now))
        return status


class SchedulerThread:
    """Host a :class:`SchedulerServer` on a daemon event-loop thread.

    >>> from repro.service import SchedulerThread
    >>> with SchedulerThread() as scheduler:
    ...     host, port = scheduler.address
    """

    def __init__(self, **kwargs: Any) -> None:
        self._kwargs = kwargs
        self.server: Optional[SchedulerServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._failure: Optional[BaseException] = None

    @property
    def address(self) -> Tuple[str, int]:
        assert self.server is not None, "scheduler thread not started"
        return self.server.address

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-service-scheduler", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("scheduler thread failed to start in time")
        if self._failure is not None:
            raise RuntimeError("scheduler thread failed to start") from self._failure
        return self.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self.server = SchedulerServer(**self._kwargs)

        async def main() -> None:
            try:
                await self.server.start()
            except BaseException as exc:  # bind failures surface in start()
                self._failure = exc
                self._started.set()
                return
            self._started.set()
            await self.server.serve_forever()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def stop(self) -> None:
        if self._loop is None or self.server is None:
            return

        async def shutdown() -> None:
            await self.server.stop()

        try:
            asyncio.run_coroutine_threadsafe(shutdown(), self._loop).result(timeout=10.0)
        except Exception:  # pragma: no cover - teardown best effort
            pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def __enter__(self) -> "SchedulerThread":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
