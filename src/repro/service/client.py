"""Client-side protocol wrapper: submit unit batches, stream events, query status.

:class:`ServiceClient` is the thin synchronous counterpart of the
scheduler's client role.  It knows nothing about studies or executors --
it ships opaque unit dicts and yields back raw protocol events; the
order-restoring, outcome-unpickling logic lives in
:class:`repro.experiments.remote.ServiceExecutor`, which is the API almost
all code should use instead.
"""

from __future__ import annotations

import uuid
from typing import Any, Dict, Iterator, List, Optional

from repro.service import protocol


class SchedulerUnavailableError(ConnectionError):
    """The scheduler connection failed or dropped mid-submission."""


class PoisonedUnitError(RuntimeError):
    """One or more units were quarantined after exhausting their attempts.

    Carries the scheduler's quarantine reports (key, index, attempts and
    the recorded per-attempt errors) so the failure names the exact units
    -- and exceptions -- that poisoned the study.
    """

    def __init__(self, label: str, reports: List[Dict[str, Any]]) -> None:
        self.label = label
        self.reports = list(reports)
        keys = ", ".join(str(report.get("key")) for report in self.reports)
        detail = ""
        if self.reports:
            errors = self.reports[0].get("errors") or []
            if errors:
                detail = f"; first error:\n{errors[-1]}"
        super().__init__(
            f"{len(self.reports)} unit(s) of {label!r} were quarantined as "
            f"poisoned: {keys}{detail}"
        )


class ServiceClient:
    """One client connection to a scheduler.

    >>> with ServiceClient("127.0.0.1", 7075) as client:   # doctest: +SKIP
    ...     client.submit_units(units, label="fig10")
    ...     for event in client.events():
    ...         ...
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: Optional[str] = None,
        connect_timeout: float = 10.0,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name or f"client-{uuid.uuid4().hex[:8]}"
        self.connect_timeout = connect_timeout
        self._stream: Optional[protocol.MessageStream] = None
        self.lease_ttl: Optional[float] = None

    # ------------------------------------------------------------------
    def connect(self) -> None:
        if self._stream is not None:
            return
        try:
            stream = protocol.connect_stream(
                self.host, self.port, timeout=self.connect_timeout
            )
        except OSError as exc:
            raise SchedulerUnavailableError(
                f"cannot reach scheduler at {self.host}:{self.port}: {exc}"
            ) from exc
        stream.send(protocol.hello("client", self.name))
        ack = stream.recv()
        if ack is None or ack.get("type") != "hello_ack":
            stream.close()
            raise SchedulerUnavailableError(f"bad handshake reply: {ack!r}")
        self.lease_ttl = float(ack.get("lease_ttl") or 0.0)
        self._stream = stream

    def close(self) -> None:
        if self._stream is not None:
            try:
                self._stream.send({"type": "goodbye"})
            except OSError:
                pass
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def submit_units(self, units: List[Dict[str, Any]], label: str = "") -> str:
        """Submit one batch of unit dicts; returns the scheduler's submission id."""
        self.connect()
        assert self._stream is not None
        client_id = uuid.uuid4().hex
        self._stream.send(
            {
                "type": "submit",
                "submission_id": client_id,
                "label": label,
                "units": units,
            }
        )
        ack = self._recv()
        if ack.get("type") == "error":
            raise SchedulerUnavailableError(f"submit rejected: {ack.get('error')}")
        if ack.get("type") != "submit_ack" or ack.get("client_id") != client_id:
            raise protocol.ProtocolError(f"expected submit_ack, got {ack!r}")
        return str(ack["submission_id"])

    def events(self) -> Iterator[Dict[str, Any]]:
        """Yield submission events until (and including) ``submission_done``."""
        while True:
            message = self._recv()
            yield message
            if message.get("type") == "submission_done":
                return

    def status(self) -> Dict[str, Any]:
        """Fetch the scheduler's live status document."""
        self.connect()
        assert self._stream is not None
        self._stream.send({"type": "status_request"})
        reply = self._recv()
        if reply.get("type") != "status_reply":
            raise protocol.ProtocolError(f"expected status_reply, got {reply!r}")
        return reply["status"]

    def _recv(self) -> Dict[str, Any]:
        assert self._stream is not None, "client is not connected"
        message = self._stream.recv()
        if message is None:
            self._stream = None
            raise SchedulerUnavailableError(
                f"scheduler at {self.host}:{self.port} closed the connection"
            )
        return message


def fetch_status(host: str, port: int, timeout: float = 10.0) -> Dict[str, Any]:
    """One-shot status query (the ``python -m repro.service status`` backend)."""
    with ServiceClient(host, port, connect_timeout=timeout) as client:
        return client.status()
