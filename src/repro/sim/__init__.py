"""Cycle-level DDR4 memory-system simulator with an event-driven fast path.

This package replaces the paper's Ramulator + SPEC CPU2006 setup (Table 6)
with a pure-Python equivalent:

* :mod:`repro.sim.config` -- the simulated system configuration (Table 6).
* :mod:`repro.sim.timing` -- DDR4 timing parameters in DRAM-bus cycles.
* :mod:`repro.sim.requests` -- memory requests and their life cycle.
* :mod:`repro.sim.bank` -- per-bank and per-rank timing state machines.
* :mod:`repro.sim.controller` -- FR-FCFS memory controller with refresh and
  RowHammer-mitigation hooks.
* :mod:`repro.sim.core` -- the simple out-of-order-window core model.
* :mod:`repro.sim.trace` -- synthetic memory-access trace generation.
* :mod:`repro.sim.workloads` -- SPEC-like benchmark profiles and the 8-core
  workload mixes used in the evaluation.
* :mod:`repro.sim.metrics` -- weighted speedup and bandwidth-overhead metrics.
* :mod:`repro.sim.system` -- the top-level multi-core simulation harness.

Execution model
---------------
A :class:`~repro.sim.system.Simulation` runs in one of two bit-identical
step modes:

* ``step_mode="cycle"`` -- the reference implementation ticks the controller
  and every core at every DRAM cycle, scheduling by scanning the request
  queues directly.  It is the oracle the fast path is validated against
  (``tests/sim/test_golden_trace.py``).
* ``step_mode="event"`` (default) -- the event-driven fast path.  All state
  changes happen at *events*: command issues, read-data completions,
  periodic refreshes, and trace injections by the cores.  Each component
  exposes a ``next_event_cycle()`` horizon -- :class:`~repro.sim.bank.BankState`
  offers the bank-level primitive over its command timers (the controller
  computes tighter per-request bounds from mirrored copies of the same
  timers), :class:`~repro.sim.controller.MemoryController` folds those
  bounds with rank constraints, the refresh schedule, pending completions
  and any mitigation timer, and :class:`~repro.sim.core.SimpleCore` reports
  its bubble budget and stall state -- and the loop jumps the clock straight
  to the minimum, accounting the skipped cycles in bulk.

Adding a mitigation timer to the horizon
----------------------------------------
Mechanisms that act only inside ``on_activate``/``on_refresh`` need no extra
work: activations and refresh commands are already events.  A mechanism that
schedules autonomous work at a cycle of its own choosing (say, a background
scrubber) must override
:meth:`repro.mitigations.base.MitigationMechanism.next_event_cycle` to
return that cycle; the controller folds it into every horizon it reports,
so the fast-forward can never jump over the timer.  The hook guarantees the
timer cycle is processed, not that the mechanism is invoked there -- an
autonomous mechanism also needs a dispatch path in the controller's ``tick``
and ``tick_reference`` (see the hook's docstring).
"""

from repro.sim.config import SystemConfig
from repro.sim.timing import DramTimings, DDR4_2400
from repro.sim.requests import MemoryRequest, RequestType
from repro.sim.controller import MemoryController, ControllerStats
from repro.sim.core import SimpleCore
from repro.sim.trace import SyntheticTraceGenerator, TraceRecord
from repro.sim.workloads import BenchmarkProfile, SPEC_LIKE_BENCHMARKS, make_workload_mixes
from repro.sim.metrics import weighted_speedup, normalized_performance
from repro.sim.system import Simulation, SimulationResult

__all__ = [
    "SystemConfig",
    "DramTimings",
    "DDR4_2400",
    "MemoryRequest",
    "RequestType",
    "MemoryController",
    "ControllerStats",
    "SimpleCore",
    "SyntheticTraceGenerator",
    "TraceRecord",
    "BenchmarkProfile",
    "SPEC_LIKE_BENCHMARKS",
    "make_workload_mixes",
    "weighted_speedup",
    "normalized_performance",
    "Simulation",
    "SimulationResult",
]
