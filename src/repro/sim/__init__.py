"""Cycle-level DDR4 memory-system simulator with two fast execution paths.

This package replaces the paper's Ramulator + SPEC CPU2006 setup (Table 6)
with a pure-Python equivalent:

* :mod:`repro.sim.config` -- the simulated system configuration (Table 6).
* :mod:`repro.sim.timing` -- DDR4 timing parameters in DRAM-bus cycles.
* :mod:`repro.sim.requests` -- memory requests and their life cycle.
* :mod:`repro.sim.events` -- the indexed :class:`~repro.sim.events.EventQueue`
  (schedule / reschedule / cancel, deterministic FIFO tie-breaking) the
  event-driven run loop drains.
* :mod:`repro.sim.bank` -- per-bank and per-rank timing state machines.
* :mod:`repro.sim.controller` -- FR-FCFS memory controller with refresh and
  RowHammer-mitigation hooks, scheduling over indexed per-bank buckets.
* :mod:`repro.sim.core` -- the simple out-of-order-window core model.
* :mod:`repro.sim.trace` -- synthetic memory-access trace generation.
* :mod:`repro.sim.workloads` -- SPEC-like benchmark profiles and the 8-core
  workload mixes used in the evaluation.
* :mod:`repro.sim.metrics` -- weighted speedup and bandwidth-overhead metrics.
* :mod:`repro.sim.system` -- the top-level multi-core simulation harness.
* :mod:`repro.sim.batch` / :mod:`repro.sim.kernel` -- sim-major batched
  runs: many independent simulations stepped in lockstep through a numpy
  structure-of-arrays kernel.

Execution model
---------------
There are three ways to execute a simulation, all bit-identical (the
differential and golden suites enforce this per mechanism):

* ``Simulation(step_mode="cycle")`` -- the per-cycle scanning oracle;
* ``Simulation(step_mode="event")`` -- the event-queue fast path (the
  default, ~4-5x the oracle);
* ``SimulationBatch(..., backend="kernel")`` -- many simulations at once
  through the batch kernel (~5.5x the oracle at batch size 64; see
  ``docs/kernel_spike.md`` for why vectorization only pays *across*
  simulations).

Which path runs when
--------------------
A single :class:`~repro.sim.system.Simulation` picks between ``"cycle"``
and ``"event"`` via ``step_mode``; it never uses the kernel (numpy on one
controller's bank arrays is slower than the tuned scalar scan).  Grouped
runs -- the Figure 10 study's baselines, alone-IPC runs and grid cells --
go through :class:`~repro.sim.batch.SimulationBatch`, which uses the
kernel when :func:`repro.sim.kernel.kernel_enabled` allows (numpy
importable, ``REPRO_SIM_KERNEL`` not set to ``off``/``0``/``false``...)
and otherwise falls back to running each simulation through the event
path.  The fallback never raises and produces the same results, so
``REPRO_SIM_KERNEL=off`` doubles as a CI leg that re-pins every
kernel-parameterized test against the event path.

A :class:`~repro.sim.system.Simulation` runs in one of two bit-identical
step modes:

* ``step_mode="cycle"`` -- the reference implementation ticks the controller
  and every core at every DRAM cycle, scheduling by scanning the request
  queues directly.  It is the oracle the fast path is validated against
  (``tests/sim/test_golden_trace.py``).
* ``step_mode="event"`` (default) -- the event-queue fast path.  All state
  changes happen at *events*: command issues, read-data completions,
  periodic refreshes, mitigation timers, and trace injections by the cores.
  The run loop is keyed on one :class:`~repro.sim.events.EventQueue`:

  - The **memory controller**'s horizon is the byproduct of its quiescent
    tick.  Scheduling state is *indexed*, not scanned: per-bank FIFOs,
    per-(bank, row) hit buckets and flat head-of-index sequence mirrors
    give the FR-FCFS choice (and, on a failed scan, the earliest future
    issue opportunity) in O(banks with work), with no queue scans.  Bank
    and rank timer changes are pushed into flat mirrors at mutation time
    (:meth:`~repro.sim.controller.MemoryController._sync_bank`) rather
    than re-polled, and the quiet-horizon cache is lowered incrementally
    when cores enqueue new work instead of being thrown away.
  - Every **core** owns a *wake entry* in the queue: a lower bound on the
    next cycle it could interact with the memory system.  Entries are
    revalidated lazily when they surface below a prospective jump target,
    so cores deep in bubble budgets or long stalls are not re-polled each
    step.  Blocked cores carry no entry at all; the controller's wake
    *channels* (write-queue pop, read-queue pop, per-core read completion)
    revive exactly the cores the wake can unblock.

  The loop jumps the clock to the earliest confirmed event and accounts the
  skipped span in bulk (exact CPU-debt replay; batched stall/bubble/drain
  core ticks; deferred-stall settling flushed before the completions that
  could change window retirement).  Every counter in the resulting
  :class:`~repro.sim.system.SimulationResult` is bit-identical to
  ``"cycle"`` mode; the golden regression suite enforces this for every
  mitigation mechanism.

How a mitigation registers a timer event
----------------------------------------
Mechanisms that act only inside ``on_activate``/``on_refresh`` need no
extra work: activations and refresh commands are already events.  A
mechanism that schedules autonomous work at cycles of its own choosing
(say, a background scrubber) overrides
:meth:`repro.mitigations.base.MitigationMechanism.register_events`, keeps
the :class:`~repro.sim.controller.MitigationEventPort` it receives, and
calls ``port.schedule_timer(cycle)``; the controller then dispatches
:meth:`~repro.mitigations.base.MitigationMechanism.on_timer` at that cycle
in **both** step modes and folds the timer into every event horizon, so the
fast-forward can never jump over it.  Re-arm the (one-shot) timer from
inside ``on_timer`` for periodic work.

The legacy route -- overriding
:meth:`~repro.mitigations.base.MitigationMechanism.next_event_cycle` -- is
still honoured through a compat shim: such mechanisms are detected at
attach time and polled on every horizon computation, with the old contract
(the returned cycle is processed, dispatch is the mechanism's own
responsibility).  New code should prefer the port API: it is cheaper (no
per-tick poll) and the controller owns the dispatch.

How a mitigation stays kernel-compatible
----------------------------------------
The batch kernel never vectorizes mechanism code: controllers remain the
authoritative state and every ``on_activate`` / ``on_refresh`` /
``on_timer`` hook runs as ordinary scalar Python in oracle order, with
the per-simulation quiet horizon clamped to ``min(next_refresh,
earliest_completion, next_timer)`` so a fast-forward can never jump a
mechanism's event.  A mechanism is therefore kernel-compatible exactly
when it is event-compatible: interact with the simulation only through
the hook and :class:`~repro.sim.controller.MitigationEventPort` APIs
(plus ``mitigation_busy_cycles`` accounting), and never assume the
controller is ticked on every cycle.  All shipped mechanisms -- including
the RNG-driven (PARA) and timer-driven (scrubber) ones -- run unmodified
under all three paths.
"""

from repro.sim.config import SystemConfig
from repro.sim.timing import DramTimings, DDR4_2400
from repro.sim.requests import MemoryRequest, RequestType
from repro.sim.events import EventQueue, EventQueueStats, NEVER
from repro.sim.controller import ControllerStats, MemoryController, MitigationEventPort
from repro.sim.core import SimpleCore
from repro.sim.trace import SyntheticTraceGenerator, TraceRecord
from repro.sim.workloads import BenchmarkProfile, SPEC_LIKE_BENCHMARKS, make_workload_mixes
from repro.sim.metrics import weighted_speedup, normalized_performance
from repro.sim.system import Simulation, SimulationResult

__all__ = [
    "SystemConfig",
    "DramTimings",
    "DDR4_2400",
    "MemoryRequest",
    "RequestType",
    "EventQueue",
    "EventQueueStats",
    "NEVER",
    "MemoryController",
    "ControllerStats",
    "MitigationEventPort",
    "SimpleCore",
    "SyntheticTraceGenerator",
    "TraceRecord",
    "BenchmarkProfile",
    "SPEC_LIKE_BENCHMARKS",
    "make_workload_mixes",
    "weighted_speedup",
    "normalized_performance",
    "Simulation",
    "SimulationResult",
]
