"""Cycle-level DDR4 memory-system simulator.

This package replaces the paper's Ramulator + SPEC CPU2006 setup (Table 6)
with a pure-Python equivalent:

* :mod:`repro.sim.config` -- the simulated system configuration (Table 6).
* :mod:`repro.sim.timing` -- DDR4 timing parameters in DRAM-bus cycles.
* :mod:`repro.sim.requests` -- memory requests and their life cycle.
* :mod:`repro.sim.bank` -- per-bank and per-rank timing state machines.
* :mod:`repro.sim.controller` -- FR-FCFS memory controller with refresh and
  RowHammer-mitigation hooks.
* :mod:`repro.sim.core` -- the simple out-of-order-window core model.
* :mod:`repro.sim.trace` -- synthetic memory-access trace generation.
* :mod:`repro.sim.workloads` -- SPEC-like benchmark profiles and the 8-core
  workload mixes used in the evaluation.
* :mod:`repro.sim.metrics` -- weighted speedup and bandwidth-overhead metrics.
* :mod:`repro.sim.system` -- the top-level multi-core simulation harness.
"""

from repro.sim.config import SystemConfig
from repro.sim.timing import DramTimings, DDR4_2400
from repro.sim.requests import MemoryRequest, RequestType
from repro.sim.controller import MemoryController, ControllerStats
from repro.sim.core import SimpleCore
from repro.sim.trace import SyntheticTraceGenerator, TraceRecord
from repro.sim.workloads import BenchmarkProfile, SPEC_LIKE_BENCHMARKS, make_workload_mixes
from repro.sim.metrics import weighted_speedup, normalized_performance
from repro.sim.system import Simulation, SimulationResult

__all__ = [
    "SystemConfig",
    "DramTimings",
    "DDR4_2400",
    "MemoryRequest",
    "RequestType",
    "MemoryController",
    "ControllerStats",
    "SimpleCore",
    "SyntheticTraceGenerator",
    "TraceRecord",
    "BenchmarkProfile",
    "SPEC_LIKE_BENCHMARKS",
    "make_workload_mixes",
    "weighted_speedup",
    "normalized_performance",
    "Simulation",
    "SimulationResult",
]
