"""Sim-major batched simulation runs (the Figure 10 throughput path).

A :class:`SimulationBatch` runs many independent simulations of the *same*
system configuration -- the shape of the Figure 10 study, where every
(mechanism, HC_first, mix) cell is one simulation over the same Table 6
system -- and steps them in lockstep through the vectorized
:class:`~repro.sim.kernel.BatchKernel` when it is available.  Batching is
what makes vectorization pay: numpy on a single 16-bank controller is
slower than the tuned scalar scan (measured in ``docs/kernel_spike.md``),
but one array operation spanning all simulations' banks amortizes the
dispatch overhead away.

Backend selection
-----------------
``backend="auto"`` (the default) uses the kernel when
:func:`repro.sim.kernel.kernel_enabled` allows -- numpy importable and
``REPRO_SIM_KERNEL`` not set to ``off`` -- and otherwise falls back to
running each simulation through the pure-Python event path, never raising.
``backend="kernel"`` and ``backend="event"`` force the respective path
(``"kernel"`` still falls back to the event path when the kernel is
unavailable, so a forced-kernel call site degrades gracefully on a
numpy-less install).  Every backend produces bit-identical
:class:`~repro.sim.system.SimulationResult` lists; the differential and
golden suites pin all of them to the ``step_mode="cycle"`` oracle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.config import SystemConfig
from repro.sim.controller import MemoryController
from repro.sim.core import CoreStats
from repro.sim.kernel import BatchKernel, kernel_enabled
from repro.sim.system import Simulation, SimulationResult
from repro.sim.trace import TraceRecord

__all__ = ["SimulationBatch", "BATCH_BACKENDS"]

#: Valid values of the ``backend`` flag.
BATCH_BACKENDS = ("auto", "kernel", "event")


class SimulationBatch:
    """A batch of independent simulations sharing one system configuration.

    Parameters
    ----------
    config:
        The shared :class:`~repro.sim.config.SystemConfig`.
    trace_sets:
        One trace set per simulation; each trace set holds one trace per
        core (core counts may differ between simulations).
    mitigations:
        Optional list of per-simulation mitigation mechanism instances
        (``None`` entries run unmitigated).  Each simulation needs its own
        instance -- mechanisms carry per-run state -- matching how the
        mitigation study constructs them.
    backend:
        ``"auto"`` (default), ``"kernel"``, or ``"event"`` -- see the
        module docstring.
    """

    def __init__(
        self,
        config: SystemConfig,
        trace_sets: Sequence[Sequence[Sequence[TraceRecord]]],
        mitigations: Optional[Sequence] = None,
        backend: str = "auto",
    ) -> None:
        if backend not in BATCH_BACKENDS:
            raise ValueError(
                f"backend must be one of {BATCH_BACKENDS}, got {backend!r}"
            )
        if not trace_sets:
            raise ValueError("at least one simulation is required")
        if mitigations is None:
            mitigations = [None] * len(trace_sets)
        if len(mitigations) != len(trace_sets):
            raise ValueError("one mitigation entry per simulation (or None)")
        for traces in trace_sets:
            if not traces:
                raise ValueError("every simulation needs at least one core trace")
        self.config = config
        self.trace_sets = [list(traces) for traces in trace_sets]
        self.mitigations = list(mitigations)
        #: The backend that will actually execute (fallback already applied).
        self.backend = (
            "kernel" if backend in ("auto", "kernel") and kernel_enabled() else "event"
        )
        self._ran = False
        #: Per-simulation controllers of the completed run (set by run();
        #: exposed so tests can audit post-run controller state).
        self.controllers = None

    def run(self, dram_cycles: int) -> List[SimulationResult]:
        """Run every simulation for ``dram_cycles`` DRAM cycles.

        Single-shot: a batch's simulations carry mutated mechanism and
        controller state after a run, so reusing the object would not
        reproduce fresh-run results.
        """
        if dram_cycles <= 0:
            raise ValueError("dram_cycles must be positive")
        if self._ran:
            raise RuntimeError("SimulationBatch.run is single-shot; build a new batch")
        self._ran = True
        if self.backend == "kernel":
            return self._run_kernel(dram_cycles)
        return self._run_event(dram_cycles)

    def _run_event(self, dram_cycles: int) -> List[SimulationResult]:
        """Pure-Python fallback: each simulation through the event path."""
        results = []
        self.controllers = controllers = []
        for traces, mitigation in zip(self.trace_sets, self.mitigations):
            simulation = Simulation(
                self.config, traces, mitigation=mitigation, step_mode="event"
            )
            results.append(simulation.run(dram_cycles))
            controllers.append(simulation.controller)
        return results

    def _run_kernel(self, dram_cycles: int) -> List[SimulationResult]:
        self.controllers = controllers = [
            MemoryController(self.config, mitigation=mitigation)
            for mitigation in self.mitigations
        ]
        kernel = BatchKernel(self.config, controllers, self.trace_sets)
        kernel.run(dram_cycles)
        results = []
        for controller, mitigation, sim_cells in zip(
            controllers, self.mitigations, kernel.cells
        ):
            core_stats = [
                CoreStats(
                    cpu_cycles=cell.cpu_cycles,
                    instructions_retired=cell.instructions,
                    memory_reads_issued=cell.reads_issued,
                    memory_writes_issued=cell.writes_issued,
                    stall_cycles=cell.stall_cycles,
                )
                for cell in sim_cells
            ]
            stats = controller.stats
            results.append(
                SimulationResult(
                    dram_cycles=dram_cycles,
                    core_ipcs=[stats_.ipc for stats_ in core_stats],
                    core_stats=core_stats,
                    controller_stats=stats,
                    mitigation_busy_cycles=controller.mitigation_busy_cycles(),
                    demand_busy_cycles=float(stats.demand_busy_cycles),
                    mitigation_name=getattr(mitigation, "name", "none"),
                )
            )
        return results
