"""Indexed priority event queue for the event-driven simulator.

The event-driven fast path of :mod:`repro.sim.system` is keyed on a single
:class:`EventQueue`: every core owns a *wake entry* in the queue, and the
run loop repeatedly drains the earliest entry instead of polling every
component for its ``next_event_cycle()`` horizon.  The memory controller's
horizon rides along directly (the byproduct of its quiescent tick), and a
mitigation's autonomous timer -- registered through
:meth:`repro.mitigations.base.MitigationMechanism.register_events` -- is
folded into that horizon by the controller, so only core indices ever
appear as queue keys.

Design
------
The queue is a binary heap of ``[cycle, seq, key]`` entries (the classic
calendar-of-events structure, collapsed to one priority bucket list because
simulated horizons are sparse and irregular -- a fixed-width calendar array
would mostly hold empty buckets) with a side *index* mapping each key to its
live heap entry.  The index makes :meth:`schedule` a reschedule-or-insert
and :meth:`cancel` O(1): superseded entries are marked dead in place and
discarded lazily when they surface at the heap top, so no heap surgery is
ever needed.

Determinism
-----------
Entries scheduled for the same cycle pop in schedule order (FIFO): every
entry carries a monotonically increasing sequence number that breaks cycle
ties.  The simulator's bit-identical replay guarantee rides on this -- two
runs that schedule the same events in the same order drain them in the same
order, with no dependence on key hashing or insertion history.

Entries are *lower bounds*: popping an entry early merely costs a wasted
revalidation (the owner reschedules it later), while an entry later than
its owner's true horizon would let the clock jump over an event.  Owners
must therefore only ever move their entry **later** after re-evaluating
their own state, which is what :meth:`schedule`'s reschedule form is for.

The sim-major batch kernel (:mod:`repro.sim.kernel`) replaces this queue
with a dense ``(sims, cores)`` wake array -- a vectorized ``min`` over a
small dense array beats a heap when every batch step consults every
simulation anyway -- but it preserves the same lower-bound and FIFO
tie-break semantics, which is how the batch path stays bit-identical to
the event loop this queue drives.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Dict, Hashable, List, Optional, Tuple

#: Sentinel horizon for a component that cannot act again until some other
#: event wakes it (far beyond any simulated run).  Shared by the event
#: queue (an entry at NEVER is simply not held), the core (a stalled core
#: waits for a completion or queue drain) and the controller (a queue with
#: no timer-bound issue opportunity).
NEVER = 1 << 62


class EventQueueStats:
    """Cumulative accounting of one :class:`EventQueue`'s traffic."""

    __slots__ = ("scheduled", "rescheduled", "cancelled", "popped", "max_depth")

    def __init__(self) -> None:
        self.scheduled = 0
        self.rescheduled = 0
        self.cancelled = 0
        self.popped = 0
        self.max_depth = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "scheduled": self.scheduled,
            "rescheduled": self.rescheduled,
            "cancelled": self.cancelled,
            "popped": self.popped,
            "max_depth": self.max_depth,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"EventQueueStats({self.to_dict()})"


class EventQueue:
    """Indexed min-priority queue of (cycle, key) events.

    Keys are arbitrary hashable component identities (the simulation loop
    uses core indices for its wake entries; mitigation timers live in the
    controller's dedicated timer slot, not here).  Each key owns at most one
    live entry; scheduling a key again *moves* its entry.
    """

    __slots__ = ("_heap", "_index", "_seq", "_live", "stats")

    def __init__(self) -> None:
        #: heap of [cycle, seq, key] lists; dead entries have key set to None
        self._heap: List[List[Any]] = []
        #: key -> live heap entry
        self._index: Dict[Hashable, List[Any]] = {}
        self._seq = 0
        self._live = 0
        self.stats = EventQueueStats()

    # ------------------------------------------------------------------
    # Scheduling interface
    # ------------------------------------------------------------------
    def schedule(self, key: Hashable, cycle: int) -> None:
        """Schedule (or move) ``key``'s event to ``cycle``.

        A cycle at or beyond :data:`NEVER` drops the entry instead (the
        component cannot act until something else revives it).
        """
        if cycle >= NEVER:
            self.cancel(key)
            return
        index = self._index
        entry = index.get(key)
        if entry is not None:
            if entry[0] == cycle:
                return  # already scheduled there; keep FIFO position
            entry[2] = None  # lazy-invalidate the superseded entry
            self._live -= 1
            self.stats.rescheduled += 1
        else:
            self.stats.scheduled += 1
        self._seq += 1
        entry = [cycle, self._seq, key]
        index[key] = entry
        heappush(self._heap, entry)
        self._live += 1
        if self._live > self.stats.max_depth:
            self.stats.max_depth = self._live

    def cancel(self, key: Hashable) -> bool:
        """Drop ``key``'s entry if present; returns whether one existed."""
        entry = self._index.pop(key, None)
        if entry is None:
            return False
        entry[2] = None
        self._live -= 1
        self.stats.cancelled += 1
        return True

    # ------------------------------------------------------------------
    # Draining interface
    # ------------------------------------------------------------------
    def peek_cycle(self) -> int:
        """Cycle of the earliest live entry, or :data:`NEVER` when empty."""
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2] is not None:
                return head[0]
            heappop(heap)  # discard a lazily-invalidated entry
        return NEVER

    def pop(self) -> Optional[Tuple[int, Hashable]]:
        """Remove and return the earliest live ``(cycle, key)``, or ``None``."""
        heap = self._heap
        while heap:
            cycle, _seq, key = heappop(heap)
            if key is not None:
                del self._index[key]
                self._live -= 1
                self.stats.popped += 1
                return (cycle, key)
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cycle_of(self, key: Hashable) -> int:
        """Scheduled cycle of ``key``'s entry, or :data:`NEVER` if absent."""
        entry = self._index.get(key)
        return entry[0] if entry is not None else NEVER

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"EventQueue(live={self._live}, next={self.peek_cycle()})"
