"""Memory requests exchanged between cores and the memory controller."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class RequestType(enum.Enum):
    """Kinds of requests the controller services."""

    READ = "read"
    WRITE = "write"
    #: Internal request used by RowHammer mitigation mechanisms to refresh a
    #: potential victim row (performed as an activate + precharge).
    VICTIM_REFRESH = "victim_refresh"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_request_ids = itertools.count()


@dataclass(slots=True)
class MemoryRequest:
    """One memory request.

    Attributes
    ----------
    request_type:
        READ, WRITE or VICTIM_REFRESH.
    bank, row, column:
        Target DRAM coordinates (single channel, single rank).
    core_id:
        Issuing core (``-1`` for controller-internal requests).
    arrival_cycle:
        DRAM cycle at which the request entered the controller.
    completion_callback:
        Called with the completion cycle when the request's data is returned
        (reads) or the request has been performed (writes / victim refreshes).
    """

    request_type: RequestType
    bank: int
    row: int
    column: int = 0
    core_id: int = -1
    arrival_cycle: int = 0
    completion_callback: Optional[Callable[[int], None]] = None
    request_id: int = field(default_factory=lambda: next(_request_ids))
    completed_cycle: Optional[int] = None
    #: Controller-local arrival sequence number, assigned at enqueue time.
    #: FR-FCFS "oldest first" compares these, so scheduling never depends on
    #: the process-global ``request_id`` counter.
    seq: int = 0
    #: Set when the controller has issued the request's column access and
    #: removed it from its live queues.  Indexed scheduling structures keep
    #: issued requests as lazy tombstones; readers skip entries with this
    #: flag instead of paying for eager mid-queue deletion.
    popped: bool = False

    @property
    def is_read(self) -> bool:
        return self.request_type is RequestType.READ

    @property
    def is_write(self) -> bool:
        return self.request_type is RequestType.WRITE

    @property
    def is_victim_refresh(self) -> bool:
        return self.request_type is RequestType.VICTIM_REFRESH

    def complete(self, cycle: int) -> None:
        """Mark the request complete and notify the issuer."""
        self.completed_cycle = cycle
        if self.completion_callback is not None:
            self.completion_callback(cycle)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"MemoryRequest({self.request_type.value}, bank={self.bank}, "
            f"row={self.row}, core={self.core_id}, id={self.request_id})"
        )
