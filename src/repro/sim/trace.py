"""Synthetic memory-access trace generation.

The paper drives its simulations with SPEC CPU2006 traces.  Without access
to SPEC, the reproduction generates synthetic traces with the two properties
that matter for the mitigation study:

* *memory intensity* (misses per kilo-instruction, MPKI), which determines
  how many DRAM activations per unit time a workload produces and therefore
  how much work a per-activation mitigation mechanism has to do, and
* *row-buffer locality*, which determines the activation rate per access.

A trace is a sequence of :class:`TraceRecord` entries, each carrying the
number of non-memory instructions preceding one memory request plus the
request's coordinates -- the same format Ramulator's simple-core traces use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.utils.rng import make_rng


@dataclass(frozen=True)
class TraceRecord:
    """One memory request in a core's instruction stream.

    Attributes
    ----------
    bubble_instructions:
        Number of non-memory instructions executed before this request.
    bank, row, column:
        DRAM coordinates of the request.
    is_write:
        Whether the request is a write (writes are posted and do not stall
        the core).
    """

    bubble_instructions: int
    bank: int
    row: int
    column: int
    is_write: bool


class SyntheticTraceGenerator:
    """Generates a reproducible synthetic trace for one core.

    Parameters
    ----------
    mpki:
        Memory requests per thousand instructions.
    row_locality:
        Probability that a request targets the same row as the previous
        request to the same bank (row-buffer hit potential).
    write_fraction:
        Fraction of requests that are writes.
    banks, rows_per_bank, columns_per_row:
        Address space to draw from (should match the simulated system).
    working_set_rows:
        Number of distinct rows per bank the workload touches; smaller
        values concentrate activations on fewer rows (which matters for
        table-based mitigation mechanisms).
    seed:
        RNG seed (combine with the core id for heterogeneous mixes).
    """

    def __init__(
        self,
        mpki: float,
        row_locality: float = 0.6,
        write_fraction: float = 0.3,
        banks: int = 16,
        rows_per_bank: int = 16384,
        columns_per_row: int = 128,
        working_set_rows: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if mpki <= 0:
            raise ValueError("mpki must be positive")
        if not 0.0 <= row_locality <= 1.0:
            raise ValueError("row_locality must be within [0, 1]")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be within [0, 1]")
        self.mpki = mpki
        self.row_locality = row_locality
        self.write_fraction = write_fraction
        self.banks = banks
        self.rows_per_bank = rows_per_bank
        self.columns_per_row = columns_per_row
        self.working_set_rows = working_set_rows or max(64, rows_per_bank // 8)
        self.working_set_rows = min(self.working_set_rows, rows_per_bank)
        self.seed = seed

    @property
    def mean_bubble_instructions(self) -> float:
        """Average number of non-memory instructions between requests."""
        return 1000.0 / self.mpki

    def generate(self, num_requests: int) -> List[TraceRecord]:
        """Generate ``num_requests`` trace records."""
        rng = make_rng(self.seed, "trace", self.mpki, self.row_locality)
        mean_bubbles = self.mean_bubble_instructions
        last_row_per_bank = {}
        records: List[TraceRecord] = []
        # Each core's working set is a contiguous window of rows at a
        # core-specific offset, so different cores hammer different rows.
        base_row = int(rng.integers(0, max(1, self.rows_per_bank - self.working_set_rows)))
        for _ in range(num_requests):
            bubbles = int(rng.geometric(1.0 / (1.0 + mean_bubbles))) - 1
            bank = int(rng.integers(0, self.banks))
            if bank in last_row_per_bank and rng.random() < self.row_locality:
                row = last_row_per_bank[bank]
            else:
                row = base_row + int(rng.integers(0, self.working_set_rows))
            last_row_per_bank[bank] = row
            records.append(
                TraceRecord(
                    bubble_instructions=max(0, bubbles),
                    bank=bank,
                    row=row,
                    column=int(rng.integers(0, self.columns_per_row)),
                    is_write=bool(rng.random() < self.write_fraction),
                )
            )
        return records


class AggressorTraceGenerator(SyntheticTraceGenerator):
    """A trace that behaves like a RowHammer attacker.

    The attacker repeatedly alternates between two aggressor rows in one
    bank with no row-buffer locality, maximizing the activation rate to a
    single victim row.  Used by the security-oriented example application
    and by tests of the mitigation mechanisms' protection guarantees.
    """

    def __init__(
        self,
        target_bank: int = 0,
        victim_row: int = 1000,
        mpki: float = 500.0,
        banks: int = 16,
        rows_per_bank: int = 16384,
        columns_per_row: int = 128,
        seed: int = 0,
    ) -> None:
        super().__init__(
            mpki=mpki,
            row_locality=0.0,
            write_fraction=0.0,
            banks=banks,
            rows_per_bank=rows_per_bank,
            columns_per_row=columns_per_row,
            seed=seed,
        )
        self.target_bank = target_bank
        self.victim_row = victim_row

    def generate(self, num_requests: int) -> List[TraceRecord]:
        rng = make_rng(self.seed, "attack", self.victim_row)
        mean_bubbles = self.mean_bubble_instructions
        aggressors = (self.victim_row - 1, self.victim_row + 1)
        records: List[TraceRecord] = []
        for index in range(num_requests):
            bubbles = int(rng.geometric(1.0 / (1.0 + mean_bubbles))) - 1
            records.append(
                TraceRecord(
                    bubble_instructions=max(0, bubbles),
                    bank=self.target_bank,
                    row=aggressors[index % 2],
                    column=int(rng.integers(0, self.columns_per_row)),
                    is_write=False,
                )
            )
        return records
