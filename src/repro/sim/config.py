"""Simulated system configuration (paper Table 6).

The paper evaluates an 8-core, 4 GHz system with a 4-wide issue width, a
128-entry instruction window, a 16 MB last-level cache, an FR-FCFS memory
controller with 64-entry read/write queues, and a single-channel,
single-rank DDR4 main memory with 16 banks and 16k rows per bank.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.timing import DDR4_2400, DramTimings


@dataclass(frozen=True)
class SystemConfig:
    """Parameters of the simulated system.

    The defaults reproduce Table 6.  ``rows_per_bank`` can be reduced for
    faster experiments; mitigation mechanisms size their tracking structures
    from it.
    """

    cores: int = 8
    cpu_freq_ghz: float = 4.0
    issue_width: int = 4
    instruction_window: int = 128
    cache_line_bytes: int = 64
    read_queue_depth: int = 64
    write_queue_depth: int = 64
    channels: int = 1
    ranks: int = 1
    banks: int = 16
    rows_per_bank: int = 16384
    columns_per_row: int = 128
    timings: DramTimings = field(default_factory=lambda: DDR4_2400)

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.banks <= 0 or self.rows_per_bank <= 0:
            raise ValueError("banks and rows_per_bank must be positive")
        if self.issue_width <= 0 or self.instruction_window <= 0:
            raise ValueError("issue_width and instruction_window must be positive")

    @property
    def cpu_cycles_per_dram_cycle(self) -> float:
        """CPU clock cycles per DRAM bus cycle (the simulation ticks in DRAM cycles)."""
        dram_freq_ghz = 1.0 / self.timings.tck_ns
        return self.cpu_freq_ghz / dram_freq_ghz

    @property
    def total_rows(self) -> int:
        """Total DRAM rows across all banks."""
        return self.banks * self.rows_per_bank


#: Configuration used for quick tests: fewer banks and rows, smaller queues.
SMALL_SYSTEM = SystemConfig(
    cores=2,
    banks=4,
    rows_per_bank=512,
    read_queue_depth=16,
    write_queue_depth=16,
)
