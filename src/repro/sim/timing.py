"""DDR4 timing parameters expressed in DRAM-bus clock cycles.

The simulator ticks once per DRAM bus cycle.  The parameter values follow
the DDR4-2400 speed bin, which matches the modules in the paper's DDR4
population (appendix Table 7) and the tRC of roughly 46 ns the paper quotes.

These parameters feed the per-bank and per-rank timer state machines in
:mod:`repro.sim.bank`; every command issue *pushes* the resulting timer
expiries into the memory controller's flat per-bank index (see
``MemoryController._sync_bank``), which is what lets the event-driven run
loop treat timer expiry as a scheduled event rather than something to poll.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class DramTimings:
    """DRAM timing parameters (in DRAM bus cycles unless noted).

    Attributes
    ----------
    tck_ns:
        Bus clock period in nanoseconds.
    trcd, tcl, trp, tras, trc:
        Core row/column timings.
    trrd_s, trrd_l, tfaw:
        Activate-to-activate constraints across banks.
    tccd_s, tccd_l, burst_cycles:
        Column-to-column and data-burst occupancy.
    twr, trtp, twtr:
        Write-recovery and turnaround timings.
    trfc, trefi:
        All-bank refresh latency and nominal refresh interval.
    refresh_window_ms:
        Refresh window tREFW in milliseconds (64 ms nominal).
    """

    tck_ns: float = 0.833
    trcd: int = 16
    tcl: int = 16
    trp: int = 16
    tras: int = 39
    trc: int = 55
    trrd_s: int = 4
    trrd_l: int = 6
    tfaw: int = 26
    tccd_s: int = 4
    tccd_l: int = 6
    burst_cycles: int = 4
    twr: int = 18
    trtp: int = 9
    twtr: int = 4
    trfc: int = 420
    trefi: int = 9360
    refresh_window_ms: float = 64.0

    def __post_init__(self) -> None:
        if self.trc < self.tras + self.trp - 1:
            raise ValueError("tRC must cover tRAS + tRP")
        if self.trefi <= self.trfc:
            raise ValueError("tREFI must exceed tRFC")

    @property
    def trc_ns(self) -> float:
        """Activate-to-activate time of one bank in nanoseconds."""
        return self.trc * self.tck_ns

    @property
    def refresh_window_cycles(self) -> int:
        """Refresh window tREFW in DRAM cycles."""
        return int(self.refresh_window_ms * 1e6 / self.tck_ns)

    @property
    def refreshes_per_window(self) -> int:
        """Number of refresh commands per refresh window (tREFW / tREFI)."""
        return max(1, self.refresh_window_cycles // self.trefi)

    def scaled_refresh(self, interval_multiplier: float) -> "DramTimings":
        """Return a copy with the refresh interval scaled by a multiplier.

        Used by the increased-refresh-rate mitigation: a multiplier below one
        refreshes more often.
        """
        if interval_multiplier <= 0:
            raise ValueError("interval_multiplier must be positive")
        new_trefi = max(self.trfc + 1, int(self.trefi * interval_multiplier))
        return DramTimings(
            tck_ns=self.tck_ns,
            trcd=self.trcd,
            tcl=self.tcl,
            trp=self.trp,
            tras=self.tras,
            trc=self.trc,
            trrd_s=self.trrd_s,
            trrd_l=self.trrd_l,
            tfaw=self.tfaw,
            tccd_s=self.tccd_s,
            tccd_l=self.tccd_l,
            burst_cycles=self.burst_cycles,
            twr=self.twr,
            trtp=self.trtp,
            twtr=self.twtr,
            trfc=self.trfc,
            trefi=new_trefi,
            refresh_window_ms=self.refresh_window_ms * interval_multiplier,
        )


#: DDR4-2400 timing set used by the evaluation (Table 6 / Table 7 modules).
DDR4_2400 = DramTimings()
