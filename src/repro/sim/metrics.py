"""Performance metrics used by the mitigation evaluation (Section 6.2.1).

* *Weighted speedup* measures multi-programmed job throughput:
  ``sum_i IPC_shared_i / IPC_alone_i``.
* *Normalized system performance* is the weighted speedup of a configuration
  normalized to the baseline (no mitigation) configuration of the same
  workload; the paper reports it as a percentage.
* *DRAM bandwidth overhead* is the DRAM bank-time consumed by the mitigation
  mechanism relative to the bank-time consumed by demand traffic, as a
  percentage (Figure 10a spans far above 100% for aggressive mechanisms).
"""

from __future__ import annotations

from typing import Dict, Sequence


def weighted_speedup(shared_ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> float:
    """Weighted speedup of a multi-programmed run.

    >>> weighted_speedup([1.0, 1.0], [2.0, 2.0])
    1.0
    """
    if len(shared_ipcs) != len(alone_ipcs):
        raise ValueError("shared and alone IPC lists must have the same length")
    if not shared_ipcs:
        raise ValueError("at least one core is required")
    total = 0.0
    for shared, alone in zip(shared_ipcs, alone_ipcs):
        if alone <= 0:
            raise ValueError("alone IPC must be positive")
        total += shared / alone
    return total


def normalized_performance(
    weighted_speedup_with_mitigation: float, weighted_speedup_baseline: float
) -> float:
    """Normalized system performance as a percentage of the baseline."""
    if weighted_speedup_baseline <= 0:
        raise ValueError("baseline weighted speedup must be positive")
    return 100.0 * weighted_speedup_with_mitigation / weighted_speedup_baseline


def bandwidth_overhead_percent(
    mitigation_busy_cycles: float, demand_busy_cycles: float
) -> float:
    """Mitigation-consumed DRAM bank-time relative to demand traffic (percent).

    When there is no demand traffic at all the overhead is reported as zero
    (an idle system has no bandwidth for the mitigation to steal).
    """
    if demand_busy_cycles <= 0:
        return 0.0
    return 100.0 * mitigation_busy_cycles / demand_busy_cycles


def average(values: Sequence[float]) -> float:
    """Arithmetic mean (kept here so benchmark code has a single import)."""
    if not values:
        raise ValueError("cannot average an empty sequence")
    return sum(values) / len(values)
