"""Top-level multi-core simulation harness.

A :class:`Simulation` wires a set of trace-driven cores to one memory
controller (optionally carrying a RowHammer mitigation mechanism) and runs
the whole system at DRAM-cycle granularity, ticking each core the
appropriate number of CPU cycles per DRAM cycle.  The result carries
per-core IPCs and the controller's bandwidth accounting, from which the
evaluation derives weighted speedup, normalized performance, and DRAM
bandwidth overhead (Figure 10).

Step modes
----------
The harness offers two bit-identical execution strategies selected by the
``step_mode`` flag:

* ``"cycle"`` -- the reference implementation: tick the controller and every
  core at every single DRAM cycle.
* ``"event"`` (default) -- the fast path: between events the system is
  quiescent by construction, so the loop is keyed on an indexed
  :class:`~repro.sim.events.EventQueue`.  The controller's horizon (bank and
  rank timers, refresh, read completions, mitigation timers) is the
  byproduct of its quiescent tick; every core owns a *wake entry* in the
  queue that is revalidated lazily when it surfaces, instead of being
  re-polled each step.  The loop jumps the clock to the earliest confirmed
  event, accounting skipped cycles in bulk (CPU-cycle debt, stall cycles,
  window retirement); within processed cycles stalled or bubble-retiring
  cores are batch-ticked.  Every counter in the resulting
  :class:`SimulationResult` is bit-identical to ``"cycle"`` mode; the golden
  regression suite (``tests/sim/test_golden_trace.py``) enforces this for
  every mitigation mechanism.

There is deliberately no ``step_mode="kernel"``: the vectorized batch
kernel only pays for itself across many simulations (see
``docs/kernel_spike.md``), so it lives behind
:class:`repro.sim.batch.SimulationBatch`, which produces the same
bit-identical :class:`SimulationResult` values for a whole group of runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.config import SystemConfig
from repro.sim.controller import ControllerStats, MemoryController
from repro.sim.core import CoreStats, SimpleCore
from repro.sim.events import EventQueue
from repro.sim.metrics import bandwidth_overhead_percent, weighted_speedup
from repro.sim.trace import TraceRecord
from repro.sim.workloads import WorkloadMix

#: Valid values of the ``step_mode`` flag.
STEP_MODES = ("event", "cycle")


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    dram_cycles: int
    core_ipcs: List[float]
    core_stats: List[CoreStats]
    controller_stats: ControllerStats
    mitigation_busy_cycles: float
    demand_busy_cycles: float
    mitigation_name: str = "none"

    @property
    def bandwidth_overhead_percent(self) -> float:
        """DRAM bank-time the mitigation consumed relative to demand traffic."""
        return bandwidth_overhead_percent(
            self.mitigation_busy_cycles, self.demand_busy_cycles
        )

    def weighted_speedup_against(self, alone_ipcs: Sequence[float]) -> float:
        """Weighted speedup of this run given per-core alone IPCs."""
        return weighted_speedup(self.core_ipcs, alone_ipcs)


class Simulation:
    """One multi-core memory-system simulation.

    Parameters
    ----------
    config:
        System configuration.
    traces:
        One trace per core (the number of traces defines the core count for
        the run; it may be smaller than ``config.cores`` for single-core
        "alone" runs used in weighted-speedup computation).
    mitigation:
        Optional RowHammer mitigation mechanism attached to the controller.
    step_mode:
        ``"event"`` (default) fast-forwards the clock between component
        event horizons; ``"cycle"`` is the cycle-by-cycle reference
        implementation.  Both produce bit-identical results.
    """

    def __init__(
        self,
        config: SystemConfig,
        traces: Sequence[Sequence[TraceRecord]],
        mitigation=None,
        step_mode: str = "event",
    ) -> None:
        if not traces:
            raise ValueError("at least one core trace is required")
        if step_mode not in STEP_MODES:
            raise ValueError(f"step_mode must be one of {STEP_MODES}, got {step_mode!r}")
        self.config = config
        self.controller = MemoryController(config, mitigation=mitigation)
        self.cores = [
            SimpleCore(core_id, trace, config, self.controller)
            for core_id, trace in enumerate(traces)
        ]
        self.mitigation = mitigation
        self.step_mode = step_mode
        #: Core wake-event queue driving the event-mode run loop (empty and
        #: unused in cycle mode); its ``stats`` feed the simulator benchmark.
        self.event_queue = EventQueue()

    def run(self, dram_cycles: int) -> SimulationResult:
        """Run the system for a fixed number of DRAM cycles."""
        if dram_cycles <= 0:
            raise ValueError("dram_cycles must be positive")
        if self.step_mode == "cycle":
            self._run_cycle_mode(dram_cycles)
        else:
            self._run_event_mode(dram_cycles)
        stats = self.controller.stats
        return SimulationResult(
            dram_cycles=dram_cycles,
            core_ipcs=[core.stats.ipc for core in self.cores],
            core_stats=[core.stats for core in self.cores],
            controller_stats=stats,
            mitigation_busy_cycles=self.controller.mitigation_busy_cycles(),
            demand_busy_cycles=float(stats.demand_busy_cycles),
            mitigation_name=getattr(self.mitigation, "name", "none"),
        )

    def _run_cycle_mode(self, dram_cycles: int) -> None:
        """Reference implementation: tick every component at every DRAM cycle.

        Uses :meth:`~repro.sim.controller.MemoryController.tick_reference`,
        whose scheduling decisions come from plain queue scans over the
        ``BankState`` objects -- independent of the incremental bookkeeping
        the event-driven fast path relies on -- so comparing the two modes
        validates that machinery end to end.
        """
        cpu_ratio = self.config.cpu_cycles_per_dram_cycle
        cpu_cycle_debt = 0.0
        for cycle in range(dram_cycles):
            self.controller.tick_reference(cycle)
            cpu_cycle_debt += cpu_ratio
            ticks = int(cpu_cycle_debt)
            cpu_cycle_debt -= ticks
            for _ in range(ticks):
                for core in self.cores:
                    core.tick(cycle)

    def _run_event_mode(self, dram_cycles: int) -> None:
        """Event-driven fast path, bit-identical to :meth:`_run_cycle_mode`.

        The loop drains the simulation's :class:`~repro.sim.events.EventQueue`
        instead of polling components.  The controller's horizon is the
        byproduct of its quiescent tick (or, after cores enqueue mid-cycle,
        the incrementally maintained quiet bound); each core owns a wake
        entry in the queue holding a *lower bound* on the next cycle it
        could interact with the memory system.  Entries are revalidated
        lazily: when one surfaces below a prospective jump target, the
        core's horizon is recomputed once and the entry moved, so cores far
        from their next interaction (deep bubble budgets, long stalls) are
        never re-polled.  A blocked core's entry is dropped entirely and
        revived by the wake event that can unblock it.

        The clock then jumps to the earliest confirmed event.  The CPU-cycle
        debt accumulator is advanced with the exact float operations of the
        reference loop so tick counts match bit-for-bit, and each skipped
        core applies its ticks in bulk
        (:meth:`~repro.sim.core.SimpleCore.fast_tick`).  Within a processed
        cycle, cores that provably cannot interact with the controller this
        cycle (stalled, or retiring buffered bubbles at full width) are
        batch-ticked as well; the rest tick exactly, in original
        interleaving order (a lone core collapses to
        :meth:`~repro.sim.core.SimpleCore.run_ticks`).  Stalled cores enter
        *deferred stall*: their ticks change nothing but their own cycle
        counters, so the accounting is settled lazily -- and selectively,
        per wake *channel*: a write-queue pop settles only write-blocked
        cores, a read-queue pop only read-blocked ones, and a read
        completion settles exactly the owning cores just before the tick
        that fires it (retirement replay needs the pre-completion window
        flags); everyone else stays deferred until its own channel fires or
        the run ends.
        """
        controller = self.controller
        controller_tick = controller.tick
        cores = self.cores
        core_items = list(enumerate(cores))
        core_count = len(cores)
        lone_core = cores[0] if core_count == 1 else None
        events = self.event_queue
        cpu_ratio = self.config.cpu_cycles_per_dram_cycle
        cpu_cycle_debt = 0.0
        cycle = 0
        slow_cores: List[SimpleCore] = []
        deferred = [False] * core_count
        deferred_count = 0
        synced_ticks = [0] * core_count
        tick_total = 0
        last_read_pops = controller.read_pops
        last_write_pops = controller.write_pops
        #: Non-deferred cores in index order (the reference interleaving);
        #: rebuilt whenever the deferred set changes.
        active_items = list(core_items)
        for index in range(core_count):
            events.schedule(index, 0)

        def settle_core(index: int) -> None:
            """Un-defer one core, applying its accumulated stall ticks.

            The core gets its wake entry back, conservatively at the current
            cycle: normally the very next tick phase reclassifies it anyway
            (re-deferring it or re-registering a fresh entry), but on a
            processed cycle that carries zero CPU ticks (possible when the
            CPU is clocked slower than the DRAM bus) the tick phase is
            skipped, and without an entry a later jump could batch the core
            across a span it must be ticked exactly in."""
            nonlocal deferred_count
            lag = tick_total - synced_ticks[index]
            if lag:
                cores[index].settle_stall(lag)
            deferred[index] = False
            deferred_count -= 1
            events.schedule(index, cycle)

        def rebuild_active() -> None:
            """Recompute the index-ordered non-deferred core list."""
            active_items[:] = [item for item in core_items if not deferred[item[0]]]

        def settle_channel(channel: int) -> None:
            """Settle the deferred cores blocked on one wake channel."""
            settled = False
            for index in range(core_count):
                if deferred[index] and cores[index].blocked_channel == channel:
                    settle_core(index)
                    settled = True
            if settled:
                rebuild_active()

        def settle_deferred() -> None:
            """Apply every deferred core's accumulated stall ticks."""
            for index in range(core_count):
                if deferred[index]:
                    settle_core(index)
            active_items[:] = core_items

        while cycle < dram_cycles:
            if deferred_count and cycle >= controller.earliest_completion_cycle:
                # This tick will complete reads, setting window flags that
                # feed retirement.  Exactly the owning cores' deferred stall
                # time must be settled with the *pre-completion* flags to
                # replay retirement bit-exactly; other cores' windows are
                # untouched by the completions and may stay lazy.
                settled = False
                for core_id in controller.due_completion_cores(cycle):
                    if core_id >= 0 and deferred[core_id]:
                        settle_core(core_id)
                        settled = True
                if settled:
                    rebuild_active()
            # A quiescent controller tick returns its event horizon; ``None``
            # means an event fired, so the next cycle must be processed.
            controller_horizon = controller_tick(cycle)
            if deferred_count:
                # Queue-pop wakes, per channel: a drained write queue can
                # only unblock write-blocked cores, a drained read queue
                # read-blocked ones.  Settle them so the tick phase
                # reclassifies; everyone else stays lazily deferred.
                pops = controller.write_pops
                if pops != last_write_pops:
                    last_write_pops = pops
                    settle_channel(0)
                pops = controller.read_pops
                if pops != last_read_pops:
                    last_read_pops = pops
                    settle_channel(1)
            else:
                last_write_pops = controller.write_pops
                last_read_pops = controller.read_pops
            cpu_cycle_debt += cpu_ratio
            ticks = int(cpu_cycle_debt)
            cpu_cycle_debt -= ticks
            if ticks:
                tick_total += ticks
                enqueues_before = controller.enqueue_count
                if lone_core is not None:
                    # Single-core (alone-IPC) runs: no tick-major
                    # interleaving to respect, so an interacting core runs
                    # its whole DRAM cycle in one call.
                    if not deferred[0]:
                        mode = lone_core.fast_tick(ticks)
                        if mode is None:
                            lone_core.run_ticks(cycle, ticks)
                            if 0 not in events:
                                events.schedule(0, cycle + 1)
                        elif mode != "bubble":
                            deferred[0] = True
                            deferred_count = 1
                            synced_ticks[0] = tick_total
                            active_items[:] = []
                else:
                    slow_cores.clear()
                    rebuild = False
                    for index, core in active_items:
                        mode = core.fast_tick(ticks)
                        if mode is None:
                            slow_cores.append(core)
                            if index not in events:
                                # An interacting core must stay visible to
                                # the jump logic (it may have been dropped
                                # while blocked).
                                events.schedule(index, cycle + 1)
                        elif mode != "bubble":
                            # Entering deferred stall (a "drain" leaves the
                            # core stalled too): ticks are current as of now;
                            # everything later settles lazily.  The stale
                            # wake entry is discarded lazily when it pops.
                            deferred[index] = True
                            deferred_count += 1
                            synced_ticks[index] = tick_total
                            rebuild = True
                    if rebuild:
                        rebuild_active()
                    if slow_cores:
                        # Tick-major over the interacting cores, exactly as
                        # the reference loop.  A core whose tick made no
                        # progress is blocked for the rest of this DRAM cycle
                        # (queues only fill, completions only arrive between
                        # cycles), so its remaining ticks are batched as
                        # stalls.
                        for tick_index in range(ticks):
                            if not slow_cores:
                                break
                            rest = ticks - tick_index - 1
                            retained = 0
                            for core in slow_cores:
                                if core.tick(cycle) or not rest:
                                    slow_cores[retained] = core
                                    retained += 1
                                else:
                                    core.settle_stall(rest)
                            del slow_cores[retained:]
                if controller.enqueue_count != enqueues_before:
                    # Cores injected requests this cycle.  Each enqueue
                    # folded its own bank-local bound into the controller's
                    # quiet horizon, so the updated bound replaces the one
                    # reported before the cores ran.
                    controller_horizon = controller.post_enqueue_horizon(cycle)
            next_cycle = cycle + 1
            if next_cycle >= dram_cycles:
                break
            if controller_horizon is None:
                cycle = next_cycle
                continue
            horizon = controller_horizon if controller_horizon < dram_cycles else dram_cycles
            if horizon > next_cycle:
                # Drain core wake entries below the prospective jump target,
                # revalidating each against its core's current horizon.  A
                # deferred core's entry is simply discarded (its wake event
                # will reschedule it); a confirmed earlier wake tightens the
                # jump.
                while True:
                    head = events.peek_cycle()
                    if head >= horizon:
                        break
                    index = events.pop()[1]
                    if deferred[index]:
                        continue
                    core_horizon = cores[index].wake_bound(cycle)
                    events.schedule(index, core_horizon)
                    if core_horizon < horizon:
                        horizon = core_horizon if core_horizon > next_cycle else next_cycle
                        if horizon <= next_cycle:
                            break
            if horizon > next_cycle:
                # Fast-forward: account the skipped span in bulk.  The debt
                # accumulator replays the reference loop's float arithmetic.
                total_ticks = 0
                for _ in range(horizon - next_cycle):
                    cpu_cycle_debt += cpu_ratio
                    skipped_ticks = int(cpu_cycle_debt)
                    cpu_cycle_debt -= skipped_ticks
                    total_ticks += skipped_ticks
                if total_ticks:
                    tick_total += total_ticks
                    # Every core is batchable across the span: the queue
                    # guarantees it (every live wake entry is at or beyond
                    # the horizon, a deferred or entry-less core is blocked
                    # until a controller event, and a bubble core's entry
                    # bounds the span by its remaining bubble budget).
                    rebuild = False
                    for index, core in active_items:
                        if core.fast_tick(total_ticks) != "bubble":
                            deferred[index] = True
                            deferred_count += 1
                            synced_ticks[index] = tick_total
                            rebuild = True
                    if rebuild:
                        rebuild_active()
                # The reference loop's last skipped tick would have recorded
                # this cycle count.
                controller.stats.cycles = horizon
                cycle = horizon
            else:
                cycle = next_cycle
        # Settle any remaining deferred stall time before reporting results.
        settle_deferred()


def run_workload(
    config: SystemConfig,
    mix: WorkloadMix,
    dram_cycles: int = 20_000,
    requests_per_core: int = 4_000,
    mitigation=None,
    seed: int = 0,
    step_mode: str = "event",
) -> SimulationResult:
    """Convenience wrapper: build traces for a mix and run it."""
    traces = mix.build_traces(
        banks=config.banks,
        rows_per_bank=config.rows_per_bank,
        columns_per_row=config.columns_per_row,
        requests_per_core=requests_per_core,
        seed=seed,
    )
    simulation = Simulation(config, traces, mitigation=mitigation, step_mode=step_mode)
    return simulation.run(dram_cycles)


def run_alone_ipcs(
    config: SystemConfig,
    mix: WorkloadMix,
    dram_cycles: int = 20_000,
    requests_per_core: int = 4_000,
    seed: int = 0,
    step_mode: str = "event",
) -> List[float]:
    """Per-benchmark alone IPCs (each benchmark run on the system by itself).

    Used as the denominator of the weighted-speedup metric.  Results are
    deterministic for a given seed, so callers typically cache them per mix.
    """
    traces = mix.build_traces(
        banks=config.banks,
        rows_per_bank=config.rows_per_bank,
        columns_per_row=config.columns_per_row,
        requests_per_core=requests_per_core,
        seed=seed,
    )
    alone_ipcs: List[float] = []
    for trace in traces:
        simulation = Simulation(config, [trace], mitigation=None, step_mode=step_mode)
        result = simulation.run(dram_cycles)
        alone_ipcs.append(result.core_ipcs[0])
    return alone_ipcs
