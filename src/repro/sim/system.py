"""Top-level multi-core simulation harness.

A :class:`Simulation` wires a set of trace-driven cores to one memory
controller (optionally carrying a RowHammer mitigation mechanism) and runs
the whole system at DRAM-cycle granularity, ticking each core the
appropriate number of CPU cycles per DRAM cycle.  The result carries
per-core IPCs and the controller's bandwidth accounting, from which the
evaluation derives weighted speedup, normalized performance, and DRAM
bandwidth overhead (Figure 10).

Step modes
----------
The harness offers two bit-identical execution strategies selected by the
``step_mode`` flag:

* ``"cycle"`` -- the reference implementation: tick the controller and every
  core at every single DRAM cycle.
* ``"event"`` (default) -- the fast path: between events the system is
  quiescent by construction, so the loop asks every component for its
  ``next_event_cycle()`` horizon (the controller folds in bank/rank timers,
  refresh, read completions and mitigation timers; each core reports when
  its trace next injects a request) and jumps the clock straight to the
  minimum.  Skipped cycles are accounted in bulk (CPU-cycle debt, stall
  cycles, window retirement), and within processed cycles stalled or
  bubble-retiring cores are batch-ticked.  Every counter in the resulting
  :class:`SimulationResult` is bit-identical to ``"cycle"`` mode; the golden
  regression suite (``tests/sim/test_golden_trace.py``) enforces this for
  every mitigation mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.config import SystemConfig
from repro.sim.controller import ControllerStats, MemoryController
from repro.sim.core import CoreStats, SimpleCore
from repro.sim.metrics import bandwidth_overhead_percent, weighted_speedup
from repro.sim.trace import TraceRecord
from repro.sim.workloads import WorkloadMix

#: Valid values of the ``step_mode`` flag.
STEP_MODES = ("event", "cycle")


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    dram_cycles: int
    core_ipcs: List[float]
    core_stats: List[CoreStats]
    controller_stats: ControllerStats
    mitigation_busy_cycles: float
    demand_busy_cycles: float
    mitigation_name: str = "none"

    @property
    def bandwidth_overhead_percent(self) -> float:
        """DRAM bank-time the mitigation consumed relative to demand traffic."""
        return bandwidth_overhead_percent(
            self.mitigation_busy_cycles, self.demand_busy_cycles
        )

    def weighted_speedup_against(self, alone_ipcs: Sequence[float]) -> float:
        """Weighted speedup of this run given per-core alone IPCs."""
        return weighted_speedup(self.core_ipcs, alone_ipcs)


class Simulation:
    """One multi-core memory-system simulation.

    Parameters
    ----------
    config:
        System configuration.
    traces:
        One trace per core (the number of traces defines the core count for
        the run; it may be smaller than ``config.cores`` for single-core
        "alone" runs used in weighted-speedup computation).
    mitigation:
        Optional RowHammer mitigation mechanism attached to the controller.
    step_mode:
        ``"event"`` (default) fast-forwards the clock between component
        event horizons; ``"cycle"`` is the cycle-by-cycle reference
        implementation.  Both produce bit-identical results.
    """

    def __init__(
        self,
        config: SystemConfig,
        traces: Sequence[Sequence[TraceRecord]],
        mitigation=None,
        step_mode: str = "event",
    ) -> None:
        if not traces:
            raise ValueError("at least one core trace is required")
        if step_mode not in STEP_MODES:
            raise ValueError(f"step_mode must be one of {STEP_MODES}, got {step_mode!r}")
        self.config = config
        self.controller = MemoryController(config, mitigation=mitigation)
        self.cores = [
            SimpleCore(core_id, trace, config, self.controller)
            for core_id, trace in enumerate(traces)
        ]
        self.mitigation = mitigation
        self.step_mode = step_mode

    def run(self, dram_cycles: int) -> SimulationResult:
        """Run the system for a fixed number of DRAM cycles."""
        if dram_cycles <= 0:
            raise ValueError("dram_cycles must be positive")
        if self.step_mode == "cycle":
            self._run_cycle_mode(dram_cycles)
        else:
            self._run_event_mode(dram_cycles)
        stats = self.controller.stats
        return SimulationResult(
            dram_cycles=dram_cycles,
            core_ipcs=[core.stats.ipc for core in self.cores],
            core_stats=[core.stats for core in self.cores],
            controller_stats=stats,
            mitigation_busy_cycles=self.controller.mitigation_busy_cycles(),
            demand_busy_cycles=float(stats.demand_busy_cycles),
            mitigation_name=getattr(self.mitigation, "name", "none"),
        )

    def _run_cycle_mode(self, dram_cycles: int) -> None:
        """Reference implementation: tick every component at every DRAM cycle.

        Uses :meth:`~repro.sim.controller.MemoryController.tick_reference`,
        whose scheduling decisions come from plain queue scans over the
        ``BankState`` objects -- independent of the incremental bookkeeping
        the event-driven fast path relies on -- so comparing the two modes
        validates that machinery end to end.
        """
        cpu_ratio = self.config.cpu_cycles_per_dram_cycle
        cpu_cycle_debt = 0.0
        for cycle in range(dram_cycles):
            self.controller.tick_reference(cycle)
            cpu_cycle_debt += cpu_ratio
            ticks = int(cpu_cycle_debt)
            cpu_cycle_debt -= ticks
            for _ in range(ticks):
                for core in self.cores:
                    core.tick(cycle)

    def _run_event_mode(self, dram_cycles: int) -> None:
        """Event-driven fast path, bit-identical to :meth:`_run_cycle_mode`.

        After processing a cycle, every component reports the earliest future
        cycle at which it could act (``next_event_cycle``); the clock jumps
        to the minimum.  The CPU-cycle debt accumulator is advanced with the
        exact float operations of the reference loop so tick counts match
        bit-for-bit, and each skipped core applies its ticks in bulk
        (:meth:`~repro.sim.core.SimpleCore.fast_tick`).  Within a processed
        cycle, cores that provably cannot interact with the controller this
        cycle (stalled, or retiring buffered bubbles at full width) are
        batch-ticked as well; the rest tick exactly, in original
        interleaving order.  Stalled cores enter *deferred stall*: their
        ticks change nothing but their own cycle counters, so the accounting
        is settled lazily -- at the next wake event (a completion or queue
        pop can unstall them), just before a tick that will complete reads
        (retirement replay needs the pre-completion window flags), or at the
        end of the run.
        """
        controller = self.controller
        controller_tick = controller.tick
        cores = self.cores
        core_items = list(enumerate(cores))
        core_count = len(cores)
        cpu_ratio = self.config.cpu_cycles_per_dram_cycle
        cpu_cycle_debt = 0.0
        cycle = 0
        slow_cores: List[SimpleCore] = []
        deferred = [False] * core_count
        deferred_count = 0
        synced_ticks = [0] * core_count
        tick_total = 0
        last_wake = controller.wake_count

        def settle_deferred() -> None:
            """Apply every deferred core's accumulated stall ticks."""
            nonlocal deferred_count
            for index in range(core_count):
                if deferred[index]:
                    lag = tick_total - synced_ticks[index]
                    if lag:
                        cores[index].settle_stall(lag)
                    deferred[index] = False
            deferred_count = 0

        while cycle < dram_cycles:
            if deferred_count and cycle >= controller.earliest_completion_cycle:
                # This tick will complete reads, setting window flags that
                # feed retirement.  Deferred stall time must be settled with
                # the *pre-completion* flags to replay retirement exactly.
                settle_deferred()
            # A quiescent controller tick returns its event horizon; ``None``
            # means an event fired, so the next cycle must be processed.
            controller_horizon = controller_tick(cycle)
            wake = controller.wake_count
            if wake != last_wake:
                # A read completed or a queue drained: stalled cores may
                # wake.  Settle them so the tick phase reclassifies.
                last_wake = wake
                if deferred_count:
                    settle_deferred()
            cpu_cycle_debt += cpu_ratio
            ticks = int(cpu_cycle_debt)
            cpu_cycle_debt -= ticks
            if ticks:
                tick_total += ticks
                slow_cores.clear()
                enqueues_before = controller.enqueue_count
                for index, core in core_items:
                    if deferred[index]:
                        continue
                    mode = core.fast_tick(ticks)
                    if mode is None:
                        slow_cores.append(core)
                    elif mode != "bubble":
                        # Entering deferred stall (a "drain" leaves the core
                        # stalled too): ticks are current as of now;
                        # everything later settles lazily.
                        deferred[index] = True
                        deferred_count += 1
                        synced_ticks[index] = tick_total
                if slow_cores:
                    # Tick-major over the interacting cores, exactly as the
                    # reference loop.  A core whose tick made no progress is
                    # blocked for the rest of this DRAM cycle (queues only
                    # fill, completions only arrive between cycles), so its
                    # remaining ticks are batched as stalls.
                    for tick_index in range(ticks):
                        if not slow_cores:
                            break
                        rest = ticks - tick_index - 1
                        retained = 0
                        for core in slow_cores:
                            if core.tick(cycle) or not rest:
                                slow_cores[retained] = core
                                retained += 1
                            else:
                                core.settle_stall(rest)
                        del slow_cores[retained:]
                    if controller.enqueue_count != enqueues_before:
                        # Cores injected requests this cycle, invalidating the
                        # horizon the controller reported before they ran.
                        controller_horizon = None
            next_cycle = cycle + 1
            if next_cycle >= dram_cycles:
                break
            if controller_horizon is None:
                cycle = next_cycle
                continue
            # Event horizon: the earliest cycle any core injects work or the
            # controller completes, issues, or refreshes anything.  A core in
            # deferred stall cannot act before the next wake event, so its
            # horizon needs no recomputation.
            horizon = controller_horizon if controller_horizon < dram_cycles else dram_cycles
            if horizon > next_cycle:
                for index, core in core_items:
                    if deferred[index]:
                        continue
                    core_horizon = core.next_event_cycle(cycle)
                    if core_horizon < horizon:
                        horizon = core_horizon
                        if horizon <= next_cycle:
                            break
            if horizon > next_cycle:
                # Fast-forward: account the skipped span in bulk.  The debt
                # accumulator replays the reference loop's float arithmetic.
                total_ticks = 0
                for _ in range(horizon - next_cycle):
                    cpu_cycle_debt += cpu_ratio
                    skipped_ticks = int(cpu_cycle_debt)
                    cpu_cycle_debt -= skipped_ticks
                    total_ticks += skipped_ticks
                if total_ticks:
                    tick_total += total_ticks
                    # Every core is batchable across the span: the horizon
                    # guarantees it (a stalled core cannot wake without a
                    # controller event; a bubble core's horizon bounds the
                    # span by its remaining bubble budget).
                    for index, core in core_items:
                        if deferred[index]:
                            continue
                        if core.fast_tick(total_ticks) != "bubble":
                            deferred[index] = True
                            deferred_count += 1
                            synced_ticks[index] = tick_total
                # The reference loop's last skipped tick would have recorded
                # this cycle count.
                controller.stats.cycles = horizon
                cycle = horizon
            else:
                cycle = next_cycle
        # Settle any remaining deferred stall time before reporting results.
        settle_deferred()


def run_workload(
    config: SystemConfig,
    mix: WorkloadMix,
    dram_cycles: int = 20_000,
    requests_per_core: int = 4_000,
    mitigation=None,
    seed: int = 0,
    step_mode: str = "event",
) -> SimulationResult:
    """Convenience wrapper: build traces for a mix and run it."""
    traces = mix.build_traces(
        banks=config.banks,
        rows_per_bank=config.rows_per_bank,
        columns_per_row=config.columns_per_row,
        requests_per_core=requests_per_core,
        seed=seed,
    )
    simulation = Simulation(config, traces, mitigation=mitigation, step_mode=step_mode)
    return simulation.run(dram_cycles)


def run_alone_ipcs(
    config: SystemConfig,
    mix: WorkloadMix,
    dram_cycles: int = 20_000,
    requests_per_core: int = 4_000,
    seed: int = 0,
    step_mode: str = "event",
) -> List[float]:
    """Per-benchmark alone IPCs (each benchmark run on the system by itself).

    Used as the denominator of the weighted-speedup metric.  Results are
    deterministic for a given seed, so callers typically cache them per mix.
    """
    traces = mix.build_traces(
        banks=config.banks,
        rows_per_bank=config.rows_per_bank,
        columns_per_row=config.columns_per_row,
        requests_per_core=requests_per_core,
        seed=seed,
    )
    alone_ipcs: List[float] = []
    for trace in traces:
        simulation = Simulation(config, [trace], mitigation=None, step_mode=step_mode)
        result = simulation.run(dram_cycles)
        alone_ipcs.append(result.core_ipcs[0])
    return alone_ipcs
