"""Top-level multi-core simulation harness.

A :class:`Simulation` wires a set of trace-driven cores to one memory
controller (optionally carrying a RowHammer mitigation mechanism) and runs
the whole system at DRAM-cycle granularity, ticking each core the
appropriate number of CPU cycles per DRAM cycle.  The result carries
per-core IPCs and the controller's bandwidth accounting, from which the
evaluation derives weighted speedup, normalized performance, and DRAM
bandwidth overhead (Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.config import SystemConfig
from repro.sim.controller import ControllerStats, MemoryController
from repro.sim.core import CoreStats, SimpleCore
from repro.sim.metrics import bandwidth_overhead_percent, weighted_speedup
from repro.sim.trace import TraceRecord
from repro.sim.workloads import WorkloadMix


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    dram_cycles: int
    core_ipcs: List[float]
    core_stats: List[CoreStats]
    controller_stats: ControllerStats
    mitigation_busy_cycles: float
    demand_busy_cycles: float
    mitigation_name: str = "none"

    @property
    def bandwidth_overhead_percent(self) -> float:
        """DRAM bank-time the mitigation consumed relative to demand traffic."""
        return bandwidth_overhead_percent(
            self.mitigation_busy_cycles, self.demand_busy_cycles
        )

    def weighted_speedup_against(self, alone_ipcs: Sequence[float]) -> float:
        """Weighted speedup of this run given per-core alone IPCs."""
        return weighted_speedup(self.core_ipcs, alone_ipcs)


class Simulation:
    """One multi-core memory-system simulation.

    Parameters
    ----------
    config:
        System configuration.
    traces:
        One trace per core (the number of traces defines the core count for
        the run; it may be smaller than ``config.cores`` for single-core
        "alone" runs used in weighted-speedup computation).
    mitigation:
        Optional RowHammer mitigation mechanism attached to the controller.
    """

    def __init__(
        self,
        config: SystemConfig,
        traces: Sequence[Sequence[TraceRecord]],
        mitigation=None,
    ) -> None:
        if not traces:
            raise ValueError("at least one core trace is required")
        self.config = config
        self.controller = MemoryController(config, mitigation=mitigation)
        self.cores = [
            SimpleCore(core_id, trace, config, self.controller)
            for core_id, trace in enumerate(traces)
        ]
        self.mitigation = mitigation

    def run(self, dram_cycles: int) -> SimulationResult:
        """Run the system for a fixed number of DRAM cycles."""
        if dram_cycles <= 0:
            raise ValueError("dram_cycles must be positive")
        cpu_ratio = self.config.cpu_cycles_per_dram_cycle
        cpu_cycle_debt = 0.0
        for cycle in range(dram_cycles):
            self.controller.tick(cycle)
            cpu_cycle_debt += cpu_ratio
            ticks = int(cpu_cycle_debt)
            cpu_cycle_debt -= ticks
            for _ in range(ticks):
                for core in self.cores:
                    core.tick(cycle)
        stats = self.controller.stats
        return SimulationResult(
            dram_cycles=dram_cycles,
            core_ipcs=[core.stats.ipc for core in self.cores],
            core_stats=[core.stats for core in self.cores],
            controller_stats=stats,
            mitigation_busy_cycles=self.controller.mitigation_busy_cycles(),
            demand_busy_cycles=float(stats.demand_busy_cycles),
            mitigation_name=getattr(self.mitigation, "name", "none"),
        )


def run_workload(
    config: SystemConfig,
    mix: WorkloadMix,
    dram_cycles: int = 20_000,
    requests_per_core: int = 4_000,
    mitigation=None,
    seed: int = 0,
) -> SimulationResult:
    """Convenience wrapper: build traces for a mix and run it."""
    traces = mix.build_traces(
        banks=config.banks,
        rows_per_bank=config.rows_per_bank,
        columns_per_row=config.columns_per_row,
        requests_per_core=requests_per_core,
        seed=seed,
    )
    simulation = Simulation(config, traces, mitigation=mitigation)
    return simulation.run(dram_cycles)


def run_alone_ipcs(
    config: SystemConfig,
    mix: WorkloadMix,
    dram_cycles: int = 20_000,
    requests_per_core: int = 4_000,
    seed: int = 0,
) -> List[float]:
    """Per-benchmark alone IPCs (each benchmark run on the system by itself).

    Used as the denominator of the weighted-speedup metric.  Results are
    deterministic for a given seed, so callers typically cache them per mix.
    """
    traces = mix.build_traces(
        banks=config.banks,
        rows_per_bank=config.rows_per_bank,
        columns_per_row=config.columns_per_row,
        requests_per_core=requests_per_core,
        seed=seed,
    )
    alone_ipcs: List[float] = []
    for trace in traces:
        simulation = Simulation(config, [trace], mitigation=None)
        result = simulation.run(dram_cycles)
        alone_ipcs.append(result.core_ipcs[0])
    return alone_ipcs
