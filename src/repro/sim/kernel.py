"""Sim-major batched stepper kernel for the Figure 10 simulator.

The event-driven fast path (``step_mode="event"``) is bound by CPython
dispatch per *real* event: roughly 57% of processed DRAM cycles issue a
command, so there is no quiet span left to jump over and every processed
cycle pays interpreter overhead for the FR-FCFS scan.  Vectorizing a
*single* simulation does not help -- the spike in ``docs/kernel_spike.md``
measures numpy on one 16-bank system at ~16x *slower* than the tuned
Python scan, because a (16,)-element ufunc is all fixed overhead.  What
does help is the same trick :class:`repro.dram.columnar.ChipPopulation`
used on the DRAM side: go *sim-major*.  A :class:`BatchKernel` steps many
independent simulations in lockstep, so every numpy operation amortizes
its dispatch overhead over ``S`` simulations' controllers at once.

Layout
------
One set of structure-of-arrays mirrors is shared by all ``S`` controllers
(mirroring ``repro.dram.columnar.BankColumns``):

* queue-major ``(2, S, B)`` int64 columns (axis 0: read queue, write
  queue) for everything
  :meth:`~repro.sim.controller.MemoryController._issue_demand` reads per
  (queue, bank): pending / hit counters, FIFO-head and oldest-hit
  sequence mirrors, and the column timers -- stacking the two queues
  lets one ufunc classify both scans at once;
* per-bank ``(S, B)`` int64 columns shared by both queues: open row
  (``-1`` = closed) and the activate / precharge timers;
* per-simulation ``(S,)`` int64 columns: rank tRRD timer, tFAW ring (the
  last four ACT cycles ever, oldest first), data-bus occupancy, queue
  lengths, quiet-until horizon, refresh schedule, earliest read
  completion, and the mitigation timer;
* per-core ``(S, C)`` int64 wake bounds -- the batch replacement for the
  per-simulation :class:`~repro.sim.events.EventQueue`.

The Python-object controllers stay fully authoritative: every mutation
site in :mod:`repro.sim.controller` and :mod:`repro.sim.bank` pushes the
new value into the arrays under an ``if self._k_open is not None`` guard
(write-through instrumentation), so scalar fallback code -- victim-refresh
scheduling, refresh, mitigation hooks -- can run unchanged on any one
simulation and the arrays never go stale.  While attached, a controller's
``_quiet_until`` attribute is parked at 0 and the ``quiet`` *array* is
the authoritative sleep bound (the enqueue fold re-gates on it), which
lets the batch loop set horizons for whole masks of simulations with one
``copyto`` instead of per-simulation attribute writes.

Batch cycle
-----------
Each processed cycle runs the event-mode orchestration across all active
simulations:

1. vector due-masks pick the simulations with a read completion, periodic
   refresh, or mitigation timer due; their scalar handlers run unchanged
   (owner cores' lazily accounted spans are settled *before* the
   completions, exactly like the event loop's pre-completion barrier);
2. one vectorized FR-FCFS scan classifies every (queue, simulation,
   bank) lane and min-reduces *packed* ``seq * B + bank`` candidates to
   each queue's oldest ready row hit, oldest issuable precharge/activate
   candidate, and failed-scan issue horizon -- the same bounds
   ``_issue_demand`` derives, computed once for the whole batch (the
   packed min preserves FR-FCFS's seq-then-bank order without argmins);
3. simulations with nothing to do -- no candidate, no victim refresh, no
   due handler -- get their quiet horizons written back with one masked
   copy; the remaining few run a scalar apply loop through the shared
   issue tails
   (:meth:`~repro.sim.controller.MemoryController._issue_column_fast` /
   ``_issue_precharge`` / ``_issue_activate``); simulations with queued
   victim refreshes fall back to the full scalar ``_schedule`` (victim
   priority is rare and correctness-critical);
4. due cores run: each is a lean :class:`_CoreCell` (flat trace lists,
   plain-int stats) executing ``SimpleCore``'s exact tick math; bubble
   and stall spans are applied lazily against the ``wake`` array, with
   the event loop's channel-wake discipline (write-pop / read-pop /
   own-completion) deciding when a deferred cell settles;
5. the clock jumps to ``min(quiet.min(), wake.min())``, replaying the
   reference loop's CPU-debt float arithmetic over the skipped span.

Every counter is bit-identical to ``step_mode="cycle"``; the differential
suite (``tests/sim/test_kernel_differential.py``) and the parameterized
golden suite enforce this.

Use :class:`repro.sim.batch.SimulationBatch` instead of instantiating
:class:`BatchKernel` directly; the batch owns backend selection (the
``REPRO_SIM_KERNEL`` gate) and the pure-Python event fallback.
"""

from __future__ import annotations

import math
import os
from collections import deque
from typing import List, Sequence

from repro.sim.config import SystemConfig
from repro.sim.controller import MemoryController
from repro.sim.core import _WindowEntry, flatten_trace
from repro.sim.events import NEVER
from repro.sim.requests import MemoryRequest, RequestType

try:  # numpy is required by the kernel only; the event path needs nothing
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via kernel_enabled()
    _np = None

__all__ = ["BatchKernel", "kernel_enabled", "numpy_available"]

#: Sentinel for "no activate ever happened" in the tFAW ring: far enough in
#: the past that ``ring + tFAW`` can never bound a real cycle.
_NEG = -(1 << 62)

_DISABLE_VALUES = frozenset({"0", "off", "false", "no", "disable", "disabled"})


def numpy_available() -> bool:
    """Whether numpy imported (the kernel's only hard dependency)."""
    return _np is not None


def kernel_enabled() -> bool:
    """Whether the batch kernel may run: numpy present and not force-disabled.

    Set ``REPRO_SIM_KERNEL=off`` (or ``0`` / ``false`` / ``no``) to force
    every :class:`~repro.sim.batch.SimulationBatch` onto the pure-Python
    event fallback -- the CI tier-1 matrix keeps that path covered.
    """
    value = os.environ.get("REPRO_SIM_KERNEL", "").strip().lower()
    if value in _DISABLE_VALUES:
        return False
    return _np is not None


class _CoreCell:
    """Lean per-(simulation, core) execution state.

    Replays :class:`repro.sim.core.SimpleCore`'s exact tick arithmetic --
    retire-then-issue order, bubble batching, posted writes, window-bounded
    reads -- over flattened trace lists with plain-int statistics, so the
    batch loop pays no dataclass or attribute-chain overhead.  The kernel
    applies bubble and stall spans lazily (``synced_ticks`` tracks the
    last tick this cell was exact at); the bit-identity argument is the
    same as the event loop's: completed-flag changes are fenced by the
    pre-completion settle of owner cells, so batched retirement pops the
    same window prefix as per-cycle retirement.
    """

    __slots__ = (
        "core_id",
        "controller",
        "t_bubbles",
        "t_is_write",
        "t_bank",
        "t_row",
        "t_col",
        "t_len",
        "trace_index",
        "bubbles",
        "window",
        "blocked_channel",
        "deferred",
        "synced_ticks",
        "issue_width",
        "window_limit",
        "read_depth",
        "write_depth",
        "cpu_cycles",
        "instructions",
        "reads_issued",
        "writes_issued",
        "stall_cycles",
    )

    def __init__(self, core_id, trace, config: SystemConfig, controller, flat=None) -> None:
        if not trace:
            raise ValueError("trace must contain at least one record")
        self.core_id = core_id
        self.controller = controller
        (
            self.t_bubbles,
            self.t_is_write,
            self.t_bank,
            self.t_row,
            self.t_col,
        ) = flat if flat is not None else flatten_trace(trace)
        self.t_len = len(self.t_bubbles)
        self.trace_index = 0
        self.bubbles = self.t_bubbles[0]
        self.window = deque()
        self.blocked_channel = -1
        self.deferred = False
        self.synced_ticks = 0
        self.issue_width = config.issue_width
        self.window_limit = config.instruction_window
        self.read_depth = config.read_queue_depth
        self.write_depth = config.write_queue_depth
        self.cpu_cycles = 0
        self.instructions = 0
        self.reads_issued = 0
        self.writes_issued = 0
        self.stall_cycles = 0

    def tick(self, cycle: int) -> bool:
        """One exact CPU tick (the port of ``SimpleCore.tick``).

        Counter updates accumulate in locals and write back once: this is
        the hottest pure-Python function in a dense batch.  Window entries
        double as their own completion callbacks (no per-read closure).
        """
        iw = self.issue_width
        self.cpu_cycles += 1
        window = self.window
        if window and window[0].completed:
            retired = 0
            while retired < iw and window and window[0].completed:
                window.popleft()
                retired += 1
        issued = 0
        controller = self.controller
        t_is_write = self.t_is_write
        index = self.trace_index
        bubbles = self.bubbles
        instructions = 0
        while issued < iw:
            if bubbles > 0:
                take = iw - issued
                if take > bubbles:
                    take = bubbles
                bubbles -= take
                instructions += take
                issued += take
                continue
            if t_is_write[index]:
                request = MemoryRequest(
                    RequestType.WRITE,
                    self.t_bank[index],
                    self.t_row[index],
                    self.t_col[index],
                    self.core_id,
                )
                if not controller.enqueue(request, cycle):
                    break  # write queue full; retry next cycle
                self.writes_issued += 1
            else:
                if len(window) >= self.window_limit:
                    break  # the window is full of outstanding reads
                entry = _WindowEntry()
                request = MemoryRequest(
                    RequestType.READ,
                    self.t_bank[index],
                    self.t_row[index],
                    self.t_col[index],
                    self.core_id,
                    0,
                    entry,
                )
                if not controller.enqueue(request, cycle):
                    break  # read queue full; retry next cycle
                window.append(entry)
                self.reads_issued += 1
            instructions += 1
            issued += 1
            index = (index + 1) % self.t_len
            bubbles = self.t_bubbles[index]
        self.trace_index = index
        self.bubbles = bubbles
        if instructions:
            self.instructions += instructions
            return True
        self.stall_cycles += 1
        return False

    def record_blocked(self) -> bool:
        """Port of ``SimpleCore._record_blocked`` (sets the wake channel)."""
        index = self.trace_index
        controller = self.controller
        if self.t_is_write[index]:
            if controller.write_len >= self.write_depth:
                self.blocked_channel = 0
                return True
            return False
        if controller.read_len >= self.read_depth:
            self.blocked_channel = 1
            return True
        window = self.window
        if len(window) >= self.window_limit and not window[0].completed:
            self.blocked_channel = 2
            return True
        return False

    def settle_stall(self, ticks: int) -> None:
        """Apply ``ticks`` stalled CPU ticks in bulk (port of
        ``SimpleCore.settle_stall``)."""
        self.cpu_cycles += ticks
        self.stall_cycles += ticks
        retire_cap = ticks * self.issue_width
        window = self.window
        popped = 0
        while popped < retire_cap and window and window[0].completed:
            window.popleft()
            popped += 1

    def apply_bubble_span(self, ticks: int) -> None:
        """Apply a lazily deferred pure-bubble span of ``ticks`` CPU ticks.

        Only called for spans the cell's wake bound proved bubble-only
        (``bubbles >= ticks * issue_width`` held when the bound was set),
        so this is ``SimpleCore.fast_tick``'s bubble branch without the
        classification (the run loop inlines the classifying variant).
        """
        retire_cap = ticks * self.issue_width
        self.bubbles -= retire_cap
        self.cpu_cycles += ticks
        self.instructions += retire_cap
        window = self.window
        if window and window[0].completed:
            popped = 0
            while popped < retire_cap and window and window[0].completed:
                window.popleft()
                popped += 1


class BatchKernel:
    """Steps ``S`` independent simulations in lockstep over shared arrays.

    Parameters
    ----------
    config:
        The shared :class:`~repro.sim.config.SystemConfig`.  Every
        simulation in the batch runs the same system geometry and CPU
        ratio (per-simulation *timings* may still differ: a mitigation's
        increased refresh rate only rescales that controller's tREFI).
    controllers:
        One :class:`~repro.sim.controller.MemoryController` per
        simulation, freshly constructed (each may carry its own mitigation
        mechanism instance).
    trace_sets:
        Per simulation, one trace per core.  Core counts may differ
        between simulations (unused ``(s, c)`` wake slots stay parked at
        :data:`~repro.sim.events.NEVER`).
    """

    def __init__(
        self,
        config: SystemConfig,
        controllers: Sequence[MemoryController],
        trace_sets: Sequence[Sequence[Sequence]],
    ) -> None:
        if _np is None:  # pragma: no cover - callers gate on kernel_enabled()
            raise RuntimeError("numpy is required by BatchKernel")
        if len(controllers) != len(trace_sets) or not controllers:
            raise ValueError("one controller and one trace set per simulation")
        np = _np
        self.config = config
        self.controllers = list(controllers)
        S = self.num_sims = len(self.controllers)
        B = self.num_banks = config.banks
        C = max(len(traces) for traces in trace_sets)
        int64 = np.int64

        # Queue-major (2, S, B) columns: axis 0 is (read, write).
        self.pend = np.zeros((2, S, B), dtype=int64)
        self.hits = np.zeros((2, S, B), dtype=int64)
        self.headq = np.full((2, S, B), NEVER, dtype=int64)
        self.hitq = np.full((2, S, B), NEVER, dtype=int64)
        self.coltim = np.zeros((2, S, B), dtype=int64)

        # Per-bank (S, B) columns shared by both queues.
        self.open_row = np.full((S, B), -1, dtype=int64)
        self.nact = np.zeros((S, B), dtype=int64)
        self.npre = np.zeros((S, B), dtype=int64)

        # Per-simulation (S,) columns.
        self.rank_next = np.zeros(S, dtype=int64)
        self.faw_old = np.full(S, _NEG, dtype=int64)
        self.ring = np.full((S, 4), _NEG, dtype=int64)
        self.bus_free = np.zeros(S, dtype=int64)
        self.quiet = np.zeros(S, dtype=int64)
        self.rlen = np.zeros(S, dtype=int64)
        self.wlen = np.zeros(S, dtype=int64)
        self.nref = np.zeros(S, dtype=int64)
        self.runtil = np.zeros(S, dtype=int64)
        self.comp = np.full(S, NEVER, dtype=int64)
        self.timer = np.full(S, NEVER, dtype=int64)
        self.tcl = np.zeros(S, dtype=int64)
        self.tfaw = np.zeros(S, dtype=int64)
        self.vict = np.zeros(S, dtype=bool)

        # Per-core (S, C) wake bounds; padding cells never wake.
        self.wake = np.full((S, C), NEVER, dtype=int64)

        self.cells: List[List[_CoreCell]] = []
        #: Per-simulation list of deferred (lazily stalled) cells.
        self.defer: List[List[_CoreCell]] = [[] for _ in range(S)]
        self.polls = [controller._poll_mitigation for controller in self.controllers]
        self.poll_b = np.array(self.polls, dtype=bool)
        self._drain_level = config.write_queue_depth // 2

        # Vector scratch buffers (reused every cycle; ``out=`` everywhere).
        self._b_ready = np.empty((2, S, B), dtype=int64)
        self._b_pack = np.empty((2, S, B), dtype=int64)
        self._b_cand = np.empty((2, S, B), dtype=int64)
        self._b_hor = np.empty((2, S, B), dtype=int64)
        self._m_a = np.empty((2, S, B), dtype=bool)
        self._m_b = np.empty((2, S, B), dtype=bool)
        self._m_c = np.empty((2, S, B), dtype=bool)
        self._b_oldr = np.empty((S, B), dtype=int64)
        self._open_mask = np.empty((S, B), dtype=bool)
        self._m_old = np.empty((S, B), dtype=bool)
        self._m_nold = np.empty((S, B), dtype=bool)
        self._hcand = np.empty((2, S), dtype=int64)
        self._ocand = np.empty((2, S), dtype=int64)
        self._qhor = np.empty((2, S), dtype=int64)
        self._cand2 = np.empty((2, S), dtype=int64)
        self._cb2 = np.empty((2, S), dtype=bool)
        self._rank_eff = np.empty(S, dtype=int64)
        self._bus_ready = np.empty(S, dtype=int64)
        self._h_issue = np.empty(S, dtype=int64)
        self._h_all = np.empty(S, dtype=int64)
        self._active_b = np.empty(S, dtype=bool)
        self._busy_b = np.empty(S, dtype=bool)
        self._drain_b = np.empty(S, dtype=bool)
        self._touched_b = np.zeros(S, dtype=bool)
        self._tmp_b = np.empty(S, dtype=bool)
        self._ca = np.empty(S, dtype=bool)
        self._cb = np.empty(S, dtype=bool)
        self._cc = np.empty(S, dtype=bool)
        self._cd = np.empty(S, dtype=bool)
        self._wake_due = np.empty((S, C), dtype=bool)
        # Broadcast-ready persistent views of fixed buffers.
        self._bus3 = self._bus_ready[None, :, None]
        self._oldr3 = self._b_oldr[None]
        self._m_old3 = self._m_old[None]
        self._m_nold3 = self._m_nold[None]
        self._bank_idx = np.arange(B, dtype=int64)

        # Batches typically reuse trace objects across simulations (the
        # Figure 10 sweep runs every mechanism over the same mixes), so
        # flatten each distinct trace once.  Keyed by ``id``: the trace
        # lists stay alive in ``trace_sets`` for the whole loop.
        flat_cache = {}
        for s, (controller, traces) in enumerate(zip(self.controllers, trace_sets)):
            self._attach(s, controller)
            sim_cells = []
            for core_id, trace in enumerate(traces):
                flat = flat_cache.get(id(trace))
                if flat is None and trace:
                    flat = flat_cache[id(trace)] = flatten_trace(trace)
                sim_cells.append(_CoreCell(core_id, trace, config, controller, flat))
            self.cells.append(sim_cells)
            self.wake[s, : len(sim_cells)] = 0
        self._mtpc = max(1, int(math.ceil(config.cpu_cycles_per_dram_cycle)))

    # ------------------------------------------------------------------
    # Mirror attach / detach
    # ------------------------------------------------------------------
    def _attach(self, s: int, controller: MemoryController) -> None:
        """Wire one controller's write-through mirrors into the arrays.

        Row views alias the batch arrays, so the controller's guarded
        scalar writes land directly in the vectorized scan's input.
        ``_k_open`` is assigned last: it is the attached flag the guards
        test.
        """
        controller._k_s = s
        controller._k_nact = self.nact[s]
        controller._k_npre = self.npre[s]
        controller._k_nrd = self.coltim[0, s]
        controller._k_nwr = self.coltim[1, s]
        controller._k_rpend = self.pend[0, s]
        controller._k_rhits = self.hits[0, s]
        controller._k_rhead = self.headq[0, s]
        controller._k_rhit = self.hitq[0, s]
        controller._k_wpend = self.pend[1, s]
        controller._k_whits = self.hits[1, s]
        controller._k_whead = self.headq[1, s]
        controller._k_whit = self.hitq[1, s]
        controller._k_rlen = self.rlen
        controller._k_wlen = self.wlen
        controller._k_quiet = self.quiet
        controller._k_nref = self.nref
        controller._k_runtil = self.runtil
        controller._k_comp = self.comp
        controller._k_timer = self.timer
        controller._k_vict = self.vict

        # Seed the arrays from the controller's (possibly pre-warmed) state:
        # a mechanism may have scheduled a timer at registration time, and a
        # refresh-rate-scaling mechanism changes this controller's tREFI.
        self.open_row[s] = [
            -1 if row is None else row for row in controller._bank_open_row
        ]
        self.nact[s] = controller._bank_next_activate
        self.npre[s] = controller._bank_next_precharge
        self.coltim[0, s] = controller._bank_next_read
        self.coltim[1, s] = controller._bank_next_write
        self.pend[0, s] = controller._read_pending
        self.hits[0, s] = controller._read_hits
        self.headq[0, s] = controller._read_head_seq
        self.hitq[0, s] = controller._read_hit_seq
        self.pend[1, s] = controller._write_pending
        self.hits[1, s] = controller._write_hits
        self.headq[1, s] = controller._write_head_seq
        self.hitq[1, s] = controller._write_hit_seq
        self.rlen[s] = controller.read_len
        self.wlen[s] = controller.write_len
        self.quiet[s] = controller._quiet_until
        self.nref[s] = controller._next_refresh
        self.runtil[s] = controller._refresh_until
        self.comp[s] = controller.earliest_completion_cycle
        self.timer[s] = controller._mitigation_timer
        self.tcl[s] = controller._tcl
        self.tfaw[s] = controller._tfaw
        self.vict[s] = bool(controller.victim_queue)

        rank = controller.rank
        rank.k_s = s
        rank.k_next = self.rank_next
        rank.k_bus = self.bus_free
        rank.k_faw = self.faw_old
        rank.k_ring = self.ring[s]
        self.rank_next[s] = rank.next_activate
        self.bus_free[s] = rank.data_bus_free
        recent = list(rank.recent_activates)[-4:]
        for offset, value in enumerate(recent):
            self.ring[s, 4 - len(recent) + offset] = value
        self.faw_old[s] = self.ring[s, 0]

        # While attached the quiet *array* is authoritative; park the attr
        # at 0 so the scalar paths' attr-gated logic stays dormant.
        controller._quiet_until = 0
        controller._k_open = self.open_row[s]

    def _detach_all(self) -> None:
        """Drop the mirror hooks so the controllers behave standalone again."""
        for controller in self.controllers:
            controller._k_open = None
            # The attr was parked at 0 while attached; 0 remains sound
            # standalone (a too-low quiet bound only costs a rescan).
            controller._quiet_until = 0
            rank = controller.rank
            rank.k_next = None
            rank.k_bus = None
            rank.k_faw = None
            rank.k_ring = None

    # ------------------------------------------------------------------
    # Lazy-core settling
    # ------------------------------------------------------------------
    def _settle_cell(self, s: int, cell: _CoreCell, cycle: int, tick_total: int) -> None:
        """Make one cell exact as of ``tick_total`` (pre-completion barrier).

        A deferred cell's lag is stall time (its wake channel or own
        completion is firing); an awake cell's lag is a pure-bubble span.
        Both must be applied with the *pre-completion* window flags, which
        is why this runs before ``_complete_due``.
        """
        lag = tick_total - cell.synced_ticks
        if cell.deferred:
            if lag:
                cell.settle_stall(lag)
            cell.deferred = False
            self.defer[s].remove(cell)
            cell.synced_ticks = tick_total
            self.wake[s, cell.core_id] = cycle
        elif lag:
            cell.apply_bubble_span(lag)
            cell.synced_ticks = tick_total

    def _settle_channel(self, s: int, channel: int, cycle: int, tick_total: int) -> None:
        """Settle the simulation's deferred cells blocked on one wake channel."""
        wake = self.wake
        dl = self.defer[s]
        kept = []
        for cell in dl:
            if cell.blocked_channel == channel:
                lag = tick_total - cell.synced_ticks
                if lag:
                    cell.settle_stall(lag)
                cell.deferred = False
                cell.synced_ticks = tick_total
                wake[s, cell.core_id] = cycle
            else:
                kept.append(cell)
        if len(kept) != len(dl):
            dl[:] = kept

    # ------------------------------------------------------------------
    # Vectorized FR-FCFS scan
    # ------------------------------------------------------------------
    def _scan_all(self, cycle: int) -> None:
        """Classify every (queue, simulation, bank) lane in one pass.

        The vector formulation of
        :meth:`~repro.sim.controller.MemoryController._issue_demand`:
        identical per-bank readiness conditions and horizon bounds, with
        the tFAW admission bound computed from the activate ring
        (``max(rank_next, ring[0] + tFAW)`` is exactly
        ``RankState.can_activate``'s verdict, and equals the scalar
        horizon bound case by case).  Candidates are *packed* as
        ``seq * B + bank`` so a single min-reduction yields the oldest
        candidate with the scalar scan's lowest-bank tie-break; packing a
        ``NEVER`` sentinel lane wraps the int64, but every such lane is
        masked out (a real head/hit sequence exists wherever the masks
        select).  Fills ``_hcand`` / ``_ocand`` / ``_qhor`` (all
        ``(2, S)``; ``NEVER`` = no candidate).  The shared per-cycle prep
        (``_bus_ready``, ``_b_oldr``, ``_m_old`` ...) is computed by the
        run loop before the call.
        """
        np = _np
        B = self.num_banks
        b_ready, b_pack, b_cand, b_hor = (
            self._b_ready,
            self._b_pack,
            self._b_cand,
            self._b_hor,
        )
        m_a, m_b, m_c = self._m_a, self._m_b, self._m_c

        # Row hits: column timer and shared data bus both ready.
        np.maximum(self.coltim, self._bus3, out=b_ready)
        np.greater(self.hits, 0, out=m_a)
        np.less_equal(b_ready, cycle, out=m_b)
        np.logical_and(m_b, m_a, out=m_b)  # ready hits
        np.multiply(self.hitq, B, out=b_pack)
        np.add(b_pack, self._bank_idx, out=b_pack)
        b_cand[...] = NEVER
        np.copyto(b_cand, b_pack, where=m_b)
        b_cand.min(axis=2, out=self._hcand)
        np.logical_not(m_b, out=m_c)
        np.logical_and(m_c, m_a, out=m_c)  # hit banks not ready yet
        b_hor[...] = NEVER
        np.copyto(b_hor, b_ready, where=m_c)

        # Old candidates (pending, no hits): precharge on open banks,
        # activate on closed ones -- ``_b_oldr`` already folds that split.
        np.greater(self.pend, 0, out=m_c)
        np.logical_not(m_a, out=m_a)
        np.logical_and(m_a, m_c, out=m_a)  # pending, no hits
        np.logical_and(m_a, self._m_old3, out=m_b)  # ready old candidates
        np.multiply(self.headq, B, out=b_pack)
        np.add(b_pack, self._bank_idx, out=b_pack)
        b_ready[...] = NEVER
        np.copyto(b_ready, b_pack, where=m_b)
        b_ready.min(axis=2, out=self._ocand)
        np.logical_and(m_a, self._m_nold3, out=m_c)  # old, not ready yet
        np.copyto(b_hor, self._oldr3, where=m_c)
        b_hor.min(axis=2, out=self._qhor)

    # ------------------------------------------------------------------
    # The batch run loop
    # ------------------------------------------------------------------
    def run(self, dram_cycles: int) -> None:
        """Advance every simulation to ``dram_cycles`` (mutating controllers
        and cells in place); detaches the mirrors on exit."""
        try:
            self._run(dram_cycles)
        finally:
            self._detach_all()

    def _run(self, dram_cycles: int) -> None:
        np = _np
        config = self.config
        controllers = self.controllers
        cells = self.cells
        defer = self.defer
        polls = self.polls
        wake = self.wake
        quiet = self.quiet
        vict = self.vict
        comp, nref, timer, runtil = self.comp, self.nref, self.timer, self.runtil
        rlen, wlen = self.rlen, self.wlen
        active_b, busy_b, drain_b, tmp_b = (
            self._active_b,
            self._busy_b,
            self._drain_b,
            self._tmp_b,
        )
        touched_b = self._touched_b
        ca, cb, cc, cd = self._ca, self._cb, self._cc, self._cd
        h_issue, h_all = self._h_issue, self._h_all
        rank_eff, bus_ready = self._rank_eff, self._bus_ready
        hcand, ocand, qhor = self._hcand, self._ocand, self._qhor
        cand2, cb2 = self._cand2, self._cb2
        wake_due = self._wake_due
        open_mask, m_old, m_nold, b_oldr = (
            self._open_mask,
            self._m_old,
            self._m_nold,
            self._b_oldr,
        )
        touched_set = set()
        B = self.num_banks
        mtpc = self._mtpc
        drain_level = self._drain_level
        copyto = np.copyto
        nonzero = np.nonzero
        less_equal = np.less_equal
        logical_and = np.logical_and
        logical_or = np.logical_or
        logical_not = np.logical_not
        minimum = np.minimum
        maximum = np.maximum

        cpu_ratio = config.cpu_cycles_per_dram_cycle
        debt = 0.0
        tick_total = 0
        cycle = 0
        quiet_min = 0
        wake_min = 0

        while cycle < dram_cycles:
            if quiet_min <= cycle:
                # --- due events: scalar handlers on the simulations they hit.
                # No activity gate needed: ``quiet <= min(comp, nref, timer)``
                # is an invariant of every quiet write, so a due simulation
                # is always active.
                if int(comp.min()) <= cycle:
                    less_equal(comp, cycle, out=tmp_b)
                    for s in nonzero(tmp_b)[0].tolist():
                        # One-pass merge of ``due_completion_cores`` +
                        # ``_complete_due``: each owner cell is settled
                        # (pre-completion barrier) immediately before its
                        # request's window flag flips, which is the same
                        # order the event loop's two-pass barrier produces
                        # -- a flag flip only affects *future* retirement,
                        # and the owner is already exact here.
                        controller = controllers[s]
                        sim_cells = cells[s]
                        stats = controller.stats
                        still_pending = []
                        earliest = NEVER
                        for item in controller._pending_completions:
                            done_cycle = item[0]
                            if done_cycle <= cycle:
                                request = item[1]
                                core_id = request.core_id
                                if core_id >= 0:
                                    self._settle_cell(
                                        s, sim_cells[core_id], cycle, tick_total
                                    )
                                request.complete(cycle)
                                stats.read_latency_total += (
                                    cycle - request.arrival_cycle
                                )
                                stats.read_latency_samples += 1
                            else:
                                still_pending.append(item)
                                if done_cycle < earliest:
                                    earliest = done_cycle
                        controller._pending_completions = still_pending
                        controller.earliest_completion_cycle = earliest
                        comp[s] = earliest
                        touched_b[s] = True
                        touched_set.add(s)
                        wake_min = 0
                if int(nref.min()) <= cycle:
                    less_equal(nref, cycle, out=tmp_b)
                    for s in nonzero(tmp_b)[0].tolist():
                        controllers[s]._maybe_refresh(cycle)
                        touched_b[s] = True
                        touched_set.add(s)
                if int(timer.min()) <= cycle:
                    less_equal(timer, cycle, out=tmp_b)
                    for s in nonzero(tmp_b)[0].tolist():
                        controllers[s]._fire_mitigation_timer(cycle)
                        touched_b[s] = True
                        touched_set.add(s)

                # --- shared scan prep over the post-event arrays
                less_equal(quiet, cycle, out=active_b)
                np.greater(runtil, cycle, out=busy_b)
                np.add(self.faw_old, self.tfaw, out=rank_eff)
                maximum(rank_eff, self.rank_next, out=rank_eff)
                np.subtract(self.bus_free, self.tcl, out=bus_ready)
                np.greater_equal(self.open_row, 0, out=open_mask)
                maximum(self.nact, rank_eff[:, None], out=b_oldr)
                copyto(b_oldr, self.npre, where=open_mask)
                less_equal(b_oldr, cycle, out=m_old)
                logical_not(m_old, out=m_nold)
                np.greater_equal(wlen, drain_level, out=drain_b)
                np.equal(rlen, 0, out=tmp_b)
                logical_or(drain_b, tmp_b, out=drain_b)

                self._scan_all(cycle)

                # --- horizon vector for the no-issue case
                h_issue[...] = NEVER
                copyto(h_issue, qhor[1], where=drain_b)
                minimum(h_issue, qhor[0], out=h_issue)
                copyto(h_issue, runtil, where=busy_b)
                minimum(h_issue, nref, out=h_all)
                minimum(h_all, comp, out=h_all)
                minimum(h_all, timer, out=h_all)
                maximum(h_all, cycle + 1, out=h_all)

                # --- split the batch: most simulations just take a horizon
                # (one masked copy); the few with work run the scalar loop.
                minimum(hcand, ocand, out=cand2)
                np.less(cand2, NEVER, out=cb2)  # per-queue candidate flags
                logical_and(cb2[1], drain_b, out=ca)  # write candidate & drain
                logical_or(ca, cb2[0], out=ca)
                logical_or(ca, vict, out=ca)
                logical_or(ca, touched_b, out=ca)  # candidates | victims | touched
                logical_not(busy_b, out=cc)
                logical_and(ca, cc, out=ca)
                logical_or(ca, self.poll_b, out=ca)
                logical_and(busy_b, touched_b, out=cb)  # busy & touched: skip
                logical_not(cb, out=cb)
                logical_and(cb, active_b, out=cb)  # base: active, not skipped
                logical_and(ca, cb, out=ca)  # the scalar set
                logical_not(ca, out=cd)
                logical_and(cd, cb, out=cd)  # the pure-horizon set
                copyto(quiet, h_all, where=cd)

                if ca.any():
                    scal_sims = nonzero(ca)[0].tolist()
                    busy_l = busy_b.tolist()
                    h_l = h_all.tolist()
                    drain_l = drain_b.tolist()
                    rh = hcand[0].tolist()
                    ro = ocand[0].tolist()
                    wh = hcand[1].tolist()
                    wo = ocand[1].tolist()
                    for s in scal_sims:
                        controller = controllers[s]
                        if busy_l[s]:
                            # All-bank refresh in progress (a poll-mode
                            # mechanism put this sim in the scalar set).
                            h = h_l[s]
                            poll = controller.mitigation.next_event_cycle(cycle)
                            if poll is not None and poll < h:
                                h = poll if poll > cycle + 1 else cycle + 1
                            quiet[s] = h
                            continue
                        issued = False
                        victim_horizon = None
                        if controller.victim_queue:
                            # Victim-refresh priority: run the full scalar
                            # scheduler (rare, correctness-critical), tracking
                            # pops for the channel wakes the issue may fire.
                            read_pops = controller.read_pops
                            write_pops = controller.write_pops
                            victim_horizon = controller._schedule(cycle)
                            issued = victim_horizon is None
                            if not controller.victim_queue:
                                vict[s] = False
                            if defer[s]:
                                if controller.write_pops != write_pops:
                                    self._settle_channel(s, 0, cycle, tick_total)
                                    wake_min = 0
                                if controller.read_pops != read_pops:
                                    self._settle_channel(s, 1, cycle, tick_total)
                                    wake_min = 0
                        elif rh[s] < NEVER:
                            controller._issue_column_fast(rh[s] % B, cycle, False)
                            issued = True
                            if defer[s]:
                                self._settle_channel(s, 1, cycle, tick_total)
                                wake_min = 0
                        elif ro[s] < NEVER:
                            bank = ro[s] % B
                            if controller._bank_open_row[bank] is not None:
                                controller._issue_precharge(bank, cycle)
                            else:
                                controller._issue_activate(bank, cycle, False)
                            issued = True
                        elif drain_l[s]:
                            if wh[s] < NEVER:
                                controller._issue_column_fast(wh[s] % B, cycle, True)
                                issued = True
                                if defer[s]:
                                    self._settle_channel(s, 0, cycle, tick_total)
                                    wake_min = 0
                            elif wo[s] < NEVER:
                                bank = wo[s] % B
                                if controller._bank_open_row[bank] is not None:
                                    controller._issue_precharge(bank, cycle)
                                else:
                                    controller._issue_activate(bank, cycle, True)
                                issued = True
                        if issued or s in touched_set:
                            quiet[s] = 0
                        else:
                            h = h_l[s]
                            if victim_horizon is not None and victim_horizon < h:
                                h = (
                                    victim_horizon
                                    if victim_horizon > cycle + 1
                                    else cycle + 1
                                )
                            if polls[s]:
                                poll = controller.mitigation.next_event_cycle(cycle)
                                if poll is not None and poll < h:
                                    h = poll if poll > cycle + 1 else cycle + 1
                            quiet[s] = h
                if touched_set:
                    touched_b[:] = False
                    touched_set.clear()

            # --- core phase
            debt += cpu_ratio
            ticks = int(debt)
            debt -= ticks
            if ticks:
                tick_total += ticks
                if wake_min <= cycle:
                    less_equal(wake, cycle, out=wake_due)
                    due = nonzero(wake_due)
                    s_list = due[0].tolist()
                    c_list = due[1].tolist()
                    i = 0
                    n = len(s_list)
                    while i < n:
                        s = s_list[i]
                        sim_cells = cells[s]
                        slow = None
                        while i < n and s_list[i] == s:
                            c = c_list[i]
                            i += 1
                            cell = sim_cells[c]
                            lag = tick_total - ticks - cell.synced_ticks
                            if lag > 0:
                                # Pure-bubble span up to this wake (the wake
                                # bound proved it); make the cell exact
                                # before classifying the current cycle.
                                cell.apply_bubble_span(lag)
                            cell.synced_ticks = tick_total
                            # ``SimpleCore.fast_tick`` inlined (hot loop):
                            # bulk-apply a pure-bubble or blocked span, or
                            # fall through to exact ticking.
                            iw = cell.issue_width
                            retire_cap = ticks * iw
                            bubbles = cell.bubbles
                            if bubbles >= retire_cap:
                                bubbles -= retire_cap
                                cell.bubbles = bubbles
                                cell.cpu_cycles += ticks
                                cell.instructions += retire_cap
                                window = cell.window
                                if window and window[0].completed:
                                    popped = 0
                                    while (
                                        popped < retire_cap
                                        and window
                                        and window[0].completed
                                    ):
                                        window.popleft()
                                        popped += 1
                                wake[s, c] = cycle + 1 + (bubbles // iw) // mtpc
                            elif cell.record_blocked():
                                cell.cpu_cycles += ticks
                                if bubbles:
                                    cell.bubbles = 0
                                    cell.instructions += bubbles
                                    progress_ticks = bubbles // iw
                                    if bubbles - progress_ticks * iw:
                                        progress_ticks += 1
                                    cell.stall_cycles += ticks - progress_ticks
                                else:
                                    cell.stall_cycles += ticks
                                window = cell.window
                                if window and window[0].completed:
                                    popped = 0
                                    while (
                                        popped < retire_cap
                                        and window
                                        and window[0].completed
                                    ):
                                        window.popleft()
                                        popped += 1
                                cell.deferred = True
                                defer[s].append(cell)
                                wake[s, c] = NEVER
                            else:
                                wake[s, c] = cycle + 1
                                if slow is None:
                                    slow = [cell]
                                else:
                                    slow.append(cell)
                        if slow is not None:
                            # Tick-major over the interacting cells, exactly
                            # as the reference loop interleaves cores.
                            for tick_index in range(ticks):
                                if not slow:
                                    break
                                rest = ticks - tick_index - 1
                                retained = 0
                                for cell in slow:
                                    if cell.tick(cycle) or not rest:
                                        slow[retained] = cell
                                        retained += 1
                                    else:
                                        cell.settle_stall(rest)
                                del slow[retained:]
                            # A cell that ends the span mid-bubble cannot
                            # interact again before draining those bubbles;
                            # park its wake at the same pure-bubble bound
                            # ``fast_tick``'s bubble mode uses.
                            for cell in slow:
                                b = cell.bubbles
                                if b:
                                    wake[s, cell.core_id] = (
                                        cycle + 1 + (b // cell.issue_width) // mtpc
                                    )

            # --- jump
            next_cycle = cycle + 1
            if next_cycle >= dram_cycles:
                break
            quiet_min = int(quiet.min())
            wake_min = int(wake.min())
            target = quiet_min if quiet_min < wake_min else wake_min
            if target > next_cycle:
                if target > dram_cycles:
                    target = dram_cycles
                total_ticks = 0
                for _ in range(target - next_cycle):
                    debt += cpu_ratio
                    skipped = int(debt)
                    debt -= skipped
                    total_ticks += skipped
                tick_total += total_ticks
                cycle = target
            else:
                cycle = next_cycle

        # --- final settle: make every cell exact, stamp the cycle counters
        for s in range(self.num_sims):
            for cell in cells[s]:
                lag = tick_total - cell.synced_ticks
                if cell.deferred:
                    if lag:
                        cell.settle_stall(lag)
                    cell.deferred = False
                elif lag:
                    cell.apply_bubble_span(lag)
                cell.synced_ticks = tick_total
            defer[s].clear()
        for controller in controllers:
            controller.stats.cycles = dram_cycles
