"""FR-FCFS memory controller with refresh and RowHammer-mitigation hooks.

The controller services read/write requests from the cores over a single
channel and rank (Table 6), scheduling with the FR-FCFS policy: row-buffer
hits first, then oldest-first.  It issues all-bank refresh every tREFI and
exposes two hooks to a RowHammer mitigation mechanism:

* ``on_activate(bank, row, cycle)`` is called for every demand activation and
  returns rows the mechanism wants refreshed (performed as internal
  victim-refresh requests that occupy the bank for a full row cycle), and
* ``on_refresh(cycle)`` is called at every periodic refresh command (used by
  mechanisms such as ProHIT that piggyback victim refreshes on refresh).

The controller also accounts separately for the DRAM bank-time consumed by
demand traffic, by nominal refresh, and by the mitigation mechanism, which
is what the bandwidth-overhead metric of Figure 10a reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.sim.bank import BankState, RankState
from repro.sim.config import SystemConfig
from repro.sim.requests import MemoryRequest, RequestType


@dataclass
class ControllerStats:
    """Cumulative controller statistics."""

    cycles: int = 0
    reads_serviced: int = 0
    writes_serviced: int = 0
    demand_activates: int = 0
    row_hits: int = 0
    row_conflicts: int = 0
    refresh_commands: int = 0
    refresh_busy_cycles: int = 0
    mitigation_refreshes: int = 0
    mitigation_busy_cycles: int = 0
    demand_busy_cycles: int = 0
    read_latency_total: int = 0
    read_latency_samples: int = 0

    @property
    def average_read_latency(self) -> float:
        """Mean read latency in DRAM cycles."""
        if self.read_latency_samples == 0:
            return 0.0
        return self.read_latency_total / self.read_latency_samples


class MemoryController:
    """Single-channel FR-FCFS memory controller.

    Parameters
    ----------
    config:
        System configuration (bank count, queue depths, timings).
    mitigation:
        Optional RowHammer mitigation mechanism implementing the
        :class:`repro.mitigations.base.MitigationMechanism` interface.  The
        mechanism may also override the refresh interval (increased refresh
        rate) through its ``refresh_interval_multiplier``.
    """

    def __init__(self, config: SystemConfig, mitigation=None) -> None:
        self.config = config
        self.mitigation = mitigation
        timings = config.timings
        if mitigation is not None:
            multiplier = mitigation.refresh_interval_multiplier()
            if multiplier != 1.0:
                timings = timings.scaled_refresh(multiplier)
        self.timings = timings
        self._nominal_trefi = config.timings.trefi

        self.banks: List[BankState] = [BankState(timings) for _ in range(config.banks)]
        self.rank = RankState(timings)
        self.read_queue: List[MemoryRequest] = []
        self.write_queue: List[MemoryRequest] = []
        self.victim_queue: List[MemoryRequest] = []
        self._pending_completions: List[Tuple[int, MemoryRequest]] = []
        self._next_refresh = timings.trefi
        self._refresh_until = 0
        self.stats = ControllerStats()
        #: Optional observers for co-simulation with a behavioural chip model:
        #: called as ``hook(bank, row, cycle)`` on every demand activation /
        #: victim refresh the controller issues.
        self.activate_hook = None
        self.victim_refresh_hook = None

    # ------------------------------------------------------------------
    # Enqueue interface (used by cores)
    # ------------------------------------------------------------------
    def can_accept(self, request: MemoryRequest) -> bool:
        """Whether the appropriate request queue has space."""
        if request.is_read:
            return len(self.read_queue) < self.config.read_queue_depth
        if request.is_write:
            return len(self.write_queue) < self.config.write_queue_depth
        return True

    def enqueue(self, request: MemoryRequest, cycle: int) -> bool:
        """Add a request to the controller; returns ``False`` if the queue is full."""
        if not self.can_accept(request):
            return False
        request.arrival_cycle = cycle
        if request.is_read:
            self.read_queue.append(request)
        elif request.is_write:
            self.write_queue.append(request)
            # Posted write: the core considers it done once buffered.
            request.complete(cycle)
        else:
            self.victim_queue.append(request)
        return True

    @property
    def outstanding_requests(self) -> int:
        """Number of requests currently queued or in flight."""
        return (
            len(self.read_queue)
            + len(self.write_queue)
            + len(self.victim_queue)
            + len(self._pending_completions)
        )

    # ------------------------------------------------------------------
    # Main tick
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        """Advance the controller by one DRAM cycle."""
        self.stats.cycles = cycle + 1
        self._complete_due(cycle)
        self._maybe_refresh(cycle)
        if cycle < self._refresh_until:
            return  # the rank is busy with an all-bank refresh
        self._schedule(cycle)

    # ------------------------------------------------------------------
    # Refresh handling
    # ------------------------------------------------------------------
    def _maybe_refresh(self, cycle: int) -> None:
        if cycle < self._next_refresh:
            return
        timings = self.timings
        # Close all banks and block the rank for tRFC.
        start = cycle
        for bank in self.banks:
            start = max(start, bank.next_precharge if bank.open_row is not None else cycle)
        end = start + timings.trfc
        for bank in self.banks:
            bank.block_until(end)
        self._refresh_until = end
        self._next_refresh += timings.trefi
        self.stats.refresh_commands += 1
        self.stats.refresh_busy_cycles += timings.trfc
        if self.mitigation is not None:
            for bank, row in self.mitigation.on_refresh(cycle):
                self._enqueue_victim_refresh(bank, row, cycle)

    # ------------------------------------------------------------------
    # Scheduling (FR-FCFS)
    # ------------------------------------------------------------------
    def _schedule(self, cycle: int) -> None:
        # Victim refreshes have priority: they are the mitigation mechanism's
        # correctness-critical work.
        if self.victim_queue and self._issue_victim_refresh(cycle):
            return
        if self._issue_from_queue(self.read_queue, cycle, is_write=False):
            return
        # Drain writes when there is no read work to do or the queue is deep.
        drain_writes = (
            not self.read_queue
            or len(self.write_queue) >= self.config.write_queue_depth // 2
        )
        if drain_writes and self._issue_from_queue(self.write_queue, cycle, is_write=True):
            return

    def _issue_victim_refresh(self, cycle: int) -> bool:
        for index, request in enumerate(self.victim_queue):
            bank = self.banks[request.bank]
            if bank.open_row is not None:
                if bank.can_precharge(cycle):
                    bank.precharge(cycle)
                    return True
                continue
            if bank.can_activate(cycle) and self.rank.can_activate(cycle):
                # A victim refresh is an activate followed by a precharge; the
                # bank is occupied for a full row cycle.
                bank.activate(cycle, request.row)
                self.rank.record_activate(cycle)
                bank.block_until(cycle + self.timings.trc)
                self.stats.mitigation_refreshes += 1
                self.stats.mitigation_busy_cycles += self.timings.trc
                request.complete(cycle + self.timings.trc)
                self.victim_queue.pop(index)
                if self.mitigation is not None:
                    self.mitigation.on_victim_refreshed(request.bank, request.row, cycle)
                if self.victim_refresh_hook is not None:
                    self.victim_refresh_hook(request.bank, request.row, cycle)
                return True
        return False

    def _issue_from_queue(
        self, queue: List[MemoryRequest], cycle: int, is_write: bool
    ) -> bool:
        if not queue:
            return False
        # First ready: a request whose row is already open and can issue its
        # column access now (row hit).
        for index, request in enumerate(queue):
            bank = self.banks[request.bank]
            if (
                bank.open_row == request.row
                and bank.can_column_access(cycle, is_write)
                and self.rank.can_use_data_bus(cycle)
            ):
                self._issue_column(queue, index, cycle, is_write)
                return True
        # Then oldest first: progress the oldest request towards opening its row.
        for index, request in enumerate(queue):
            bank = self.banks[request.bank]
            if bank.open_row == request.row:
                continue  # waiting for column timing; nothing to issue
            if bank.open_row is not None:
                if bank.can_precharge(cycle) and not self._row_has_pending_hit(bank, queue):
                    bank.precharge(cycle)
                    self.stats.row_conflicts += 1
                    return True
                continue
            if bank.can_activate(cycle) and self.rank.can_activate(cycle):
                bank.activate(cycle, request.row)
                self.rank.record_activate(cycle)
                self.stats.demand_activates += 1
                self.stats.demand_busy_cycles += self.timings.trc
                self._notify_activation(request.bank, request.row, cycle)
                if self.activate_hook is not None:
                    self.activate_hook(request.bank, request.row, cycle)
                return True
        return False

    def _row_has_pending_hit(self, bank: BankState, queue: List[MemoryRequest]) -> bool:
        """Whether any queued request still targets the bank's open row."""
        open_row = bank.open_row
        bank_index = self.banks.index(bank)
        return any(
            request.bank == bank_index and request.row == open_row for request in queue
        )

    def _issue_column(
        self, queue: List[MemoryRequest], index: int, cycle: int, is_write: bool
    ) -> None:
        request = queue.pop(index)
        bank = self.banks[request.bank]
        data_done = bank.column_access(cycle, is_write)
        self.rank.occupy_data_bus(cycle)
        self.stats.row_hits += 1
        self.stats.demand_busy_cycles += self.timings.burst_cycles
        if is_write:
            self.stats.writes_serviced += 1
            return
        self.stats.reads_serviced += 1
        self._pending_completions.append((data_done, request))

    def _complete_due(self, cycle: int) -> None:
        if not self._pending_completions:
            return
        still_pending = []
        for done_cycle, request in self._pending_completions:
            if done_cycle <= cycle:
                request.complete(cycle)
                self.stats.read_latency_total += cycle - request.arrival_cycle
                self.stats.read_latency_samples += 1
            else:
                still_pending.append((done_cycle, request))
        self._pending_completions = still_pending

    # ------------------------------------------------------------------
    # Mitigation integration
    # ------------------------------------------------------------------
    def _notify_activation(self, bank: int, row: int, cycle: int) -> None:
        if self.mitigation is None:
            return
        for victim_bank, victim_row in self.mitigation.on_activate(bank, row, cycle):
            self._enqueue_victim_refresh(victim_bank, victim_row, cycle)

    def _enqueue_victim_refresh(self, bank: int, row: int, cycle: int) -> None:
        if not 0 <= row < self.config.rows_per_bank:
            return
        request = MemoryRequest(
            request_type=RequestType.VICTIM_REFRESH,
            bank=bank,
            row=row,
            core_id=-1,
            arrival_cycle=cycle,
        )
        self.victim_queue.append(request)

    # ------------------------------------------------------------------
    # Bandwidth accounting
    # ------------------------------------------------------------------
    def extra_refresh_busy_cycles(self) -> float:
        """Refresh bank-time beyond what the nominal refresh rate would use.

        Non-zero only when a mitigation mechanism increases the refresh rate.
        """
        if self.timings.trefi >= self._nominal_trefi:
            return 0.0
        nominal_refreshes = self.stats.cycles / self._nominal_trefi
        nominal_busy = nominal_refreshes * self.timings.trfc
        return max(0.0, self.stats.refresh_busy_cycles - nominal_busy)

    def mitigation_busy_cycles(self) -> float:
        """Total DRAM bank-time consumed by the mitigation mechanism."""
        return self.stats.mitigation_busy_cycles + self.extra_refresh_busy_cycles()
